"""Per-shard statistics ablation: skew-aware scatter vs plain scatter.

The scatter-gather executor consults per-shard statistics
(:meth:`repro.sharding.ShardedGraph.shard_statistics`) to skip shard
slices whose leftmost leaf is provably empty and to re-plan skewed
disjuncts per shard.  This benchmark measures what that buys on a graph
with Zipfian label/start-vertex skew aligned with shard ownership
(:func:`repro.bench.workloads.skewed_shard_graph`): each rare label
lives in one shard, so rare-led queries — and especially the
high-fan-in unions normalization produces — prune most of their
per-shard work.

Two phases, both answer-checked against the unpruned scatter *and* the
``shards=1`` oracle:

* **prune** — pruning on vs off, per query and in aggregate.  The
  acceptance gate requires the aggregate **>= 1.5x** on the skewed
  4-shard graph.
* **replan** — per-shard re-planning on vs off (informational, no
  gate: re-planning pays off only when per-shard join orders actually
  differ, which is workload-dependent).

Timings wrap :func:`repro.engine.executor.execute_prepared` around a
pre-planned query, so the ratio isolates scatter execution — planning
and parsing are identical on both sides and excluded.

Run directly to print a table and export ``BENCH_shard_stats.json``::

    PYTHONPATH=src python benchmarks/bench_shard_stats.py          # full
    PYTHONPATH=src python benchmarks/bench_shard_stats.py --smoke  # small

or under pytest (smoke rows plus the >= 1.5x acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard_stats.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api import GraphDatabase
from repro.bench.export import write_json
from repro.bench.workloads import skewed_shard_graph, skewed_shard_queries
from repro.engine.executor import execute_prepared, prepare_ast
from repro.engine.planner import Strategy
from repro.rpq.parser import parse

SHARDS = 4
K = 2
SCALE = "bench"
FULL_REPEATS = 30
SMOKE_REPEATS = 10
GATE_SPEEDUP = 1.5


@dataclass(frozen=True, slots=True)
class ShardStatsRow:
    """One skew-aware-vs-plain scatter timing for one query."""

    phase: str  # "prune" | "replan" | "total"
    shards: int
    scale: str
    k: int
    operation: str  # the query text, or "aggregate"
    seconds: float  # skew-aware scatter
    baseline_seconds: float  # plain scatter (feature off)
    shards_pruned: int  # whole shard executions skipped per run
    disjuncts_pruned: int  # disjunct slices skipped per run
    size: int  # answer pairs

    @property
    def speedup_pruned(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.seconds


def _timed(callable_, repeats: int) -> float:
    gc.collect()
    started = time.perf_counter()
    for _ in range(repeats):
        callable_()
    return time.perf_counter() - started


def prune_rows(repeats: int) -> list[ShardStatsRow]:
    """Pruning on vs off per query, plus the gated aggregate row."""
    graph = skewed_shard_graph(SCALE, shards=SHARDS)
    database = GraphDatabase(graph, k=K, shards=SHARDS)
    oracle = GraphDatabase(graph, k=K, shards=1)
    index, statistics = database.index, database.histogram
    # Re-planning off in both arms: this phase isolates pruning.
    index.replan_divergence = None
    rows: list[ShardStatsRow] = []
    pruned_total = 0.0
    unpruned_total = 0.0
    for query in skewed_shard_queries():
        prepared = prepare_ast(
            parse(query), index, graph, statistics, Strategy.MIN_SUPPORT
        )

        def run():
            return execute_prepared(prepared, index, graph, statistics)

        index.scatter_pruning = True
        report = run()
        index.scatter_pruning = False
        unpruned = run()
        expected = oracle.query(query, use_cache=False).report.relation
        assert report.relation.to_frozenset() == expected.to_frozenset(), (
            f"pruned scatter disagrees with the shards=1 oracle on {query!r}"
        )
        assert unpruned.relation.to_frozenset() == expected.to_frozenset(), (
            f"plain scatter disagrees with the shards=1 oracle on {query!r}"
        )
        index.scatter_pruning = True
        pruned_seconds = _timed(run, repeats)
        index.scatter_pruning = False
        unpruned_seconds = _timed(run, repeats)
        index.scatter_pruning = True
        pruned_total += pruned_seconds
        unpruned_total += unpruned_seconds
        rows.append(
            ShardStatsRow(
                phase="prune",
                shards=SHARDS,
                scale=SCALE,
                k=K,
                operation=query,
                seconds=pruned_seconds,
                baseline_seconds=unpruned_seconds,
                shards_pruned=report.shards_pruned,
                disjuncts_pruned=report.disjuncts_pruned,
                size=len(report.relation),
            )
        )
    rows.append(
        ShardStatsRow(
            phase="total",
            shards=SHARDS,
            scale=SCALE,
            k=K,
            operation="aggregate",
            seconds=pruned_total,
            baseline_seconds=unpruned_total,
            shards_pruned=sum(row.shards_pruned for row in rows),
            disjuncts_pruned=sum(row.disjuncts_pruned for row in rows),
            size=sum(row.size for row in rows),
        )
    )
    database.close()
    oracle.close()
    return rows


def replan_rows(repeats: int) -> list[ShardStatsRow]:
    """Per-shard re-planning on vs off (informational, no gate)."""
    graph = skewed_shard_graph(SCALE, shards=SHARDS)
    database = GraphDatabase(graph, k=K, shards=SHARDS)
    oracle = GraphDatabase(graph, k=K, shards=1)
    index, statistics = database.index, database.histogram
    rows: list[ShardStatsRow] = []
    for query in skewed_shard_queries():
        prepared = prepare_ast(
            parse(query), index, graph, statistics, Strategy.MIN_SUPPORT
        )

        def run():
            return execute_prepared(prepared, index, graph, statistics)

        index.replan_divergence = 1.5  # eager: re-plan on mild skew
        report = run()
        expected = oracle.query(query, use_cache=False).report.relation
        assert report.relation.to_frozenset() == expected.to_frozenset(), (
            f"re-planned scatter disagrees with the oracle on {query!r}"
        )
        replan_seconds = _timed(run, repeats)
        index.replan_divergence = None
        plain_seconds = _timed(run, repeats)
        rows.append(
            ShardStatsRow(
                phase="replan",
                shards=SHARDS,
                scale=SCALE,
                k=K,
                operation=query,
                seconds=replan_seconds,
                baseline_seconds=plain_seconds,
                shards_pruned=report.shards_pruned,
                disjuncts_pruned=report.disjuncts_pruned,
                size=len(report.relation),
            )
        )
    database.close()
    oracle.close()
    return rows


def compare_shard_stats(repeats: int) -> list[ShardStatsRow]:
    return prune_rows(repeats) + replan_rows(repeats)


def export_rows(
    rows: list[ShardStatsRow], path: str | Path = "BENCH_shard_stats.json"
) -> Path:
    write_json(rows, path, experiment="shard-statistics-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke sweep: answers pinned to the oracle, export round-trips."""
    rows = compare_shard_stats(SMOKE_REPEATS)
    path = export_rows(rows, tmp_path / "BENCH_shard_stats.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "shard-statistics-ablation"
    assert len(payload["rows"]) == len(rows)
    assert all("speedup_pruned" in row for row in payload["rows"])


def test_pruned_scatter_at_least_1_5x(tmp_path):
    """Acceptance: pruning >= 1.5x over unpruned scatter in aggregate
    on the skewed 4-shard graph (the ISSUE-5 gate)."""
    rows = prune_rows(SMOKE_REPEATS)
    export_rows(rows, tmp_path / "BENCH_shard_stats.json")
    gate = next(row for row in rows if row.phase == "total")
    assert gate.disjuncts_pruned > 0, "the skewed workload must prune"
    assert gate.speedup_pruned >= GATE_SPEEDUP, (
        f"pruned scatter only {gate.speedup_pruned:.2f}x over unpruned "
        f"scatter (need >= {GATE_SPEEDUP}x)"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    rows = compare_shard_stats(SMOKE_REPEATS if smoke else FULL_REPEATS)
    print(
        f"{'phase':<8}{'shards':>7}{'k':>3}  {'operation':<30}"
        f"{'on(s)':>9}{'off(s)':>9}{'x':>7}{'pruned':>8}{'size':>7}"
    )
    for row in rows:
        print(
            f"{row.phase:<8}{row.shards:>7}{row.k:>3}  {row.operation:<30}"
            f"{row.seconds:>9.4f}{row.baseline_seconds:>9.4f}"
            f"{row.speedup_pruned:>6.2f}x{row.disjuncts_pruned:>8}{row.size:>7}"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
