"""Fault-harness overhead: armed-but-idle vs disarmed hot path.

The fault-injection harness (:mod:`repro.faults`) threads ``fire()``
calls through the disk pager, every shard scan, the per-shard build,
the artifact store, and the gather merge.  Disarmed, each call is one
global load and an ``is None`` test; armed with rules that never fire
(``rate=0.0`` at the real injection points), each call adds a
dictionary probe and an RNG draw under the plan lock — the worst case
a production deployment that keeps chaos config resident would pay.

This benchmark measures both arms over the sharded query workload and
gates the idle overhead at **<= 5%** (``GATE_OVERHEAD``): resilience
instrumentation must be free when nothing is failing.  The exported
``speedup_overhead`` column (disarmed / armed) sits at ~1.0 by design
— a parity report, deliberately below the regression gate's claim
threshold, so cross-runner timer noise never fails CI on it.

Run directly to print a table and export ``BENCH_faults.json``::

    PYTHONPATH=src python benchmarks/bench_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_faults.py --smoke  # small

or under pytest (smoke rows plus the overhead gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api import GraphDatabase
from repro.bench.export import write_json
from repro.bench.workloads import fused_gather_queries, sharding_graph
from repro.faults import FaultPlan, FaultRule, armed, disarmed

SHARDS = 4
K = 2
SCALE = "bench"
FULL_BATCHES = 30
SMOKE_BATCHES = 8
#: Armed-but-idle must stay within 5% of disarmed on the aggregate.
GATE_OVERHEAD = 1.05


def idle_plan() -> FaultPlan:
    """Rules at the hottest real injection points that can never fire.

    ``rate=0.0`` keeps the full armed bookkeeping on the path — the
    point-table probe, the lock, the RNG draw — without ever injecting
    a fault, which is exactly the resident-chaos-config worst case.
    """
    return FaultPlan(
        [
            FaultRule("shard.scan", "transient", rate=0.0),
            FaultRule("gather.merge", "transient", rate=0.0),
            FaultRule("storage.read_page", "corrupt", rate=0.0),
        ],
        seed=7,
    )


@dataclass(frozen=True, slots=True)
class FaultRow:
    """One armed-idle vs disarmed timing."""

    phase: str  # "overhead" | "overhead-total"
    scale: str
    k: int
    shards: int
    operation: str  # query text, or "aggregate"
    seconds: float  # armed-but-idle
    baseline_seconds: float  # disarmed
    size: int  # answer pairs

    @property
    def speedup_overhead(self) -> float:
        """Disarmed over armed: ~1.0 means the harness is free."""
        if self.seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.seconds


def _paired_best(
    callable_, plan: FaultPlan, batches: int, per_batch: int = 3
) -> tuple[float, float]:
    """Minimum batch time per arm, with the arms interleaved.

    Alternating disarmed/armed batches inside one loop makes thermal
    and frequency drift land on both arms equally — measuring the arms
    in separate blocks was observed to swing the ratio by +-15% on a
    busy runner, an order of magnitude more than the overhead being
    measured.  Returns ``(armed_best, disarmed_best)``.
    """
    gc.collect()
    armed_times = []
    disarmed_times = []
    for _ in range(batches):
        with disarmed():
            started = time.perf_counter()
            for _ in range(per_batch):
                callable_()
            disarmed_times.append(time.perf_counter() - started)
        with armed(plan):
            started = time.perf_counter()
            for _ in range(per_batch):
                callable_()
            armed_times.append(time.perf_counter() - started)
    return min(armed_times), min(disarmed_times)


def overhead_rows(batches: int, scale: str = SCALE) -> list[FaultRow]:
    """Per-query armed-idle vs disarmed timings plus the gated aggregate."""
    graph = sharding_graph(scale)
    database = GraphDatabase(graph, k=K, shards=SHARDS, shard_build_workers=1)
    plan = idle_plan()
    rows: list[FaultRow] = []
    armed_total = 0.0
    disarmed_total = 0.0
    for query in fused_gather_queries():
        with disarmed():
            expected = database.query(query, use_cache=False).pairs
        with armed(plan):
            under_plan = database.query(query, use_cache=False).pairs
        assert under_plan == expected, (
            f"an idle fault plan changed the answer of {query!r}"
        )

        def run() -> None:
            database.query(query, use_cache=False)

        armed_seconds, disarmed_seconds = _paired_best(run, plan, batches)
        armed_total += armed_seconds
        disarmed_total += disarmed_seconds
        rows.append(
            FaultRow(
                phase="overhead",
                scale=scale,
                k=K,
                shards=SHARDS,
                operation=query,
                seconds=armed_seconds,
                baseline_seconds=disarmed_seconds,
                size=len(expected),
            )
        )
    rows.append(
        FaultRow(
            phase="overhead-total",
            scale=scale,
            k=K,
            shards=SHARDS,
            operation="aggregate",
            seconds=armed_total,
            baseline_seconds=disarmed_total,
            size=sum(row.size for row in rows),
        )
    )
    assert plan.fired == 0, "an idle plan must never actually fire"
    database.close()
    return rows


def export_rows(
    rows: list[FaultRow], path: str | Path = "BENCH_faults.json"
) -> Path:
    write_json(rows, path, experiment="fault-harness-overhead")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke sweep: answers pinned inline, export round-trips."""
    rows = overhead_rows(SMOKE_BATCHES)
    path = export_rows(rows, tmp_path / "BENCH_faults.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "fault-harness-overhead"
    assert len(payload["rows"]) == len(rows)
    assert all("speedup_overhead" in row for row in payload["rows"])


def test_armed_idle_overhead_within_five_percent(tmp_path):
    """Acceptance: armed-but-idle <= 1.05x disarmed in aggregate
    (the ISSUE-7 gate: resilience must be free when nothing fails)."""
    rows = overhead_rows(SMOKE_BATCHES)
    export_rows(rows, tmp_path / "BENCH_faults.json")
    gate = next(row for row in rows if row.phase == "overhead-total")
    overhead = gate.seconds / gate.baseline_seconds
    assert overhead <= GATE_OVERHEAD, (
        f"armed-but-idle fault harness costs {overhead:.3f}x disarmed "
        f"(need <= {GATE_OVERHEAD}x)"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    rows = overhead_rows(SMOKE_BATCHES if smoke else FULL_BATCHES)
    print(
        f"{'phase':<16}{'shards':>7}{'k':>3}  {'operation':<28}"
        f"{'armed(s)':>10}{'bare(s)':>10}{'x':>7}{'size':>8}"
    )
    for row in rows:
        print(
            f"{row.phase:<16}{row.shards:>7}{row.k:>3}  {row.operation:<28}"
            f"{row.seconds:>10.4f}{row.baseline_seconds:>10.4f}"
            f"{row.speedup_overhead:>6.2f}x{row.size:>8}"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
