"""Serving-stack hammer: HTTP clients against the multi-process engine.

Measures what the embedded-engine benchmarks cannot: the full
request path — HTTP parse, coordinator scatter over worker-process
RPC, gather, JSON response — under concurrent client load.  Reports
throughput (``qps``) and tail latency (``p99_ms``); both are
informational columns (no ``speedup`` gate — the serving stack adds
IPC cost by construction, the regression tracker just records it).

Correctness is pinned the same way the transparency tests pin the
sharded engine: every response must carry exactly the pairs an
in-process ``shards=1`` oracle computes for that query.

Run directly to print a table and export ``BENCH_serve.json``::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # small

or under pytest (smoke hammer plus the kill-a-worker acceptance)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api import GraphDatabase, ServiceConfig
from repro.bench.export import write_json
from repro.bench.workloads import SCALES, service_batch_queries
from repro.client import Client
from repro.errors import ReproError
from repro.graph.generators import advogato_like
from repro.serve import CoordinatorDatabase
from repro.serve.server import serve_in_thread

#: (scale, shard workers, client threads, queries per thread).
FULL_CONFIG = ("bench", 4, 8, 40)
SMOKE_CONFIG = ("small", 2, 4, 15)


@dataclass(frozen=True, slots=True)
class ServeRow:
    """One hammer run against the HTTP front door."""

    scale: str
    shard_workers: int
    client_threads: int
    requests: int
    errors: int
    seconds: float
    qps: float
    mean_ms: float
    p99_ms: float


def _percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(fraction * (len(ranked) - 1) + 0.5))]


def _build(scale: str, workers: int):
    nodes, edges = SCALES[scale]
    graph = advogato_like(nodes=nodes, edges=edges, seed=7)
    oracle = GraphDatabase(graph, config=ServiceConfig(k=2, shards=1))
    database = CoordinatorDatabase(
        graph,
        config=ServiceConfig(k=2, shards=workers, max_inflight=workers * 4),
    )
    return oracle, database


def hammer(
    scale: str = SMOKE_CONFIG[0],
    shard_workers: int = SMOKE_CONFIG[1],
    client_threads: int = SMOKE_CONFIG[2],
    per_thread: int = SMOKE_CONFIG[3],
) -> ServeRow:
    """Run the multi-threaded client hammer; answers checked per request."""
    oracle, database = _build(scale, shard_workers)
    queries = service_batch_queries(per_thread)
    expected = {
        query: oracle.query(query, use_cache=False).pairs
        for query in set(queries)
    }
    handle = serve_in_thread(database)
    latencies: list[list[float]] = [[] for _ in range(client_threads)]
    failures: list[int] = [0] * client_threads

    def run_client(slot: int) -> None:
        client = Client(port=handle.port)
        for query in queries:
            started = time.perf_counter()
            try:
                result = client.query(query, use_cache=False)
            except ReproError:
                failures[slot] += 1
                continue
            latencies[slot].append(time.perf_counter() - started)
            assert result.pairs == expected[query], query

    try:
        threads = [
            threading.Thread(target=run_client, args=(slot,), daemon=True)
            for slot in range(client_threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        handle.stop()
        database.close()
        oracle.close()

    samples = [sample for bucket in latencies for sample in bucket]
    requests = len(samples)
    return ServeRow(
        scale=scale,
        shard_workers=shard_workers,
        client_threads=client_threads,
        requests=requests,
        errors=sum(failures),
        seconds=elapsed,
        qps=requests / elapsed if elapsed else 0.0,
        mean_ms=(sum(samples) / requests * 1000.0) if requests else 0.0,
        p99_ms=_percentile(samples, 0.99) * 1000.0 if samples else 0.0,
    )


def export_rows(
    rows: list[ServeRow], path: str | Path = "BENCH_serve.json"
) -> Path:
    write_json(rows, path, experiment="serve-http-hammer")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_hammer_exports(tmp_path):
    """Smoke hammer: every answer oracle-exact, no errors, export round-trips."""
    row = hammer()
    assert row.errors == 0
    assert row.requests == SMOKE_CONFIG[2] * SMOKE_CONFIG[3]
    assert row.qps > 0 and row.p99_ms > 0
    path = export_rows([row], tmp_path / "BENCH_serve.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "serve-http-hammer"
    assert {"qps", "p99_ms"} <= set(payload["rows"][0])


def test_kill_worker_mid_hammer_stays_typed_or_exact():
    """Acceptance: killing a shard worker during the hammer yields only
    typed errors or exact degraded subsets — never a wrong answer."""
    oracle, database = _build("small", 2)
    queries = service_batch_queries(10)
    expected = {
        query: oracle.query(query, use_cache=False).pairs
        for query in set(queries)
    }
    handle = serve_in_thread(database, supervise_interval=0.1)
    outcomes: list[str] = []
    lock = threading.Lock()

    def run_client() -> None:
        client = Client(port=handle.port)
        for query in queries:
            try:
                result = client.query(query, degraded=True, use_cache=False)
            except ReproError:
                with lock:
                    outcomes.append("typed-error")
                continue
            if result.partial:
                assert result.pairs <= expected[query], query
                assert result.shards_failed >= 1
                with lock:
                    outcomes.append("degraded-subset")
            else:
                assert result.pairs == expected[query], query
                with lock:
                    outcomes.append("exact")

    try:
        threads = [
            threading.Thread(target=run_client, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        # Murder one worker while the hammer is running; supervision
        # restarts it, so late requests go back to exact.
        time.sleep(0.05)
        database._index.handles[0].kill()
        for thread in threads:
            thread.join()
    finally:
        handle.stop()
        database.close()
        oracle.close()

    assert outcomes and all(
        outcome in ("exact", "degraded-subset", "typed-error")
        for outcome in outcomes
    )
    assert "exact" in outcomes


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    scale, workers, threads, per_thread = SMOKE_CONFIG if smoke else FULL_CONFIG
    row = hammer(scale, workers, threads, per_thread)
    print(
        f"{'scale':<8}{'workers':>8}{'clients':>8}{'requests':>9}"
        f"{'errors':>7}{'qps':>9}{'mean ms':>9}{'p99 ms':>9}"
    )
    print(
        f"{row.scale:<8}{row.shard_workers:>8}{row.client_threads:>8}"
        f"{row.requests:>9}{row.errors:>7}{row.qps:>9.1f}"
        f"{row.mean_ms:>9.2f}{row.p99_ms:>9.2f}"
    )
    path = export_rows([row])
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
