"""Storage ablation: in-memory vs disk B+tree index scans.

The paper builds on PostgreSQL's B+trees; this repo has both an
in-memory tree (default) and a page-based disk tree.  The bench
measures full-path prefix scans of varying result size on each backend
— the access pattern that dominates query evaluation.
"""

from __future__ import annotations

import pytest

from repro.graph.graph import LabelPath
from repro.indexes.pathindex import PathIndex


def _paths_by_size(index: PathIndex, count: int = 3) -> list[LabelPath]:
    """A few indexed paths spanning small/medium/large relations."""
    sized = sorted(
        ((index.count(path), path) for path in index.paths()),
        key=lambda item: item[0],
    )
    nonempty = [item for item in sized if item[0] > 0]
    if not nonempty:
        return []
    picks = [
        nonempty[0],
        nonempty[len(nonempty) // 2],
        nonempty[-1],
    ]
    return [path for _, path in picks[:count]]


@pytest.fixture(scope="module")
def memory_index(prepared_small):
    return prepared_small.database(2).index


@pytest.fixture(scope="module")
def disk_index(prepared_small, tmp_path_factory):
    directory = tmp_path_factory.mktemp("diskindex")
    return PathIndex.build(
        prepared_small.graph, 2, backend="disk", path=directory / "index.db"
    )


@pytest.mark.parametrize("position", (0, 1, 2), ids=("small", "medium", "large"))
def test_memory_scan(benchmark, memory_index, position):
    paths = _paths_by_size(memory_index)
    path = paths[position]
    benchmark.group = f"storage-scan-{position}"
    pairs = benchmark.pedantic(
        lambda: memory_index.scan(path), rounds=5, iterations=1
    )
    benchmark.extra_info["rows"] = len(pairs)


@pytest.mark.parametrize("position", (0, 1, 2), ids=("small", "medium", "large"))
def test_disk_scan(benchmark, disk_index, position):
    paths = _paths_by_size(disk_index)
    path = paths[position]
    benchmark.group = f"storage-scan-{position}"
    pairs = benchmark.pedantic(
        lambda: disk_index.scan(path), rounds=5, iterations=1
    )
    benchmark.extra_info["rows"] = len(pairs)


@pytest.fixture(scope="module")
def compressed_index(prepared_small):
    return PathIndex.build(prepared_small.graph, 2, backend="compressed")


@pytest.mark.parametrize("position", (0, 1, 2), ids=("small", "medium", "large"))
def test_compressed_scan(benchmark, compressed_index, position):
    paths = _paths_by_size(compressed_index)
    path = paths[position]
    benchmark.group = f"storage-scan-{position}"
    pairs = benchmark.pedantic(
        lambda: compressed_index.scan(path), rounds=5, iterations=1
    )
    benchmark.extra_info["rows"] = len(pairs)


def test_compression_ratio_reported(compressed_index):
    from repro.indexes.compressed import compression_ratio

    ratio = compression_ratio(compressed_index._backend)
    assert 0.0 < ratio < 0.5


def test_backends_agree(memory_index, disk_index, compressed_index):
    for path in _paths_by_size(memory_index):
        assert memory_index.scan(path) == disk_index.scan(path)
        assert memory_index.scan(path) == compressed_index.scan(path)
