"""Analyzer wall-clock: the invariant checker must stay a cheap gate.

``repro lint`` runs in CI on every push and is meant to be a pre-commit
reflex locally, so its cost budget is "noticeably less than the test
suite": the full pass over ``src/`` — parse every module, link parents
and scopes, run all six rules — is gated at **<= 10 seconds**
(``GATE_SECONDS``).  The gate is deliberately loose (a cold CI runner
is ~5x slower than a laptop); the point is to catch an accidental
quadratic walk in a rule, not to benchmark the interpreter.

Run directly to print per-stage timings and export
``BENCH_analysis.json``::

    PYTHONPATH=src python benchmarks/bench_analysis.py

or under pytest (the wall-clock gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py -q
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis import analyze_paths, apply_baseline, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]
#: Full analyzer pass over src/ must finish within this wall-clock.
GATE_SECONDS = 10.0


@dataclass(frozen=True, slots=True)
class AnalysisRow:
    """One timed analyzer pass."""

    operation: str  # "analyze-src" | "apply-baseline"
    seconds: float
    files: int
    findings: int


def timed_pass() -> list[AnalysisRow]:
    """Time the full pass over ``src/`` plus the baseline split."""
    files = len(list((REPO_ROOT / "src").rglob("*.py")))
    started = time.perf_counter()
    findings, errors = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    analyze_seconds = time.perf_counter() - started
    assert errors == [], errors

    baseline = REPO_ROOT / "analysis-baseline.json"
    started = time.perf_counter()
    entries = load_baseline(baseline)
    new, stale = apply_baseline(findings, entries)
    baseline_seconds = time.perf_counter() - started
    assert new == [] and stale == [], "bench requires a clean tree"

    return [
        AnalysisRow("analyze-src", analyze_seconds, files, len(findings)),
        AnalysisRow("apply-baseline", baseline_seconds, files, len(findings)),
    ]


# -- pytest entry point --------------------------------------------------------


def test_analyzer_wall_clock_under_gate():
    """Acceptance: the full invariant pass over src/ stays under 10s."""
    rows = timed_pass()
    total = sum(row.seconds for row in rows)
    assert total <= GATE_SECONDS, (
        f"analyzer took {total:.2f}s over src/ (gate {GATE_SECONDS}s); "
        "a rule probably grew a quadratic walk"
    )


def main() -> None:
    rows = timed_pass()
    print(f"{'operation':<16}{'seconds':>10}{'files':>8}{'findings':>10}")
    for row in rows:
        print(
            f"{row.operation:<16}{row.seconds:>10.3f}"
            f"{row.files:>8}{row.findings:>10}"
        )
    from repro.bench.export import write_json

    path = Path("BENCH_analysis.json")
    write_json(rows, path, experiment="invariant-analysis")
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
