"""Sharding ablation: partitioned index build and scatter-gather queries.

Two sweeps over the Advogato-like bench graph, both against the
``shards=1`` engine as baseline:

* **build** — ``ShardedGraph.build`` at several shard counts (the
  columnar per-shard builder, fanned out over a process pool where the
  machine has cores) vs the unsharded ``PathIndex.build``.  This is the
  paper's dominant offline cost and the tentpole's headline: the
  acceptance gate requires ``shards=4`` to build **>= 1.5x** faster
  than the single-shard build on the bench workload.
* **query** — scatter-gather execution of the
  :func:`repro.bench.workloads.sharding_queries` set at each shard
  count, answers asserted identical to the unsharded engine.  Reported
  without a gate: per-shard execution is an architecture property
  (partitioned fan-in, per-shard parallelism headroom), not a
  single-core win.

Run directly to print a table and export ``BENCH_sharding.json``::

    PYTHONPATH=src python benchmarks/bench_sharding.py          # full
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke  # small

or under pytest (smoke rows plus the >= 1.5x acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api import GraphDatabase
from repro.bench.export import write_json
from repro.bench.workloads import sharding_graph, sharding_queries
from repro.indexes.pathindex import PathIndex
from repro.sharding import ShardedGraph

#: (scale, k, shard counts) of the two sweeps.  The gate workload is
#: the bench-scale k=3 build — large enough that composition dominates
#: fixed overheads — so the smoke sweep keeps it and trims only the
#: shard-count axis and the query repetitions.
FULL_CONFIG = ("bench", 3, (1, 2, 4, 8))
SMOKE_CONFIG = ("bench", 3, (1, 2, 4))
GATE_SHARDS = 4
QUERY_K = 2
QUERY_REPEATS = 3


@dataclass(frozen=True, slots=True)
class ShardingRow:
    """One sharded-vs-unsharded timing at one shard count."""

    phase: str  # "build" | "query"
    shards: int
    scale: str
    k: int
    operation: str  # "index-build" or the query text
    seconds: float
    baseline_seconds: float  # the shards=1 timing of the same operation
    size: int  # index entries (build) or answer pairs (query)

    @property
    def speedup_vs_single(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.seconds


def _timed(callable_):
    gc.collect()
    started = time.perf_counter()
    result = callable_()
    return time.perf_counter() - started, result


def build_rows(
    scale: str, k: int, shard_counts: tuple[int, ...]
) -> list[ShardingRow]:
    """Time the index build at each shard count; check entry parity."""
    graph = sharding_graph(scale)
    baseline_seconds, baseline = _timed(lambda: PathIndex.build(graph, k))
    entries = baseline.entry_count
    baseline.close()
    rows = [
        ShardingRow(
            phase="build",
            shards=1,
            scale=scale,
            k=k,
            operation="index-build",
            seconds=baseline_seconds,
            baseline_seconds=baseline_seconds,
            size=entries,
        )
    ]
    for shards in shard_counts:
        if shards == 1:
            continue
        seconds, sharded = _timed(
            lambda: ShardedGraph.build(graph, k, shards=shards)
        )
        assert sharded.entry_count == entries, (
            f"shards={shards} produced {sharded.entry_count} entries, "
            f"expected {entries}"
        )
        sharded.close()
        rows.append(
            ShardingRow(
                phase="build",
                shards=shards,
                scale=scale,
                k=k,
                operation="index-build",
                seconds=seconds,
                baseline_seconds=baseline_seconds,
                size=entries,
            )
        )
    return rows


def query_rows(
    scale: str,
    shard_counts: tuple[int, ...],
    k: int = QUERY_K,
    repeats: int = QUERY_REPEATS,
) -> list[ShardingRow]:
    """Time scatter-gather execution per query; answers must agree."""
    graph = sharding_graph(scale)
    queries = sharding_queries()
    databases = {
        shards: GraphDatabase(graph, k=k, shards=shards)
        for shards in shard_counts
    }
    baseline = databases.get(1) or GraphDatabase(graph, k=k)
    rows: list[ShardingRow] = []
    baselines: dict[str, tuple[float, frozenset]] = {}
    for query in queries:
        seconds, results = _timed(
            lambda: [
                baseline.query(query, use_cache=False) for _ in range(repeats)
            ]
        )
        baselines[query] = (seconds, results[0].pairs)
    for shards, database in sorted(databases.items()):
        for query in queries:
            baseline_seconds, expected = baselines[query]
            if shards == 1:
                seconds = baseline_seconds
                answer = expected
            else:
                seconds, results = _timed(
                    lambda: [
                        database.query(query, use_cache=False)
                        for _ in range(repeats)
                    ]
                )
                answer = results[0].pairs
                assert answer == expected, (
                    f"shards={shards} disagrees with shards=1 on {query!r}"
                )
            rows.append(
                ShardingRow(
                    phase="query",
                    shards=shards,
                    scale=scale,
                    k=k,
                    operation=query,
                    seconds=seconds,
                    baseline_seconds=baseline_seconds,
                    size=len(answer),
                )
            )
    return rows


def compare_sharding(
    scale: str, k: int, shard_counts: tuple[int, ...]
) -> list[ShardingRow]:
    return build_rows(scale, k, shard_counts) + query_rows(scale, shard_counts)


def export_rows(
    rows: list[ShardingRow], path: str | Path = "BENCH_sharding.json"
) -> Path:
    write_json(rows, path, experiment="sharding-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke sweep: entry/answer parity asserted, export round-trips."""
    scale, k, shard_counts = SMOKE_CONFIG
    rows = compare_sharding(scale, k, shard_counts)
    path = export_rows(rows, tmp_path / "BENCH_sharding.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "sharding-ablation"
    assert len(payload["rows"]) == len(rows)
    assert all("speedup_vs_single" in row for row in payload["rows"])


def test_sharded_build_at_least_1_5x(tmp_path):
    """Acceptance: the shards=4 partitioned build >= 1.5x the
    single-shard build on the bench workload (the ISSUE-4 gate)."""
    scale, k, _ = SMOKE_CONFIG
    rows = build_rows(scale, k, (1, GATE_SHARDS))
    export_rows(rows, tmp_path / "BENCH_sharding.json")
    gate = next(
        row for row in rows if row.phase == "build" and row.shards == GATE_SHARDS
    )
    assert gate.speedup_vs_single >= 1.5, (
        f"shards={GATE_SHARDS} build only {gate.speedup_vs_single:.2f}x "
        f"over the single-shard build"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    scale, k, shard_counts = SMOKE_CONFIG if smoke else FULL_CONFIG
    rows = compare_sharding(scale, k, shard_counts)
    print(
        f"{'phase':<8}{'shards':>7}{'k':>3}  {'operation':<26}"
        f"{'seconds':>10}{'vs 1':>8}{'size':>9}"
    )
    for row in rows:
        print(
            f"{row.phase:<8}{row.shards:>7}{row.k:>3}  {row.operation:<26}"
            f"{row.seconds:>10.3f}{row.speedup_vs_single:>7.1f}x{row.size:>9}"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
