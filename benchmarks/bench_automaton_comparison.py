"""Section 3.1's traversal comparison: path index vs product-BFS.

The paper cites 2x-8000x speed-ups over Neo4j, whose evaluator is a
traversal engine; the honest stand-in here is the automaton/search
baseline (approach 1).  The assertion is aggregate: the index wins in
total across the workload (individual short queries can be close).
"""

from __future__ import annotations

import pytest

from repro.baselines import automaton_eval
from repro.bench.harness import run_automaton_comparison
from repro.bench.queries import workload
from repro.rpq.parser import parse

QUERIES = workload()


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_path_index_minsupport(benchmark, prepared_bench, query):
    database = prepared_bench.database(2)
    benchmark.group = f"automaton-comparison-{query.name}"
    result = benchmark.pedantic(
        lambda: database.query(query.text, method="minsupport", use_cache=False),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["answer_size"] = len(result.pairs)


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_automaton_baseline(benchmark, prepared_bench, query):
    graph = prepared_bench.graph
    node = parse(query.text)
    benchmark.group = f"automaton-comparison-{query.name}"
    answer = benchmark.pedantic(
        lambda: automaton_eval.evaluate(graph, node),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["answer_size"] = len(answer)


def test_aggregate_shape(prepared_bench):
    rows = run_automaton_comparison(prepared_bench, k=2)
    total_index = sum(row.index_seconds for row in rows)
    total_automaton = sum(row.baseline_seconds for row in rows)
    assert total_index < total_automaton
