"""Join ablation: merge-join-when-sorted vs forced hash joins.

The paper's planner prefers merge joins "to make the best use of the
physical sort order of the index".  This bench isolates that design
choice: the same composition executed by (a) a merge join over the
sorted index streams and (b) a hash join, across input sizes — plus
the frozen v1.0 tuple-set merge join (``repro.bench.legacy``) in the
same groups, so the columnar speedup is visible in one report.
"""

from __future__ import annotations

import pytest

from repro.bench.legacy import tuple_merge_join
from repro.bench.workloads import synthetic_join_inputs as _relations
from repro.engine.operators import hash_join, merge_join

SIZES = (1_000, 10_000, 50_000)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_merge_join(benchmark, size):
    left, right = _relations(size)
    benchmark.group = f"join-{size}"
    result = benchmark.pedantic(
        lambda: merge_join(left, right), rounds=3, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_hash_join(benchmark, size):
    left, right = _relations(size)
    left_by_source = sorted(left)
    benchmark.group = f"join-{size}"
    result = benchmark.pedantic(
        lambda: hash_join(left_by_source, right), rounds=3, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_seed_tuple_merge_join(benchmark, size):
    """The pre-columnar kernel, for the speedup column in reports."""
    left, right = _relations(size)
    benchmark.group = f"join-{size}"
    result = benchmark.pedantic(
        lambda: tuple_merge_join(left, right), rounds=3, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


def test_joins_agree():
    left, right = _relations(5_000)
    assert set(merge_join(left, right)) == set(hash_join(sorted(left), right))
    assert set(tuple_merge_join(left, right)) == merge_join(left, right).to_set()


def test_plan_level_ablation(prepared_bench):
    """Workload answers are identical whether merge joins are used or not."""
    database = prepared_bench.database(2)
    from repro.bench.queries import workload

    for query in workload(prepared_bench.labels):
        semi = database.query(query.text, method="semi-naive")
        naive = database.query(query.text, method="naive")
        assert semi.pairs == naive.pairs
