"""Join ablation: merge-join-when-sorted vs forced hash joins.

The paper's planner prefers merge joins "to make the best use of the
physical sort order of the index".  This bench isolates that design
choice: the same composition executed by (a) a merge join over the
sorted index streams and (b) a hash join, across input sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.operators import hash_join, merge_join

SIZES = (1_000, 10_000, 50_000)


def _relations(size: int, seed: int = 7):
    rng = random.Random(seed)
    domain = size // 2 + 1
    left = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)},
        key=lambda pair: (pair[1], pair[0]),  # target-major (inverse scan)
    )
    right = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)}
    )
    return left, right


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_merge_join(benchmark, size):
    left, right = _relations(size)
    benchmark.group = f"join-{size}"
    result = benchmark.pedantic(
        lambda: merge_join(left, right), rounds=3, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_hash_join(benchmark, size):
    left, right = _relations(size)
    left_by_source = sorted(left)
    benchmark.group = f"join-{size}"
    result = benchmark.pedantic(
        lambda: hash_join(left_by_source, right), rounds=3, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


def test_joins_agree():
    left, right = _relations(5_000)
    assert set(merge_join(left, right)) == set(hash_join(sorted(left), right))


def test_plan_level_ablation(prepared_bench):
    """Workload answers are identical whether merge joins are used or not."""
    database = prepared_bench.database(2)
    from repro.bench.queries import workload

    for query in workload(prepared_bench.labels):
        semi = database.query(query.text, method="semi-naive")
        naive = database.query(query.text, method="naive")
        assert semi.pairs == naive.pairs
