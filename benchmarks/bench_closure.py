"""Kleene-closure ablation: seed vs PR-1 delta iteration vs CSR frontier.

Measures the recursion kernels behind ``Star`` / ``Repeat`` in all
three generations of the engine:

* **seed** — the v1.0 tuple-set delta iteration, frozen in
  :mod:`repro.bench.legacy`;
* **delta** — the PR-1 packed-pair delta iteration over columnar
  relations (``repro.relation.delta_*``), which re-deduplicates against
  the whole accumulator every round;
* **csr** — the frontier-based closure over compressed sparse rows with
  per-source visited bitsets (:mod:`repro.csr`), the path the executor
  routes through now.

Workloads come from :func:`repro.bench.workloads.closure_base_pairs`:
disjoint cycles (the delta worst case), a chain (bounded powers), and a
scale-free graph (deep overlapping ancestor sets).

Run directly to print a table and export ``BENCH_closure.json``::

    PYTHONPATH=src python benchmarks/bench_closure.py          # full
    PYTHONPATH=src python benchmarks/bench_closure.py --smoke  # small sizes

or under pytest (the smoke rows plus the >= 3x acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_closure.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import csr
from repro import relation as rel
from repro.bench.export import write_json
from repro.bench.legacy import (
    tuple_bounded_powers,
    tuple_transitive_fixpoint,
)
from repro.bench.workloads import closure_base_pairs
from repro.relation import Relation

#: (workload kind, operation, edge count) per exported row.  The
#: operation is the closure shape that makes sense on the graph shape:
#: a full fixpoint of a chain would be quadratic, so the chain rows
#: measure bounded powers instead.
FULL_SPECS: tuple[tuple[str, str, int], ...] = (
    ("cyclic", "fixpoint", 5_000),
    ("cyclic", "fixpoint", 50_000),
    ("chain", "powers{1,8}", 5_000),
    ("chain", "powers{1,8}", 50_000),
    ("scale_free", "fixpoint", 5_000),
    ("scale_free", "fixpoint", 20_000),
)
SMOKE_SPECS: tuple[tuple[str, str, int], ...] = tuple(
    spec for spec in FULL_SPECS if spec[2] <= 5_000
)
#: The acceptance-gate workload named by the roadmap: 50k-edge cyclic.
GATE_SPEC = ("cyclic", "fixpoint", 50_000)

#: Closure runs are seconds-long; one timed round each keeps the full
#: sweep within a CI minute.  gc is collected before every timing so a
#: prior kernel's garbage is not charged to the next one.
POWER_BOUNDS = (1, 8)


@dataclass(frozen=True, slots=True)
class ClosureRow:
    """One three-way kernel comparison on one workload."""

    kind: str
    operation: str
    edges: int
    seed_seconds: float
    delta_seconds: float
    csr_seconds: float
    output_size: int

    @property
    def speedup_vs_seed(self) -> float:
        if self.csr_seconds == 0:
            return float("inf")
        return self.seed_seconds / self.csr_seconds

    @property
    def speedup_vs_delta(self) -> float:
        if self.csr_seconds == 0:
            return float("inf")
        return self.delta_seconds / self.csr_seconds


def _timed(callable_):
    gc.collect()
    started = time.perf_counter()
    result = callable_()
    return time.perf_counter() - started, result


def compare_closure(
    specs: tuple[tuple[str, str, int], ...] = FULL_SPECS,
) -> list[ClosureRow]:
    """Time seed/delta/csr on every spec, checking the answers agree."""
    rows: list[ClosureRow] = []
    for kind, operation, edges in specs:
        nodes, pairs = closure_base_pairs(kind, edges)
        base = Relation.from_pairs(pairs)
        node_ids = range(nodes)
        if operation == "fixpoint":
            low = 1
            seed_s, seed_out = _timed(
                lambda: tuple_transitive_fixpoint(node_ids, set(pairs), low)
            )
            delta_s, delta_out = _timed(
                lambda: rel.delta_transitive_fixpoint(node_ids, base, low)
            )
            csr_s, csr_out = _timed(
                lambda: csr.transitive_fixpoint(node_ids, base, low)
            )
        else:
            low, high = POWER_BOUNDS
            seed_s, seed_out = _timed(
                lambda: tuple_bounded_powers(node_ids, set(pairs), low, high)
            )
            delta_s, delta_out = _timed(
                lambda: rel.delta_bounded_powers(node_ids, base, low, high)
            )
            csr_s, csr_out = _timed(
                lambda: csr.bounded_powers(node_ids, base, low, high)
            )
        assert csr_out.to_set() == delta_out.to_set() == seed_out
        rows.append(
            ClosureRow(
                kind=kind,
                operation=operation,
                edges=edges,
                seed_seconds=seed_s,
                delta_seconds=delta_s,
                csr_seconds=csr_s,
                output_size=len(csr_out),
            )
        )
    return rows


def export_rows(
    rows: list[ClosureRow], path: str | Path = "BENCH_closure.json"
) -> Path:
    """Write the comparison as a standard experiment export."""
    write_json(rows, path, experiment="kleene-closure-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke mode: the three engines agree on every small workload."""
    rows = compare_closure(SMOKE_SPECS)
    path = export_rows(rows, tmp_path / "BENCH_closure.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "kleene-closure-ablation"
    assert len(payload["rows"]) == len(SMOKE_SPECS)
    assert all("speedup_vs_delta" in row for row in payload["rows"])


@pytest.mark.skipif(
    rel._np is None,
    reason="the 3x bar is for the production configuration (numpy "
    "present); the scalar fallback only has to be correct",
)
def test_csr_fixpoint_at_least_3x(tmp_path):
    """Acceptance: CSR >= 3x over the PR-1 delta fixpoint at 50k cyclic.

    Mirrors the >= 2x relation-ops gate; also exercises the export path
    so BENCH_closure.json always reflects a run that proved the bar.
    """
    rows = compare_closure((GATE_SPEC,))
    export_rows(rows, tmp_path / "BENCH_closure.json")
    gate = rows[0]
    assert gate.speedup_vs_delta >= 3.0, (
        f"CSR frontier closure only {gate.speedup_vs_delta:.2f}x over "
        f"the delta-iteration fixpoint"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    rows = compare_closure(SMOKE_SPECS if smoke else FULL_SPECS)
    print(
        f"{'kind':<12}{'op':<14}{'edges':>8}{'out':>10}{'seed s':>9}"
        f"{'delta s':>9}{'csr s':>8}{'vs seed':>9}{'vs delta':>10}"
    )
    for row in rows:
        print(
            f"{row.kind:<12}{row.operation:<14}{row.edges:>8}"
            f"{row.output_size:>10}{row.seed_seconds:>9.3f}"
            f"{row.delta_seconds:>9.3f}{row.csr_seconds:>8.3f}"
            f"{row.speedup_vs_seed:>8.1f}x{row.speedup_vs_delta:>9.1f}x"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
