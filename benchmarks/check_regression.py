"""Benchmark-regression gate: fresh exports vs committed baselines.

CI re-runs the smoke benchmark exports on every push and compares them
against the ``BENCH_*.json`` files committed at the repo root.  The
comparison deliberately checks **ratio columns only** (``speedup``,
``speedup_vs_delta``, ...): each ratio divides two timings taken on the
same machine in the same run — engine vs frozen-seed baseline — so it
is the machine-independent signal.  Absolute seconds are reported for
context but never gated: a committed 100 microsecond timing re-measured
on a different runner is pure noise.

Rows are matched on their *identity* fields (everything that is not a
float: operation names, sizes, scales, shard counts...).  A matched
row fails when a fresh ratio drops below ``tolerance * baseline`` —
but only for rows whose committed ratio actually *claims* a speedup
(``>= GATED_MIN_RATIO``): ablation rows that sit at parity (a sharded
query ablation reported at ~1.0x, a sequential-loop baseline at 1.0x)
are informational, and a floor on a millisecond-scale parity ratio
would gate pure timer noise.  Fresh rows with no committed counterpart
(e.g. a smoke scale the full export never ran) fall back to a
per-column check of the export-wide maximum-claim, so a wholesale
collapse is still caught while scale mismatches are not spuriously
fatal.

Usage (what the CI step runs)::

    python benchmarks/check_regression.py \
        --baseline-dir baseline --fresh-dir . --tolerance 0.30 \
        BENCH_relation.json BENCH_closure.json BENCH_service.json \
        BENCH_sharding.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


#: Committed ratios below this are parity reports, not speedup claims,
#: and are exempt from the floor (their noise band brackets 1.0).
GATED_MIN_RATIO = 1.2


def load_rows(path: Path) -> list[dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "rows" not in payload:
        raise SystemExit(f"{path}: not a benchmark export")
    return payload["rows"]


def identity(row: dict) -> tuple:
    """The stable identity of a row: every non-float field, sorted."""
    return tuple(
        sorted(
            (key, value) for key, value in row.items() if not isinstance(value, float)
        )
    )


def ratio_columns(rows: list[dict]) -> list[str]:
    """The gated metrics: ratio-of-timings columns, by naming convention."""
    names: set[str] = set()
    for row in rows:
        names.update(
            key
            for key, value in row.items()
            if isinstance(value, float) and key.startswith("speedup")
        )
    return sorted(names)


def check_file(
    name: str, baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> list[str]:
    """Compare one export pair; return human-readable failures."""
    baseline_rows = load_rows(baseline_dir / name)
    fresh_rows = load_rows(fresh_dir / name)
    baseline_columns = ratio_columns(baseline_rows)
    fresh_columns = set(ratio_columns(fresh_rows))
    failures: list[str] = []
    missing = [column for column in baseline_columns if column not in fresh_columns]
    if missing:
        # A committed baseline claiming a ratio the fresh export no
        # longer measures is a gate silently turning itself off —
        # a renamed column or a dropped benchmark must fail here, not
        # skip.
        failures.append(
            f"{name}: baseline ratio column(s) {', '.join(missing)} "
            "missing from the fresh export — the gate cannot check them"
        )
    columns = [column for column in baseline_columns if column in fresh_columns]
    baseline_by_id = {identity(row): row for row in baseline_rows}
    matched = 0
    for row in fresh_rows:
        committed = baseline_by_id.get(identity(row))
        if committed is None:
            continue
        matched += 1
        label = ", ".join(
            f"{key}={value}"
            for key, value in row.items()
            if not isinstance(value, float)
        )
        for column in columns:
            if committed[column] < GATED_MIN_RATIO:
                continue  # parity report, not a speedup claim
            floor = committed[column] * tolerance
            if row[column] < floor:
                failures.append(
                    f"{name}: [{label}] {column} fell to "
                    f"{row[column]:.2f} (< {tolerance:.2f} x committed "
                    f"{committed[column]:.2f})"
                )
    if matched == 0:
        # Different sweep configuration (e.g. smoke-only scales): guard
        # the export-wide best claim per ratio column instead.
        for column in columns:
            committed_best = max(row[column] for row in baseline_rows)
            if committed_best < GATED_MIN_RATIO:
                continue
            fresh_best = max(row[column] for row in fresh_rows)
            if fresh_best < committed_best * tolerance:
                failures.append(
                    f"{name}: export-wide best {column} fell to "
                    f"{fresh_best:.2f} (< {tolerance:.2f} x committed "
                    f"best {committed_best:.2f}; no identity-matched rows)"
                )
        print(f"{name}: 0 matched rows, compared export-wide best claims only")
    else:
        print(
            f"{name}: {matched}/{len(fresh_rows)} rows matched, "
            f"columns gated: {', '.join(columns) or '(none)'}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("exports", nargs="+", help="export file names")
    parser.add_argument("--baseline-dir", type=Path, default=Path("baseline"))
    parser.add_argument("--fresh-dir", type=Path, default=Path("."))
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fresh ratio must stay above tolerance * committed ratio",
    )
    arguments = parser.parse_args()
    failures: list[str] = []
    for name in arguments.exports:
        failures.extend(
            check_file(
                name,
                arguments.baseline_dir,
                arguments.fresh_dir,
                arguments.tolerance,
            )
        )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
