"""Histogram ablation: bucket count vs estimation error vs plan quality.

Section 5 credits the "lightweight histogram" for minSupport/minJoin
beating semi-naive.  This bench quantifies the trade-off the paper
leaves implicit: more buckets cost more space but estimate better, and
estimation quality feeds straight into plan choice.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_histogram_ablation
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.statistics import ExactStatistics

BUCKETS = (4, 16, 64, 256)


@pytest.mark.parametrize("buckets", BUCKETS, ids=lambda b: f"b{b}")
def test_histogram_build(benchmark, prepared_bench, buckets):
    database = prepared_bench.database(2)
    counts = database.index.counts_by_path()
    total = ExactStatistics.from_index(database.index).total_paths_k
    benchmark.group = "histogram-build"
    histogram = benchmark.pedantic(
        lambda: EquiDepthHistogram.from_counts(
            counts, k=2, total_paths_k=total, buckets=buckets
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["buckets_used"] = histogram.bucket_count
    benchmark.extra_info["mean_abs_error"] = round(
        histogram.mean_absolute_error(counts), 2
    )


def test_error_decreases_with_buckets(prepared_bench):
    rows = run_histogram_ablation(
        prepared_bench, k=2, bucket_counts=BUCKETS, repeats=1
    )
    errors = [row.mean_absolute_error for row in rows]
    assert errors[-1] <= errors[0] + 1e-9


@pytest.mark.parametrize("buckets", (4, 256), ids=lambda b: f"b{b}")
def test_minsupport_under_histogram(benchmark, prepared_bench, buckets):
    """End-to-end workload time with a coarse vs fine histogram."""
    database = prepared_bench.database(2)
    counts = database.index.counts_by_path()
    total = ExactStatistics.from_index(database.index).total_paths_k
    database._histogram = EquiDepthHistogram.from_counts(
        counts, k=2, total_paths_k=total, buckets=buckets
    )
    benchmark.group = "histogram-plan-quality"
    from repro.bench.queries import workload

    queries = workload(prepared_bench.labels)

    def run_workload():
        return [
            database.query(query.text, method="minsupport", use_cache=False)
            for query in queries
        ]

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)
    database.build_index()  # restore
