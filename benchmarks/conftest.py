"""Shared fixtures for the pytest-benchmark suite.

The benchmarks reproduce the paper's experiments (see DESIGN.md's
experiment index).  Graphs default to the "small" synthetic Advogato
scale so the whole suite runs in minutes of pure-Python time; the
harness functions in :mod:`repro.bench` accept larger scales for
paper-sized runs (see ``examples/figure2_experiment.py``).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import PreparedWorkload, advogato_workload


@pytest.fixture(scope="session")
def prepared_small() -> PreparedWorkload:
    """Advogato-like graph (120 nodes / 600 edges), k=1..3 indexed."""
    return advogato_workload(scale="small", ks=(1, 2, 3))


@pytest.fixture(scope="session")
def prepared_bench() -> PreparedWorkload:
    """Advogato-like graph (300 nodes / 1800 edges), k=1..2 indexed."""
    return advogato_workload(scale="bench", ks=(1, 2))
