"""Write-path ablation: delta shard patching vs ball rebuilds.

Measures the tentpole claim of the write path: absorbing a stream of
point mutations through per-shard delta patches
(``delta_patching=True``, the default) against the same stream where
every changed group takes the ball rebuild of its touched shards
(``delta_patching=False``).  The stream interleaves reads the way an
online store would, and answers between the two engines are pinned
equal at the end — the speedup is never bought with wrongness.

The ratio column ``speedup_vs_rebuild`` is gated twice: the pytest
acceptance below requires >= 3x at 4 shards, and the committed
``BENCH_write.json`` export puts it under ``check_regression.py``'s
tolerance band in CI.

Run directly to print a table and export ``BENCH_write.json``::

    PYTHONPATH=src python benchmarks/bench_write_path.py          # full
    PYTHONPATH=src python benchmarks/bench_write_path.py --smoke  # small

or under pytest (smoke sizes plus the >=3x acceptance)::

    PYTHONPATH=src python -m pytest benchmarks/bench_write_path.py -q
"""

from __future__ import annotations

import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api import GraphDatabase, ServiceConfig
from repro.bench.export import write_json
from repro.bench.workloads import SCALES
from repro.write import Mutation

#: (scale, shards, mutations in the stream).
FULL_CONFIG = ("bench", 4, 120)
SMOKE_CONFIG = ("small", 4, 40)

#: One pinned read per this many mutations (same stream both sides).
READ_EVERY = 8
READ_QUERY = "a/b"


@dataclass(frozen=True, slots=True)
class WriteRow:
    """One mutation-stream run against one index-absorption mode."""

    scale: str
    shards: int
    mode: str
    mutations: int
    patched: int
    rebuilt: int
    seconds: float
    baseline_seconds: float
    mutations_per_s: float
    speedup_vs_rebuild: float


def _graph_edges(scale: str, seed: int = 1):
    nodes, edges = SCALES[scale]
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    return names, [
        (rng.choice(names), rng.choice("abc"), rng.choice(names))
        for _ in range(edges)
    ]


def _stream(names, count: int, seed: int = 2):
    """Point adds and removes; removes target previously added edges,
    so the label alphabet never changes (no forced full rebuilds)."""
    rng = random.Random(seed)
    live: list[tuple[str, str, str]] = []
    out: list[Mutation] = []
    for _ in range(count):
        if live and rng.random() < 0.4:
            out.append(Mutation.remove(*live.pop(rng.randrange(len(live)))))
        else:
            edge = (rng.choice(names), rng.choice("abc"), rng.choice(names))
            out.append(Mutation.add(*edge))
            live.append(edge)
    return out


def _run(scale: str, shards: int, count: int, patching: bool):
    names, edges = _graph_edges(scale)
    database = GraphDatabase.from_edges(
        edges,
        config=ServiceConfig(k=2, shards=shards, delta_patching=patching),
    )
    database.query(READ_QUERY)  # build outside the timed window
    stream = _stream(names, count)
    started = time.perf_counter()
    for position, mutation in enumerate(stream):
        database.apply(mutation)
        if position % READ_EVERY == 0:
            database.query(READ_QUERY, use_cache=False)
    elapsed = time.perf_counter() - started
    stats = database.stats().write
    answers = {
        query: database.query(query, use_cache=False).pairs
        for query in ("a/b", "b/c", "(a|b)/c")
    }
    database.close()
    return elapsed, stats.patched, stats.rebuilt, answers


def run_ablation(
    scale: str = SMOKE_CONFIG[0],
    shards: int = SMOKE_CONFIG[1],
    count: int = SMOKE_CONFIG[2],
) -> list[WriteRow]:
    """Both modes over the identical stream; answers pinned equal."""
    patch_s, patched, patch_rb, patch_answers = _run(scale, shards, count, True)
    rebuild_s, rb_patched, rebuilt, rebuild_answers = _run(
        scale, shards, count, False
    )
    assert patch_answers == rebuild_answers, "patching changed an answer"
    return [
        WriteRow(
            scale=scale,
            shards=shards,
            mode="patch",
            mutations=count,
            patched=patched,
            rebuilt=patch_rb,
            seconds=patch_s,
            baseline_seconds=rebuild_s,
            mutations_per_s=count / patch_s if patch_s else 0.0,
            speedup_vs_rebuild=rebuild_s / patch_s if patch_s else 0.0,
        ),
        WriteRow(
            scale=scale,
            shards=shards,
            mode="rebuild",
            mutations=count,
            patched=rb_patched,
            rebuilt=rebuilt,
            seconds=rebuild_s,
            baseline_seconds=rebuild_s,
            mutations_per_s=count / rebuild_s if rebuild_s else 0.0,
            speedup_vs_rebuild=1.0,
        ),
    ]


def export_rows(
    rows: list[WriteRow], path: str | Path = "BENCH_write.json"
) -> Path:
    write_json(rows, path, experiment="write-path-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_delta_patching_beats_rebuild_3x():
    """Acceptance: the patched write path is >= 3x rebuild at 4 shards."""
    rows = run_ablation()
    patch_row = rows[0]
    assert patch_row.mode == "patch" and patch_row.shards == 4
    # Every changed group was delta-patched; none fell back to rebuild.
    assert patch_row.patched > 0 and patch_row.rebuilt == 0
    assert patch_row.speedup_vs_rebuild >= 3.0, (
        f"delta patching only {patch_row.speedup_vs_rebuild:.2f}x"
    )


def test_export_round_trips(tmp_path):
    rows = run_ablation(count=10)
    path = export_rows(rows, tmp_path / "BENCH_write.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "write-path-ablation"
    assert {"mutations_per_s", "speedup_vs_rebuild"} <= set(payload["rows"][0])


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    scale, shards, count = SMOKE_CONFIG if smoke else FULL_CONFIG
    rows = run_ablation(scale, shards, count)
    header = (
        f"{'mode':<8} {'scale':<6} {'shards':>6} {'muts':>5} "
        f"{'seconds':>8} {'mut/s':>8} {'speedup':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"{row.mode:<8} {row.scale:<6} {row.shards:>6} "
            f"{row.mutations:>5} {row.seconds:>8.3f} "
            f"{row.mutations_per_s:>8.1f} {row.speedup_vs_rebuild:>7.2f}x"
        )
    export_rows(rows)
    print("wrote BENCH_write.json")


if __name__ == "__main__":
    main()
