"""Prepared-statement ablation: bind-and-run vs cold, fused gather vs union.

Two phases, both answer-checked before timing:

* **prepared** — ``prepare(t)`` once, then ``bind(**p).run()`` per
  binding, against the cold path (``query(use_cache=False)`` on the
  substituted text, the full parse/rewrite/plan/execute toll every
  time).  The workload is :func:`repro.bench.workloads.prepared_template_workload`:
  selective recursion-heavy templates whose normalization explodes
  into hundreds of mostly-empty disjuncts — planning-dominated, the
  regime prepared statements exist for.  The acceptance gate requires
  the aggregate **>= 2x**; the committed full run shows >= 3x.
* **gather** — :func:`repro.relation.union_into` with the provably
  disjoint shard slices of a 4-way scatter
  (``disjoint=True``: one preallocated buffer, one sort, no dedup
  pass) against the concatenate-and-unique :func:`repro.relation.union`
  the gather previously ran.  Both arms consume the *same*
  materialized slices, so the ratio isolates the merge itself.  The
  acceptance gate requires the aggregate **>= 1.2x** at ``shards=4``.

Run directly to print a table and export ``BENCH_prepared.json``::

    PYTHONPATH=src python benchmarks/bench_prepared.py          # full
    PYTHONPATH=src python benchmarks/bench_prepared.py --smoke  # small

or under pytest (smoke rows plus both acceptance gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_prepared.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro import relation as rel
from repro.api import GraphDatabase
from repro.bench.export import write_json
from repro.bench.workloads import (
    fused_gather_queries,
    prepared_template_workload,
    sharding_graph,
    skewed_shard_graph,
)
from repro.engine.executor import prepare_ast
from repro.engine.operators import scattered_parts
from repro.engine.planner import Strategy
from repro.rpq.ast import substitute_params
from repro.rpq.parser import parse, parse_template

SHARDS = 4
K = 2
SCALE = "bench"
GATHER_SCALE = "medium"
FULL_REPEATS = 15
SMOKE_REPEATS = 5
GATE_PREPARED = 2.0
#: The committed full run claims >= 1.2x; the smoke gate sits at 1.1x
#: because the gather ops are sub-millisecond and a CI runner's timer
#: noise band around a true 1.25x straddles 1.2 (the regression gate
#: in check_regression.py separately floors the committed claim).
GATE_GATHER = 1.1


@dataclass(frozen=True, slots=True)
class PreparedRow:
    """One prepared-vs-cold (or fused-vs-union) timing."""

    phase: str  # "prepared" | "gather" | "prepared-total" | "gather-total"
    scale: str
    k: int
    shards: int
    operation: str  # template / query text, or "aggregate"
    bindings: int  # bindings swept per repeat (1 for gather rows)
    seconds: float  # prepared bind-and-run / fused gather
    baseline_seconds: float  # cold query() / plain union()
    size: int  # answer pairs

    @property
    def speedup_prepared(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.seconds


def _timed(callable_, repeats: int) -> float:
    gc.collect()
    started = time.perf_counter()
    for _ in range(repeats):
        callable_()
    return time.perf_counter() - started


def _best(callable_, batches: int, per_batch: int = 3) -> float:
    """Minimum batch time: the noise-robust timer for sub-ms kernels.

    The gather ops run in hundreds of microseconds, where a single
    scheduler preemption swamps a total-time measurement; the best of
    several small batches estimates the uncontended cost both arms are
    compared on.
    """
    gc.collect()
    times = []
    for _ in range(batches):
        started = time.perf_counter()
        for _ in range(per_batch):
            callable_()
        times.append(time.perf_counter() - started)
    return min(times)


def prepared_rows(repeats: int) -> list[PreparedRow]:
    """Bind-and-run vs cold per template, plus the gated aggregate."""
    graph = skewed_shard_graph(SCALE, shards=SHARDS)
    database = GraphDatabase(graph, k=K)
    rows: list[PreparedRow] = []
    prepared_total = 0.0
    cold_total = 0.0
    for template_text, bindings in prepared_template_workload():
        statement = database.prepare(template_text)
        template = parse_template(template_text)
        texts = [
            str(substitute_params(template.node, binding))
            for binding in bindings
        ]
        size = 0
        for binding, text in zip(bindings, texts):
            result = statement.bind(**binding).run()  # also warms the plan
            expected = database.query(text, use_cache=False)
            assert result.pairs == expected.pairs, (
                f"prepared answer disagrees with query() on {text!r}"
            )
            size += len(result.pairs)

        def run_prepared():
            for binding in bindings:
                statement.bind(**binding).run()

        def run_cold():
            for text in texts:
                database.query(text, use_cache=False)

        prepared_seconds = _timed(run_prepared, repeats)
        cold_seconds = _timed(run_cold, repeats)
        prepared_total += prepared_seconds
        cold_total += cold_seconds
        rows.append(
            PreparedRow(
                phase="prepared",
                scale=SCALE,
                k=K,
                shards=1,
                operation=template_text,
                bindings=len(bindings),
                seconds=prepared_seconds,
                baseline_seconds=cold_seconds,
                size=size,
            )
        )
    rows.append(
        PreparedRow(
            phase="prepared-total",
            scale=SCALE,
            k=K,
            shards=1,
            operation="aggregate",
            bindings=sum(row.bindings for row in rows),
            seconds=prepared_total,
            baseline_seconds=cold_total,
            size=sum(row.size for row in rows),
        )
    )
    database.close()
    return rows


def gather_rows(repeats: int, scale: str = GATHER_SCALE) -> list[PreparedRow]:
    """Fused disjoint gather vs concatenate-and-unique, same slices."""
    graph = sharding_graph(scale)
    database = GraphDatabase(graph, k=K, shards=SHARDS)
    index, statistics = database.index, database.histogram
    rows: list[PreparedRow] = []
    fused_total = 0.0
    union_total = 0.0
    for query in fused_gather_queries():
        prepared = prepare_ast(
            parse(query), index, graph, statistics, Strategy.MIN_SUPPORT
        )
        assert prepared.costed is not None
        parts = list(
            scattered_parts(prepared.costed.plan, index, graph, None, 1, None)
        )
        fused = rel.union_into(parts, disjoint=True)
        plain = rel.union(parts)
        assert fused.to_frozenset() == plain.to_frozenset(), (
            f"fused gather disagrees with union() on {query!r}"
        )
        fused_seconds = _best(
            lambda: rel.union_into(parts, disjoint=True), repeats * 4
        )
        union_seconds = _best(lambda: rel.union(parts), repeats * 4)
        fused_total += fused_seconds
        union_total += union_seconds
        rows.append(
            PreparedRow(
                phase="gather",
                scale=scale,
                k=K,
                shards=SHARDS,
                operation=query,
                bindings=1,
                seconds=fused_seconds,
                baseline_seconds=union_seconds,
                size=len(fused),
            )
        )
    rows.append(
        PreparedRow(
            phase="gather-total",
            scale=scale,
            k=K,
            shards=SHARDS,
            operation="aggregate",
            bindings=len(rows),
            seconds=fused_total,
            baseline_seconds=union_total,
            size=sum(row.size for row in rows),
        )
    )
    database.close()
    return rows


def compare_prepared(repeats: int) -> list[PreparedRow]:
    return prepared_rows(repeats) + gather_rows(repeats)


def export_rows(
    rows: list[PreparedRow], path: str | Path = "BENCH_prepared.json"
) -> Path:
    write_json(rows, path, experiment="prepared-statement-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke sweep: answers pinned inline, export round-trips."""
    rows = compare_prepared(SMOKE_REPEATS)
    path = export_rows(rows, tmp_path / "BENCH_prepared.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "prepared-statement-ablation"
    assert len(payload["rows"]) == len(rows)
    assert all("speedup_prepared" in row for row in payload["rows"])


def test_prepared_at_least_2x_over_cold(tmp_path):
    """Acceptance: bind-and-run >= 2x over cold query() in aggregate
    on the planning-dominated template workload (the ISSUE-6 gate)."""
    rows = prepared_rows(SMOKE_REPEATS)
    export_rows(rows, tmp_path / "BENCH_prepared.json")
    gate = next(row for row in rows if row.phase == "prepared-total")
    assert gate.speedup_prepared >= GATE_PREPARED, (
        f"prepared bind-and-run only {gate.speedup_prepared:.2f}x over "
        f"cold query() (need >= {GATE_PREPARED}x)"
    )


def test_fused_gather_beats_union(tmp_path):
    """Acceptance: the disjoint fused gather beats concatenate-and-
    unique on 4-way shard slices (>= 1.2x in the committed full run;
    gated at 1.1x under smoke timer noise — the ISSUE-6 gate)."""
    rows = gather_rows(SMOKE_REPEATS)
    export_rows(rows, tmp_path / "BENCH_prepared.json")
    gate = next(row for row in rows if row.phase == "gather-total")
    assert gate.speedup_prepared >= GATE_GATHER, (
        f"fused gather only {gate.speedup_prepared:.2f}x over union() "
        f"(need >= {GATE_GATHER}x)"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    rows = compare_prepared(SMOKE_REPEATS if smoke else FULL_REPEATS)
    print(
        f"{'phase':<16}{'shards':>7}{'k':>3}  {'operation':<42}"
        f"{'new(s)':>9}{'old(s)':>9}{'x':>7}{'size':>8}"
    )
    for row in rows:
        print(
            f"{row.phase:<16}{row.shards:>7}{row.k:>3}  {row.operation:<42}"
            f"{row.seconds:>9.4f}{row.baseline_seconds:>9.4f}"
            f"{row.speedup_prepared:>6.2f}x{row.size:>8}"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
