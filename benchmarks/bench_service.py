"""Service-layer ablation: ``query_batch`` vs a sequential ``query()`` loop.

The concurrent service layer answers a batch of queries with three
mechanisms a plain loop lacks: key-level dedup (identical queries in
the batch execute once), a batch-wide shared scan memo (a plan subtree
appearing under any number of queries is computed once), and optional
fan-out over a thread pool.  This benchmark measures all three on the
shared-subplan workload from
:func:`repro.bench.workloads.service_batch_queries` — a skewed draw of
2-/3-step label paths over the Advogato-like graph, the shape of heavy
repeated traffic.

Both sides run with ``use_cache=False``: the whole-answer LRU would
otherwise absorb exact repeats and measure nothing but itself.  What is
compared is pure execution of the same query list.

Run directly to print a table and export ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # small

or under pytest (smoke rows plus the >= 1.5x acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.export import write_json
from repro.bench.workloads import advogato_workload, service_batch_queries

#: (scale, batch size) of the full and smoke sweeps.  The acceptance
#: gate runs on the smoke configuration so CI stays fast.
FULL_CONFIG = ("bench", 200)
SMOKE_CONFIG = ("small", 120)
WORKER_COUNTS = (1, 2, 4)


@dataclass(frozen=True, slots=True)
class ServiceRow:
    """One batched-vs-loop comparison on the shared-subplan workload."""

    mode: str  # "sequential-loop" or "batch"
    workers: int  # 0 for the loop
    scale: str
    queries: int
    distinct: int
    seconds: float
    loop_seconds: float

    @property
    def speedup_vs_loop(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.loop_seconds / self.seconds


def _timed(callable_):
    gc.collect()
    started = time.perf_counter()
    result = callable_()
    return time.perf_counter() - started, result


def compare_service(
    scale: str = SMOKE_CONFIG[0],
    count: int = SMOKE_CONFIG[1],
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
) -> list[ServiceRow]:
    """Time the loop and the batch at each worker count; check answers."""
    prepared = advogato_workload(scale=scale, ks=(2,))
    database = prepared.database(2)
    queries = service_batch_queries(count)
    distinct = len(set(queries))

    loop_seconds, loop_results = _timed(
        lambda: [
            database.query(query, use_cache=False) for query in queries
        ]
    )
    rows = [
        ServiceRow(
            mode="sequential-loop",
            workers=0,
            scale=scale,
            queries=count,
            distinct=distinct,
            seconds=loop_seconds,
            loop_seconds=loop_seconds,
        )
    ]
    expected = [result.pairs for result in loop_results]
    for workers in worker_counts:
        batch_seconds, batch_results = _timed(
            lambda: database.query_batch(
                queries, use_cache=False, workers=workers
            )
        )
        assert [result.pairs for result in batch_results] == expected
        rows.append(
            ServiceRow(
                mode="batch",
                workers=workers,
                scale=scale,
                queries=count,
                distinct=distinct,
                seconds=batch_seconds,
                loop_seconds=loop_seconds,
            )
        )
    return rows


def export_rows(
    rows: list[ServiceRow], path: str | Path = "BENCH_service.json"
) -> Path:
    """Write the comparison as a standard experiment export."""
    write_json(rows, path, experiment="service-batch-ablation")
    return Path(path)


# -- pytest entry points -------------------------------------------------------


def test_smoke_rows_agree_and_export(tmp_path):
    """Smoke mode: batch answers equal the loop's, export round-trips."""
    rows = compare_service()
    path = export_rows(rows, tmp_path / "BENCH_service.json")
    from repro.bench.export import read_json

    payload = read_json(path)
    assert payload["experiment"] == "service-batch-ablation"
    assert len(payload["rows"]) == 1 + len(WORKER_COUNTS)
    assert all("speedup_vs_loop" in row for row in payload["rows"])


def test_batch_at_least_1_5x(tmp_path):
    """Acceptance: query_batch >= 1.5x a sequential query() loop on the
    shared-subplan workload (the ISSUE-3 service-layer gate)."""
    rows = compare_service()
    export_rows(rows, tmp_path / "BENCH_service.json")
    gate = next(row for row in rows if row.mode == "batch" and row.workers == 1)
    assert gate.speedup_vs_loop >= 1.5, (
        f"query_batch only {gate.speedup_vs_loop:.2f}x over the "
        f"sequential loop"
    )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    scale, count = SMOKE_CONFIG if smoke else FULL_CONFIG
    rows = compare_service(scale=scale, count=count)
    print(
        f"{'mode':<18}{'workers':>8}{'queries':>9}{'distinct':>10}"
        f"{'seconds':>10}{'vs loop':>9}"
    )
    for row in rows:
        print(
            f"{row.mode:<18}{row.workers:>8}{row.queries:>9}"
            f"{row.distinct:>10}{row.seconds:>10.3f}"
            f"{row.speedup_vs_loop:>8.1f}x"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
