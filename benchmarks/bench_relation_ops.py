"""Relation-kernel ablation: seed tuple-set operators vs columnar kernels.

Measures the exact kernels the executor runs — merge join, hash join,
union, dedup-sort — in both representations:

* **seed** — the v1.0 tuple-set implementations, frozen in
  :mod:`repro.bench.legacy`;
* **columnar** — the array-backed kernels of :mod:`repro.relation`
  (vectorized when numpy is importable, packed-int scalar otherwise).

Run directly to print a table and export ``BENCH_relation.json``
through the standard machinery::

    PYTHONPATH=src python benchmarks/bench_relation_ops.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_relation_ops.py -q
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.bench.export import write_json
from repro.bench.legacy import (
    tuple_dedup_sort,
    tuple_hash_join,
    tuple_merge_join,
    tuple_union,
)
from repro.bench.workloads import synthetic_join_inputs
from repro.relation import Order, Relation
from repro import relation as rel

SIZES = (1_000, 10_000, 50_000)
ROUNDS = 3


@dataclass(frozen=True, slots=True)
class RelationOpRow:
    """One kernel comparison at one input size."""

    operation: str
    size: int
    seed_seconds: float
    columnar_seconds: float
    output_size: int

    @property
    def speedup(self) -> float:
        if self.columnar_seconds == 0:
            return float("inf")
        return self.seed_seconds / self.columnar_seconds


def _inputs(size: int, seed: int = 7):
    """The shared synthetic workload, same as bench_join_strategies."""
    return synthetic_join_inputs(size, seed)


def _relations(size: int, seed: int = 7):
    left, right = _inputs(size, seed)
    return (
        Relation.from_pairs(left, Order.BY_TGT),
        Relation.from_pairs(right, Order.BY_SRC),
    )


def _best_of(callable_, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def compare_kernels(sizes: tuple[int, ...] = SIZES) -> list[RelationOpRow]:
    """Time every kernel pair; returns one row per (operation, size)."""
    rows: list[RelationOpRow] = []
    for size in sizes:
        left, right = _inputs(size)
        left_rel, right_rel = _relations(size)
        left_src_sorted = sorted(left)

        seed_s, seed_out = _best_of(lambda: tuple_merge_join(left, right))
        col_s, col_out = _best_of(lambda: rel.merge_join(left_rel, right_rel))
        assert set(seed_out) == col_out.to_set()
        rows.append(RelationOpRow("merge_join", size, seed_s, col_s, len(col_out)))

        seed_s, seed_out = _best_of(
            lambda: tuple_hash_join(left_src_sorted, right)
        )
        col_s, col_out = _best_of(lambda: rel.hash_join(left_rel, right_rel))
        assert set(seed_out) == col_out.to_set()
        rows.append(RelationOpRow("hash_join", size, seed_s, col_s, len(col_out)))

        seed_s, seed_out = _best_of(lambda: tuple_union([left, right]))
        col_s, col_out = _best_of(lambda: rel.union([left_rel, right_rel]))
        assert set(seed_out) == col_out.to_set()
        rows.append(RelationOpRow("union", size, seed_s, col_s, len(col_out)))

        doubled = left + left
        doubled_rel = Relation.from_pairs(doubled)
        seed_s, seed_out = _best_of(lambda: tuple_dedup_sort(doubled))
        col_s, col_out = _best_of(
            lambda: rel.dedup_sort(doubled_rel, Order.BY_SRC)
        )
        assert seed_out == col_out.pairs()
        rows.append(RelationOpRow("dedup_sort", size, seed_s, col_s, len(col_out)))
    return rows


def export_rows(
    rows: list[RelationOpRow], path: str | Path = "BENCH_relation.json"
) -> Path:
    """Write the comparison as a standard experiment export."""
    write_json(rows, path, experiment="relation-kernel-ablation")
    return Path(path)


# -- pytest-benchmark entry points ---------------------------------------------


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_seed_merge_join(benchmark, size):
    left, right = _inputs(size)
    benchmark.group = f"merge-{size}"
    result = benchmark.pedantic(
        lambda: tuple_merge_join(left, right), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_columnar_merge_join(benchmark, size):
    left_rel, right_rel = _relations(size)
    benchmark.group = f"merge-{size}"
    result = benchmark.pedantic(
        lambda: rel.merge_join(left_rel, right_rel), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_seed_hash_join(benchmark, size):
    left, right = _inputs(size)
    left = sorted(left)
    benchmark.group = f"hash-{size}"
    result = benchmark.pedantic(
        lambda: tuple_hash_join(left, right), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s}")
def test_columnar_hash_join(benchmark, size):
    left_rel, right_rel = _relations(size)
    benchmark.group = f"hash-{size}"
    result = benchmark.pedantic(
        lambda: rel.hash_join(left_rel, right_rel), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["output"] = len(result)


@pytest.mark.skipif(
    rel._np is None,
    reason="the 2x bar is for the vectorized path; the scalar fallback "
    "only has to be correct",
)
def test_columnar_merge_join_at_least_2x(tmp_path):
    """The acceptance bar: ≥ 2× on the large synthetic workload.

    Also exercises the export path so BENCH_relation.json always
    reflects the run that proved the bar.
    """
    rows = compare_kernels(sizes=(50_000,))
    export_rows(rows, tmp_path / "BENCH_relation.json")
    merge = next(row for row in rows if row.operation == "merge_join")
    assert merge.speedup >= 2.0, (
        f"columnar merge join only {merge.speedup:.2f}x over the seed kernel"
    )


@pytest.mark.skipif(
    rel._np is None,
    reason="the 1x bar is for the vectorized path; the scalar fallback "
    "only has to be correct",
)
def test_columnar_union_at_least_1x_at_small_size():
    """The ISSUE-2 bar: union must not lose to the seed at 1k rows.

    At this size the vectorized path runs, so the guard is on the
    sorted-unique dedup (``_np_sorted_unique``): reverting it to
    ``np.unique`` brings back the 0.52x regression.  The plain
    set-union cutoff only covers inputs below ``_VECTOR_MIN``.
    """
    rows = compare_kernels(sizes=(1_000,))
    union = next(row for row in rows if row.operation == "union")
    assert union.speedup >= 1.0, (
        f"columnar union only {union.speedup:.2f}x over the seed at 1k rows"
    )


def test_rows_export_roundtrip(tmp_path):
    from repro.bench.export import read_json

    rows = compare_kernels(sizes=(1_000,))
    path = export_rows(rows, tmp_path / "BENCH_relation.json")
    payload = read_json(path)
    assert payload["experiment"] == "relation-kernel-ablation"
    assert payload["row_type"] == "RelationOpRow"
    assert len(payload["rows"]) == len(rows)
    assert all("speedup" in row for row in payload["rows"])


def main() -> None:
    rows = compare_kernels()
    print(f"{'op':<12}{'size':>8}{'seed ms':>12}{'columnar ms':>14}{'speedup':>10}")
    for row in rows:
        print(
            f"{row.operation:<12}{row.size:>8}"
            f"{row.seed_seconds * 1e3:>12.2f}"
            f"{row.columnar_seconds * 1e3:>14.2f}"
            f"{row.speedup:>9.1f}x"
        )
    path = export_rows(rows)
    print(f"\nwrote {path.resolve()}")


if __name__ == "__main__":
    main()
