"""Index construction: build time and size vs k (thesis-scope table).

The companion work the paper cites ([14], the from-scratch B+tree
implementation) studies index size and construction cost; this bench
regenerates that table for k = 1..3 on both backends.  Size growth is
asserted to be monotone (each k adds strictly more label paths).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_index_build
from repro.indexes.builder import count_label_paths
from repro.indexes.pathindex import PathIndex

KS = (1, 2, 3)


@pytest.mark.parametrize("k", KS, ids=lambda k: f"k{k}")
def test_build_memory_index(benchmark, prepared_bench, k):
    graph = prepared_bench.graph
    benchmark.group = "index-build-memory"
    index = benchmark.pedantic(
        lambda: PathIndex.build(graph, k), rounds=1, iterations=1
    )
    benchmark.extra_info["entries"] = index.entry_count
    benchmark.extra_info["paths"] = index.path_count


@pytest.mark.parametrize("k", (1, 2), ids=lambda k: f"k{k}")
def test_build_disk_index(benchmark, prepared_small, k, tmp_path):
    graph = prepared_small.graph
    benchmark.group = "index-build-disk"
    counter = iter(range(10_000))

    def build():
        path = tmp_path / f"index_{k}_{next(counter)}.db"
        index = PathIndex.build(graph, k, backend="disk", path=path)
        index.close()
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["entries"] = index.entry_count


def test_size_table_shape(prepared_small):
    """Entries and path counts grow strictly with k."""
    rows = run_index_build(prepared_small.graph, ks=KS)
    entries = [row.entries for row in rows]
    paths = [row.paths for row in rows]
    assert entries == sorted(entries) and entries[0] < entries[-1]
    assert paths == sorted(paths) and paths[0] < paths[-1]
    labels = len(prepared_small.graph.labels())
    for row in rows:
        assert row.paths <= count_label_paths(labels, row.k)
