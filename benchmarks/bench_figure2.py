"""Figure 2: run-times of the 8 Advogato queries, 4 methods, k=1..3.

Each benchmark case is one (query, method, k) cell of the paper's three
panels.  The paper's qualitative claims are asserted as a final
aggregate check (``test_figure2_trends``): naive is worst, the
histogram-guided strategies beat or match semi-naive, and larger k
helps every method except naive.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import STRATEGIES, run_figure2
from repro.bench.queries import workload
from repro.bench.reporting import figure2_trends

QUERIES = workload()
KS = (1, 2, 3)


@pytest.mark.parametrize("k", KS, ids=lambda k: f"k{k}")
@pytest.mark.parametrize("method", STRATEGIES)
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_figure2_cell(benchmark, prepared_small, query, method, k):
    """One cell of Figure 2: median run-time of a query/method/k triple."""
    database = prepared_small.database(1 if method == "naive" else k)
    benchmark.group = f"figure2-k{k}"

    def run():
        return database.query(query.text, method=method, use_cache=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["answer_size"] = len(result.pairs)
    benchmark.extra_info["query"] = query.text


def test_figure2_trends(prepared_small):
    """The shape of Figure 2 (Section 5's observations) must hold."""
    measurements = run_figure2(prepared_small, ks=(1, 3), repeats=5)
    trends = figure2_trends(measurements)
    assert trends["naive_worst"], "naive must be the slowest method overall"
    assert trends["k_improves"], "larger k must not slow non-naive methods"
