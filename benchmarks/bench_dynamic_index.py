"""Incremental maintenance vs full rebuild (the paper's future work).

The point of :class:`~repro.indexes.dynamic.DynamicPathIndex` is that
an edge insertion touches only the edge's k-neighborhood; this bench
quantifies the claim by comparing one incremental insert against
rebuilding ``I_{G,k}`` from scratch.
"""

from __future__ import annotations

import itertools

import pytest

from repro.graph.generators import advogato_like
from repro.indexes.dynamic import DynamicPathIndex
from repro.indexes.pathindex import PathIndex

KS = (1, 2)


@pytest.fixture(scope="module")
def base_graph():
    return advogato_like(nodes=150, edges=900, seed=21)


@pytest.mark.parametrize("k", KS, ids=lambda k: f"k{k}")
def test_incremental_insert(benchmark, base_graph, k):
    benchmark.group = f"maintenance-k{k}"
    dynamic = DynamicPathIndex(
        advogato_like(nodes=150, edges=900, seed=21), k
    )
    counter = itertools.count()
    nodes = dynamic.graph.node_names()

    def insert_one():
        step = next(counter)
        source = nodes[step % len(nodes)]
        target = nodes[(step * 7 + 3) % len(nodes)]
        dynamic.add_edge(source, "journeyer", target)

    benchmark.pedantic(insert_one, rounds=10, iterations=1)
    benchmark.extra_info["entries"] = dynamic.entry_count


@pytest.mark.parametrize("k", KS, ids=lambda k: f"k{k}")
def test_full_rebuild(benchmark, base_graph, k):
    benchmark.group = f"maintenance-k{k}"
    index = benchmark.pedantic(
        lambda: PathIndex.build(base_graph, k), rounds=2, iterations=1
    )
    benchmark.extra_info["entries"] = index.entry_count


def test_incremental_is_faster_than_rebuild(base_graph):
    """One delta insert must beat one full rebuild at k=2."""
    import time

    dynamic = DynamicPathIndex(advogato_like(nodes=150, edges=900, seed=21), 2)
    nodes = dynamic.graph.node_names()
    started = time.perf_counter()
    dynamic.add_edge(nodes[0], "journeyer", nodes[17])
    incremental = time.perf_counter() - started

    started = time.perf_counter()
    PathIndex.build(dynamic.graph, 2)
    rebuild = time.perf_counter() - started
    assert incremental < rebuild
