"""Single-source / boolean lookups vs all-pairs evaluation.

Example 3.1 shows the index's prefix-lookup shapes; this bench shows
why they matter: answering "whom does *this node* reach" via
``I(p, a)`` frontier expansion touches one neighborhood, while the
all-pairs engine materializes the full relation.
"""

from __future__ import annotations

import pytest

from repro.engine.navigation import evaluate_from, evaluate_pair
from repro.rpq.parser import parse

QUERY = "master/journeyer/apprentice/journeyer"


@pytest.fixture(scope="module")
def setup(prepared_bench):
    database = prepared_bench.database(2)
    node = parse(QUERY)
    return database, node


def test_all_pairs(benchmark, setup):
    database, _ = setup
    benchmark.group = "navigation"
    result = benchmark.pedantic(
        lambda: database.query(QUERY, method="minsupport", use_cache=False),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["answer_size"] = len(result.pairs)


def test_single_source(benchmark, setup):
    database, node = setup
    benchmark.group = "navigation"
    source = database.graph.node_id("n3")
    targets = benchmark.pedantic(
        lambda: evaluate_from(
            node, source, database.index, database.graph, database.histogram
        ),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["targets"] = len(targets)


def test_boolean_probe(benchmark, setup):
    database, node = setup
    benchmark.group = "navigation"
    graph = database.graph
    source, target = graph.node_id("n3"), graph.node_id("n5")
    benchmark.pedantic(
        lambda: evaluate_pair(
            node, source, target, database.index, graph, database.histogram
        ),
        rounds=5, iterations=1, warmup_rounds=1,
    )


def test_single_source_consistent_with_all_pairs(setup):
    database, node = setup
    relation = database.query(QUERY, method="reference").pairs
    graph = database.graph
    for name in list(graph.node_names())[:10]:
        expected = {b for a, b in relation if a == name}
        targets = evaluate_from(
            node, graph.node_id(name), database.index, graph, database.histogram
        )
        assert {graph.node_name(t) for t in targets} == expected
