"""Section 6: path-index evaluation vs Datalog evaluation.

The paper reports the path-index solution "on average 1200x faster"
than Datalog-based evaluation on the Advogato queries.  Absolute
factors depend on scale and substrate; the assertion here is the
claim's *shape*: the index wins on every query, by orders of magnitude
in aggregate.
"""

from __future__ import annotations

from statistics import geometric_mean

import pytest

from repro.baselines import datalog_eval
from repro.bench.harness import run_datalog_comparison
from repro.bench.queries import workload
from repro.rpq.parser import parse

QUERIES = workload()


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_path_index_minsupport(benchmark, prepared_small, query):
    """The paper's system side of the comparison."""
    database = prepared_small.database(3)
    benchmark.group = f"datalog-comparison-{query.name}"
    result = benchmark.pedantic(
        lambda: database.query(query.text, method="minsupport", use_cache=False),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["answer_size"] = len(result.pairs)


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_datalog_baseline(benchmark, prepared_small, query):
    """Approach (2): semi-naive bottom-up Datalog."""
    graph = prepared_small.graph
    node = parse(query.text)
    benchmark.group = f"datalog-comparison-{query.name}"
    answer = benchmark.pedantic(
        lambda: datalog_eval.evaluate(graph, node),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["answer_size"] = len(answer)


def test_speedup_shape(prepared_small):
    """Index beats Datalog on every query; large geomean speedup."""
    rows = run_datalog_comparison(prepared_small, k=3)
    for row in rows:
        assert row.baseline_seconds > row.index_seconds, row.query
    speedups = [row.speedup for row in rows]
    assert geometric_mean(speedups) > 10.0
