"""The sharded graph engine: partition rule, scatter-gather, mutations.

The governing property is *transparency*: ``GraphDatabase(shards=N)``
must answer every query exactly like the unsharded engine, on both
kernel paths, across mutations — the hypothesis oracle at the bottom
pins it.  Around that sit the boundary cases sharding introduces:
shards that own no vertices, shards that own exactly one, chains whose
every hop crosses a shard boundary, vocabulary changes that invalidate
every shard at once, and the disk backend's per-shard files.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import relation as rel
from repro.api import GraphDatabase
from repro.config import ServiceConfig
from repro.errors import ValidationError
from repro.graph.examples import figure1_graph
from repro.graph.generators import advogato_like
from repro.graph.graph import Graph, LabelPath
from repro.indexes.builder import path_relations, path_relations_columnar
from repro.indexes.pathindex import PathIndex
from repro.rpq.semantics import eval_query
from repro.sharding import ShardedGraph, ShardMembership, shard_of
from repro.write import Mutation

from tests.strategies import graphs, label_paths

STRATEGIES = ("naive", "semi-naive", "minsupport", "minjoin")


@contextmanager
def forced_path(pure_python: bool):
    """Route kernels through one implementation path for the duration."""
    old_flag, old_min = rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN
    rel._FORCE_PURE_PYTHON = pure_python
    if not pure_python:
        rel._VECTOR_MIN = 0
    try:
        yield
    finally:
        rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN = old_flag, old_min


BOTH_PATHS = pytest.mark.parametrize(
    "pure_python", [False, True], ids=["vectorized", "scalar"]
)


def chain_graph(length: int, label: str = "a") -> Graph:
    """A directed path ``n0 -> n1 -> ... -> n<length>``."""
    graph = Graph()
    for i in range(length):
        graph.add_edge(f"n{i}", label, f"n{i + 1}")
    return graph


# -- the partition rule -------------------------------------------------------


def test_shard_of_is_deterministic_total_and_balanced():
    owners = [shard_of(node, 4) for node in range(4000)]
    assert owners == [shard_of(node, 4) for node in range(4000)]
    assert set(owners) <= set(range(4))
    counts = [owners.count(shard) for shard in range(4)]
    # A multiplicative hash over dense ids should stay within a loose
    # band of the uniform share (1000 per shard here).
    assert min(counts) > 500 and max(counts) < 1500


def test_shard_membership_matches_shard_of():
    membership = ShardMembership(2, 5)
    contained = {node for node in range(200) if node in membership}
    assert contained == {node for node in range(200) if shard_of(node, 5) == 2}


@pytest.mark.skipif(rel._np is None, reason="numpy unavailable")
def test_shard_membership_mask_matches_contains():
    numpy = rel._np
    ids = numpy.arange(500, dtype=numpy.int64)
    membership = ShardMembership(1, 3)
    mask = membership.mask(ids)
    assert [bool(flag) for flag in mask] == [
        int(node) in membership for node in ids
    ]


def test_shard_scans_partition_the_unsharded_scan():
    graph = advogato_like(nodes=80, edges=400, seed=5)
    plain = PathIndex.build(graph, 2)
    sharded = ShardedGraph.build(graph, 2, shards=3)
    for path in plain.paths():
        whole = plain.scan(path)
        slices = [sharded.shard_scan(shard, path) for shard in range(3)]
        assert sum(len(piece) for piece in slices) == len(whole)
        merged = set()
        for shard, piece in enumerate(slices):
            pairs = piece.to_set()
            assert all(
                shard_of(source, 3) == shard for source, _ in pairs
            )
            merged |= pairs
        assert merged == whole.to_set()
        assert sharded.scan(path) == whole
        assert sharded.scan_swapped(path) == plain.scan_swapped(path)
        assert sharded.count(path) == plain.count(path)


def test_shard_scan_swapped_is_target_sorted():
    graph = advogato_like(nodes=60, edges=300, seed=9)
    sharded = ShardedGraph.build(graph, 2, shards=4)
    path = LabelPath.of("master", "journeyer")
    for shard in range(4):
        piece = sharded.shard_scan_swapped(shard, path)
        pairs = piece.pairs()
        assert pairs == sorted(pairs, key=lambda pair: (pair[1], pair[0]))


# -- builder restriction ------------------------------------------------------


@BOTH_PATHS
def test_builder_sources_filter_tuple_and_columnar_agree(pure_python):
    graph = advogato_like(nodes=50, edges=260, seed=13)
    membership = ShardMembership(0, 3)
    with forced_path(pure_python):
        tuple_rows = {
            path.encode(): pairs
            for path, pairs in path_relations(graph, 2, sources=membership)
        }
        columnar_rows = {
            path.encode(): relation.pairs()
            for path, relation in path_relations_columnar(
                graph, 2, sources=membership
            )
        }
    assert tuple_rows == columnar_rows
    flat = [pair for pairs in tuple_rows.values() for pair in pairs]
    assert all(shard_of(source, 3) == 0 for source, _ in flat)


def test_from_relations_matches_build():
    graph = figure1_graph()
    built = PathIndex.build(graph, 2)
    loaded = PathIndex.from_relations(
        graph, 2, path_relations_columnar(graph, 2)
    )
    assert loaded.counts_by_path() == built.counts_by_path()
    assert loaded.entry_count == built.entry_count
    for path in built.paths():
        assert loaded.scan(path) == built.scan(path)


# -- boundary topologies ------------------------------------------------------


def test_empty_and_single_vertex_shards():
    """More shards than vertices: every shard owns one vertex or none."""
    graph = chain_graph(3)  # four vertices, ids 0..3
    shards = 64
    owners = [shard_of(node, shards) for node in range(4)]
    assert len(set(owners)) == 4, "want pairwise-distinct owners"
    sharded = ShardedGraph.build(graph, 2, shards=shards)
    path = LabelPath.of("a", "a")
    assert sharded.scan(path).to_set() == {(0, 2), (1, 3)}
    for shard in range(shards):
        piece = sharded.shard_scan(shard, path)
        assert len(piece) <= 1  # a single-vertex shard holds <= 1 start
        if shard not in owners:
            assert len(piece) == 0
            assert sharded.shard_identity(shard) == []
    database = GraphDatabase(graph, k=2, shards=shards)
    for method in STRATEGIES:
        assert database.query("a/a/a", method=method, use_cache=False).pairs == {
            ("n0", "n3")
        }
        assert database.query("a*", method=method, use_cache=False).pairs == {
            (f"n{i}", f"n{j}") for i in range(4) for j in range(i, 4)
        }


def test_every_hop_crosses_shards():
    """A chain interleaved so consecutive vertices never share a shard."""
    shards = 2
    # Intern names in id order, picking ids whose owners alternate.
    wanted, ids, lane = [0, 1], [], 0
    candidate = 0
    while len(ids) < 6:
        if shard_of(candidate, shards) == wanted[lane]:
            ids.append(candidate)
            lane = 1 - lane
        candidate += 1
    graph = Graph()
    for node in range(max(ids) + 1):
        graph.add_node(f"n{node}")
    for left, right in zip(ids, ids[1:]):
        graph.add_edge(f"n{left}", "a", f"n{right}")
    owners = [shard_of(node, shards) for node in ids]
    assert all(x != y for x, y in zip(owners, owners[1:]))
    database = GraphDatabase(graph, k=2, shards=shards)
    oracle = GraphDatabase(graph, k=2, shards=1)
    for query in ("a/a", "a/a/a", "a/a/a/a/a", "a*", "^a/a"):
        for method in STRATEGIES:
            assert (
                database.query(query, method=method, use_cache=False).pairs
                == oracle.query(query, method=method, use_cache=False).pairs
            ), (query, method)
    start = f"n{ids[0]}"
    assert database.query_from(start, "a/a/a") == oracle.query_from(
        start, "a/a/a"
    )
    assert database.query_pair(start, f"n{ids[3]}", "a{3}") is True


def test_isolated_nodes_appear_in_identity_answers():
    graph = chain_graph(2)
    graph.add_node("loner")
    database = GraphDatabase(graph, k=2, shards=5)
    answer = database.query("a{0,1}", use_cache=False).pairs
    assert ("loner", "loner") in answer
    assert ("n0", "n0") in answer and ("n0", "n1") in answer


# -- facade parity ------------------------------------------------------------


def test_catalog_and_statistics_merge():
    graph = advogato_like(nodes=70, edges=350, seed=3)
    plain = PathIndex.build(graph, 2)
    sharded = ShardedGraph.build(graph, 2, shards=4)
    merged = sharded.counts_by_path()
    for encoded, count in merged.items():
        assert plain.counts_by_path().get(encoded, 0) == count
    nonzero = {
        encoded: count
        for encoded, count in plain.counts_by_path().items()
        if count
    }
    assert {k: v for k, v in merged.items() if v} == nonzero
    assert sharded.entry_count == plain.entry_count
    assert {p.encode() for p in sharded.paths()} >= set(nonzero)


def test_parallel_build_matches_serial():
    graph = advogato_like(nodes=60, edges=300, seed=21)
    serial = ShardedGraph.build(graph, 2, shards=3, workers=1)
    parallel = ShardedGraph.build(graph, 2, shards=3, workers=2)
    assert parallel.counts_by_path() == serial.counts_by_path()
    for path in serial.paths():
        assert parallel.scan(path) == serial.scan(path)


def test_disk_backend_shards_and_rebuilds(tmp_path):
    graph = advogato_like(nodes=40, edges=200, seed=2)
    base = tmp_path / "index.db"
    database = GraphDatabase(
        graph, k=2, backend="disk", index_path=base, shards=3
    )
    for shard in range(3):
        assert ShardedGraph.shard_index_path(base, shard).exists()
    oracle = GraphDatabase(advogato_like(nodes=40, edges=200, seed=2), k=2, shards=1)
    query = "master/^journeyer"
    assert (
        database.query(query, use_cache=False).pairs
        == oracle.query(query, use_cache=False).pairs
    )
    database.add_edge("extra", "master", "n0")
    oracle.add_edge("extra", "master", "n0")
    assert (
        database.query(query, use_cache=False).pairs
        == oracle.query(query, use_cache=False).pairs
    )
    database.close()


# -- mutations and partial rebuilds -------------------------------------------


def mutation_oracle(graph: Graph, database: GraphDatabase, queries):
    # shards=1 pinned: the oracle must stay the unsharded engine even
    # under the REPRO_DEFAULT_SHARDS stress knob.
    fresh = GraphDatabase(graph, k=database.k, shards=1)
    for query in queries:
        assert (
            database.query(query, use_cache=False).pairs
            == fresh.query(query, use_cache=False).pairs
        ), query


MUTATION_QUERIES = ("a/a", "a/^a", "b/a", "a*", "(a|b){1,3}")


def test_add_edge_patches_shards_in_place():
    graph = advogato_like(
        nodes=50, edges=150, seed=4, labels=("a", "b", "c")
    )
    database = GraphDatabase(
        graph, config=ServiceConfig(k=2, shards=4)
    )
    sharded = database.index
    assert isinstance(sharded, ShardedGraph)
    before = sharded.shard_indexes
    result = database.apply(Mutation.add("n1", "a", "n2"))
    assert result.changed and result.mode == "patch"
    # Delta patching edits the touched shards' B+trees in place: no
    # shard index object is replaced, and the patched shards are a
    # subset of the mutation ball.
    after = database.index.shard_indexes
    touched = sharded.shards_touching(
        (graph.node_id("n1"), graph.node_id("n2"))
    )
    assert touched, "the mutated endpoints must touch some shard"
    assert all(old is new for old, new in zip(before, after))
    assert set(result.patched_shards) <= set(touched)
    mutation_oracle(graph, database, MUTATION_QUERIES)


def test_add_edge_ball_rebuild_without_patching():
    graph = advogato_like(
        nodes=50, edges=150, seed=4, labels=("a", "b", "c")
    )
    database = GraphDatabase(
        graph, config=ServiceConfig(k=2, shards=4, delta_patching=False)
    )
    sharded = database.index
    before = sharded.shard_indexes
    result = database.apply(Mutation.add("n1", "a", "n2"))
    assert result.changed and result.mode == "rebuild"
    after = database.index.shard_indexes
    touched = sharded.shards_touching(
        (graph.node_id("n1"), graph.node_id("n2"))
    )
    replaced = {
        shard
        for shard, (old, new) in enumerate(zip(before, after))
        if old is not new
    }
    assert replaced == set(touched)
    mutation_oracle(graph, database, MUTATION_QUERIES)


def test_mutations_match_fresh_unsharded_engine():
    graph = advogato_like(nodes=40, edges=120, seed=6, labels=("a", "b"), label_weights=None)
    database = GraphDatabase(graph, k=2, shards=3)
    assert database.add_edge("n3", "a", "n17") is not None
    mutation_oracle(graph, database, MUTATION_QUERIES)
    assert database.add_edge("n3", "a", "n17") is None  # duplicate: no-op
    assert database.remove_edge("n3", "a", "n17") is not None
    mutation_oracle(graph, database, MUTATION_QUERIES)
    assert database.remove_edge("n3", "a", "n17") is None  # absent: no-op
    # New node: still answered exactly, identity included.
    assert database.add_edge("brand-new", "b", "n0") is not None
    mutation_oracle(graph, database, MUTATION_QUERIES)


def test_new_label_forces_full_rebuild_and_stays_exact():
    graph = advogato_like(nodes=30, edges=90, seed=8, labels=("a", "b"), label_weights=None)
    database = GraphDatabase(graph, k=2, shards=3)
    sharded = database.index
    assert database.add_edge("n0", "zzz", "n1") is not None
    rebuilt = database.index
    assert rebuilt is not sharded  # vocabulary change: whole new index
    assert rebuilt.alphabet == graph.labels()
    mutation_oracle(graph, database, MUTATION_QUERIES + ("zzz/a", "zzz*"))
    # Removing the label's only edge shrinks the vocabulary again.
    assert database.remove_edge("n0", "zzz", "n1") is not None
    assert database.index.alphabet == graph.labels()
    mutation_oracle(graph, database, MUTATION_QUERIES)


def test_rebuild_shards_guards_against_alphabet_drift():
    graph = advogato_like(nodes=20, edges=60, seed=1, labels=("a", "b"), label_weights=None)
    sharded = ShardedGraph.build(graph, 2, shards=2)
    graph.add_edge("n0", "fresh", "n1")
    with pytest.raises(ValidationError):
        sharded.rebuild_shards([0])


def test_shards_touching_radius():
    graph = chain_graph(6)
    sharded = ShardedGraph.build(graph, 1, shards=3)
    # k=1: only the endpoints' own shards are affected.
    assert sharded.shards_touching((2, 3)) == {shard_of(2, 3), shard_of(3, 3)}
    wide = ShardedGraph.build(graph, 3, shards=3)
    ball = wide.shards_touching((3,))
    assert ball == {shard_of(node, 3) for node in (1, 2, 3, 4, 5)}


def test_query_cache_survives_sharded_mutations():
    graph = advogato_like(nodes=30, edges=90, seed=12, labels=("a", "b"), label_weights=None)
    database = GraphDatabase(graph, k=2, shards=3)
    first = database.query("a/b")
    again = database.query("a/b")
    assert again.cached and again.pairs == first.pairs
    database.add_edge("n0", "a", "n1") or database.remove_edge("n0", "a", "n1")
    refreshed = database.query("a/b")
    assert not refreshed.cached
    mutation_oracle(graph, database, ("a/b",))


# -- scatter-gather internals -------------------------------------------------


def test_scattered_execution_shares_global_subtrees():
    graph = advogato_like(nodes=60, edges=300, seed=17)
    database = GraphDatabase(graph, k=2, shards=4)
    report = database.query(
        "master/journeyer/apprentice", use_cache=False
    ).report
    assert report is not None
    # The gather side of each join is executed once and memoized; the
    # other three shard executions hit the memo.
    assert report.scan_memo_hits >= 3


def test_sharded_star_routes_through_global_closure():
    # A two-shard cycle: shard-local closure would terminate early and
    # miss every cross-shard round trip; the global closure must not.
    shards = 2
    ids, lane, candidate = [], 0, 0
    while len(ids) < 4:
        if shard_of(candidate, shards) == lane % 2:
            ids.append(candidate)
            lane += 1
        candidate += 1
    graph = Graph()
    for node in range(max(ids) + 1):
        graph.add_node(f"n{node}")
    cycle = ids + [ids[0]]
    for left, right in zip(cycle, cycle[1:]):
        graph.add_edge(f"n{left}", "a", f"n{right}")
    database = GraphDatabase(graph, k=2, shards=shards)
    answer = database.query("a*", use_cache=False).pairs
    for left in ids:
        for right in ids:
            assert (f"n{left}", f"n{right}") in answer


def test_query_workers_fan_out_matches_serial():
    graph = advogato_like(nodes=60, edges=300, seed=19)
    serial = GraphDatabase(graph, k=2, shards=4)
    threaded = GraphDatabase(graph, k=2, shards=4, shard_query_workers=4)
    for query in ("master/journeyer", "journeyer/^master/apprentice", "master*"):
        assert (
            threaded.query(query, use_cache=False).pairs
            == serial.query(query, use_cache=False).pairs
        )
    batch = ["master/journeyer"] * 3 + ["journeyer/apprentice"]
    assert [r.pairs for r in threaded.query_batch(batch, use_cache=False)] == [
        r.pairs for r in serial.query_batch(batch, use_cache=False)
    ]


# -- the transparency oracle --------------------------------------------------


@BOTH_PATHS
@settings(max_examples=40, deadline=None)
@given(
    graph=graphs(max_nodes=7, max_edges=14),
    path=label_paths(max_length=4),
    shards=st.sampled_from((2, 3, 5)),
    method=st.sampled_from(STRATEGIES),
)
def test_sharded_answers_equal_unsharded_oracle(
    pure_python, graph, path, shards, method
):
    """``shards=N`` is bit-identical to ``shards=1`` on every method.

    The query is a random label path (the normal-form core every RPQ
    reduces to); the unsharded side is additionally pinned to the
    independent tuple-set semantics, so a bug that broke both engines
    identically would still be caught.
    """
    query = "/".join(str(step) for step in path)
    with forced_path(pure_python):
        oracle = GraphDatabase(graph, k=2, shards=1)
        sharded = GraphDatabase(graph, k=2, shards=shards)
        expected = oracle.query(query, method=method, use_cache=False).pairs
        answer = sharded.query(query, method=method, use_cache=False).pairs
    assert answer == expected
    assert expected == frozenset(eval_query(graph, query))


@BOTH_PATHS
@settings(max_examples=25, deadline=None)
@given(
    graph=graphs(max_nodes=6, max_edges=12),
    shards=st.sampled_from((2, 4)),
)
def test_sharded_star_and_point_lookups_equal_oracle(
    pure_python, graph, shards
):
    """Recursive queries and the point-lookup API agree with shards=1."""
    with forced_path(pure_python):
        oracle = GraphDatabase(graph, k=2, shards=1)
        sharded = GraphDatabase(graph, k=2, shards=shards)
        for query in ("(a|b)*", "a*/b", "c{0,2}"):
            assert (
                sharded.query(query, use_cache=False).pairs
                == oracle.query(query, use_cache=False).pairs
            ), query
        name = graph.node_name(0)
        assert sharded.query_from(name, "a/b") == oracle.query_from(
            name, "a/b"
        )
        for target in graph.node_names():
            assert sharded.query_pair(
                name, target, "a{1,2}"
            ) == oracle.query_pair(name, target, "a{1,2}")
