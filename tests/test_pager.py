"""Tests for the page file and buffer pool."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.pager import METADATA_SLOTS, Pager


@pytest.fixture()
def pager(tmp_path):
    with Pager(tmp_path / "file.db", page_size=256, cache_pages=4) as pager:
        yield pager


class TestBasics:
    def test_new_file_has_header_page(self, pager):
        assert pager.page_count == 1  # page 0 is the header

    def test_allocate_and_rw(self, pager):
        page_no = pager.allocate_page()
        pager.write_page(page_no, b"hello")
        data = pager.read_page(page_no)
        assert bytes(data[:5]) == b"hello"
        assert len(data) == 256

    def test_write_overflow_rejected(self, pager):
        page_no = pager.allocate_page()
        with pytest.raises(StorageError):
            pager.write_page(page_no, b"x" * 257)

    def test_page_bounds_checked(self, pager):
        with pytest.raises(StorageError):
            pager.read_page(0)  # header page is not client-accessible
        with pytest.raises(StorageError):
            pager.read_page(99)

    def test_geometry_validation(self, tmp_path):
        with pytest.raises(StorageError):
            Pager(tmp_path / "x.db", page_size=64)
        with pytest.raises(StorageError):
            Pager(tmp_path / "y.db", cache_pages=1)


class TestPersistence:
    def test_reopen_preserves_pages(self, tmp_path):
        path = tmp_path / "file.db"
        with Pager(path, page_size=256) as pager:
            page_no = pager.allocate_page()
            pager.write_page(page_no, b"persisted")
        with Pager(path, page_size=256) as pager:
            assert bytes(pager.read_page(page_no)[:9]) == b"persisted"

    def test_reopen_wrong_page_size_rejected(self, tmp_path):
        path = tmp_path / "file.db"
        Pager(path, page_size=256).close()
        with pytest.raises(StorageError):
            Pager(path, page_size=512)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 300)
        with pytest.raises(StorageError):
            Pager(path, page_size=256)

    def test_metadata_slots_persist(self, tmp_path):
        path = tmp_path / "file.db"
        with Pager(path, page_size=256) as pager:
            pager.set_metadata(3, 12345)
        with Pager(path, page_size=256) as pager:
            assert pager.get_metadata(3) == 12345

    def test_metadata_slot_bounds(self, pager):
        with pytest.raises(StorageError):
            pager.get_metadata(METADATA_SLOTS)
        with pytest.raises(StorageError):
            pager.set_metadata(0, -1)


class TestFreeList:
    def test_freed_page_reused(self, pager):
        first = pager.allocate_page()
        second = pager.allocate_page()
        pager.free_page(first)
        reused = pager.allocate_page()
        assert reused == first
        assert second != reused

    def test_free_list_chains(self, pager):
        pages = [pager.allocate_page() for _ in range(3)]
        for page in pages:
            pager.free_page(page)
        reallocated = {pager.allocate_page() for _ in range(3)}
        assert reallocated == set(pages)

    def test_freelist_survives_reopen(self, tmp_path):
        path = tmp_path / "file.db"
        with Pager(path, page_size=256) as pager:
            page = pager.allocate_page()
            pager.free_page(page)
            count_before = pager.page_count
        with Pager(path, page_size=256) as pager:
            assert pager.allocate_page() == page
            assert pager.page_count == count_before


class TestBufferPool:
    def test_eviction_writes_back_dirty_pages(self, tmp_path):
        path = tmp_path / "file.db"
        with Pager(path, page_size=256, cache_pages=4) as pager:
            pages = [pager.allocate_page() for _ in range(10)]
            for position, page_no in enumerate(pages):
                pager.write_page(page_no, bytes([position]) * 10)
            assert pager.stats.evictions > 0
            for position, page_no in enumerate(pages):
                assert pager.read_page(page_no)[0] == position

    def test_hit_ratio_counts(self, pager):
        page_no = pager.allocate_page()
        pager.flush()
        pager.read_page(page_no)
        pager.read_page(page_no)
        assert pager.stats.hits >= 1
        assert 0.0 <= pager.stats.hit_ratio() <= 1.0

    def test_closed_pager_rejects_access(self, tmp_path):
        pager = Pager(tmp_path / "file.db", page_size=256)
        page = pager.allocate_page()
        pager.close()
        with pytest.raises(StorageError):
            pager.read_page(page)

    def test_close_idempotent(self, tmp_path):
        pager = Pager(tmp_path / "file.db", page_size=256)
        pager.close()
        pager.close()
