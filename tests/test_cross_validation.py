"""The central correctness property of the reproduction.

Five independent evaluation paths must agree on every (graph, query)
pair: the reference set semantics, the four index strategies (through
the full rewrite → plan → execute pipeline), the automaton product-BFS,
and the Datalog translation.  Disagreement between any two would mean a
bug somewhere in a substrate; agreement on randomized inputs is the
strongest oracle available without the authors' artifacts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines import automaton_eval, datalog_eval
from repro.engine.executor import evaluate_ast
from repro.engine.planner import Strategy
from repro.graph.examples import figure1_graph
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics, UniformStatistics
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast as reference

from tests.strategies import graphs, rpq_asts


def _index_answer(graph, node, strategy, statistics=None, k=2):
    index = PathIndex.build(graph, k=k)
    if statistics is None:
        statistics = ExactStatistics.from_index(index)
    report = evaluate_ast(node, index, graph, statistics, strategy)
    return set(report.pairs)


class TestRandomized:
    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), rpq_asts(max_leaves=4))
    def test_all_strategies_match_reference(self, graph, node):
        expected = reference(graph, node)
        index = PathIndex.build(graph, k=2)
        statistics = ExactStatistics.from_index(index)
        for strategy in Strategy:
            report = evaluate_ast(node, index, graph, statistics, strategy)
            assert set(report.pairs) == expected, strategy

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_histogram_statistics_do_not_change_answers(self, graph, node):
        """The histogram affects plan choice, never correctness."""
        expected = reference(graph, node)
        index = PathIndex.build(graph, k=2)
        for statistics in (
            ExactStatistics.from_index(index),
            EquiDepthHistogram.from_index(index, graph, buckets=2),
            EquiDepthHistogram.from_index(index, graph, buckets=64),
            UniformStatistics(graph, k=2),
        ):
            report = evaluate_ast(
                node, index, graph, statistics, Strategy.MIN_SUPPORT
            )
            assert set(report.pairs) == expected

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_k_does_not_change_answers(self, graph, node):
        expected = reference(graph, node)
        for k in (1, 2, 3):
            assert _index_answer(graph, node, Strategy.SEMI_NAIVE, k=k) == expected

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=8), rpq_asts(max_leaves=3))
    def test_baselines_match_reference(self, graph, node):
        expected = reference(graph, node)
        assert automaton_eval.evaluate(graph, node) == expected
        assert datalog_eval.evaluate(graph, node) == expected

    @settings(max_examples=15, deadline=None)
    @given(
        graphs(max_nodes=4, max_edges=8),
        rpq_asts(max_leaves=2, allow_star=True),
    )
    def test_star_queries_all_paths_agree(self, graph, node):
        expected = reference(graph, node)
        assert automaton_eval.evaluate(graph, node) == expected
        assert datalog_eval.evaluate(graph, node) == expected
        assert _index_answer(graph, node, Strategy.MIN_JOIN) == expected


class TestFixedQueriesOnFigure1:
    QUERIES = [
        "knows",
        "^knows",
        "knows/knows/worksFor",
        "supervisor/^worksFor",
        "(supervisor|worksFor|^worksFor){4,5}",
        "knows/(knows/worksFor){2,4}/worksFor",
        "knows{0,2}",
        "worksFor/^worksFor",
        "<eps>|knows",
        "^(knows/worksFor)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_figure1(self, text, strategy):
        graph = figure1_graph()
        node = parse(text)
        expected = reference(graph, node)
        assert _index_answer(graph, node, strategy, k=3) == expected

    @pytest.mark.parametrize("text", QUERIES)
    def test_figure1_baselines(self, text):
        graph = figure1_graph()
        node = parse(text)
        expected = reference(graph, node)
        assert automaton_eval.evaluate(graph, node) == expected
        assert datalog_eval.evaluate(graph, node) == expected
