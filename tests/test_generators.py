"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.graph import generators
from repro.graph.stats import degree_histogram, label_frequencies


class TestAdvogatoLike:
    def test_dimensions(self):
        graph = generators.advogato_like(nodes=200, edges=900, seed=1)
        assert graph.node_count == 200
        assert graph.edge_count == 900

    def test_deterministic_by_seed(self):
        first = generators.advogato_like(nodes=100, edges=400, seed=5)
        second = generators.advogato_like(nodes=100, edges=400, seed=5)
        assert list(first.edges()) == list(second.edges())

    def test_different_seed_differs(self):
        first = generators.advogato_like(nodes=100, edges=400, seed=5)
        second = generators.advogato_like(nodes=100, edges=400, seed=6)
        assert list(first.edges()) != list(second.edges())

    def test_uses_three_trust_labels(self):
        graph = generators.advogato_like(nodes=100, edges=400, seed=5)
        assert set(graph.labels()) == set(generators.ADVOGATO_LABELS)

    def test_label_skew_follows_weights(self):
        graph = generators.advogato_like(nodes=300, edges=3000, seed=5)
        freq = label_frequencies(graph)
        # journeyer carries the largest weight (0.47).
        assert freq["journeyer"] == max(freq.values())

    def test_heavy_tailed_in_degree(self):
        graph = generators.advogato_like(nodes=300, edges=2400, seed=5)
        histogram = degree_histogram(graph, "in")
        max_in = max(histogram)
        mean_in = graph.edge_count / graph.node_count
        # Preferential attachment: some node far above the mean.
        assert max_in > 4 * mean_in

    def test_no_self_loops(self):
        graph = generators.advogato_like(nodes=80, edges=320, seed=2)
        for source, _, target in graph.edges():
            assert source != target

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            generators.advogato_like(nodes=0, edges=10)
        with pytest.raises(ValidationError):
            generators.advogato_like(nodes=10, edges=-1)


class TestErdosRenyi:
    def test_dimensions_and_determinism(self):
        first = generators.erdos_renyi(30, 90, seed=4)
        second = generators.erdos_renyi(30, 90, seed=4)
        assert first.edge_count == 90
        assert list(first.edges()) == list(second.edges())

    def test_self_loops_controlled(self):
        graph = generators.erdos_renyi(10, 40, seed=4, allow_self_loops=False)
        assert all(s != t for s, _, t in graph.edges())

    def test_requires_labels(self):
        with pytest.raises(ValidationError):
            generators.erdos_renyi(10, 5, labels=())


class TestStructuredGraphs:
    def test_chain(self):
        graph = generators.chain(5, label="next")
        assert graph.node_count == 6
        assert graph.edge_count == 5
        assert graph.has_edge("n0", "next", "n1")

    def test_chain_validates(self):
        with pytest.raises(ValidationError):
            generators.chain(0)

    def test_cycle_wraps(self):
        graph = generators.cycle(4)
        assert graph.has_edge("n3", "next", "n0")
        assert graph.edge_count == 4

    def test_star_outward_and_inward(self):
        outward = generators.star(3)
        inward = generators.star(3, outward=False)
        assert outward.has_edge("hub", "to", "n1")
        assert inward.has_edge("n1", "to", "hub")

    def test_grid_counts(self):
        graph = generators.grid(3, 2)
        assert graph.node_count == 6
        # rights: 2 per row * 2 rows; downs: 3 per column step
        assert graph.label_edge_count("right") == 4
        assert graph.label_edge_count("down") == 3

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite(2, 3)
        assert graph.edge_count == 6

    def test_balanced_tree_node_count(self):
        graph = generators.balanced_tree(branching=2, depth=3)
        assert graph.node_count == 2**4 - 1

    def test_layered_random_is_a_dag_by_layers(self):
        graph = generators.layered_random(3, 4, labels=("a",), density=1.0, seed=1)
        for source, _, target in graph.edges():
            source_layer = int(source[1:].split("_")[0])
            target_layer = int(target[1:].split("_")[0])
            assert target_layer == source_layer + 1

    def test_layered_random_validates_density(self):
        with pytest.raises(ValidationError):
            generators.layered_random(3, 4, labels=("a",), density=1.5)
