"""Tests for graph statistics, including the paths_k machinery."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.graph import stats
from repro.graph.examples import figure1_graph
from repro.graph.generators import chain, cycle
from repro.graph.graph import Graph


class TestPathsK:
    def test_paths_0_is_identity(self):
        graph = chain(3)
        assert stats.count_paths_k(graph, 0) == graph.node_count

    def test_paths_k_includes_both_directions(self):
        graph = Graph.from_edges([("x", "a", "y")])
        # (x,x),(y,y) 0-paths; (x,y),(y,x) 1-paths (either direction).
        assert stats.count_paths_k(graph, 1) == 4

    def test_paths_k_chain(self):
        graph = chain(3)  # n0-n1-n2-n3 undirected line
        # k=1: 4 self + 3 edges * 2 directions = 10
        assert stats.count_paths_k(graph, 1) == 10
        # k=2: additionally (n0,n2),(n1,n3) both directions -> 14
        assert stats.count_paths_k(graph, 2) == 14
        # k=3: all 16 ordered pairs reachable
        assert stats.count_paths_k(graph, 3) == 16

    def test_paths_k_monotone_in_k(self):
        graph = figure1_graph()
        counts = [stats.count_paths_k(graph, k) for k in range(4)]
        assert counts == sorted(counts)

    def test_paths_k_from_is_bfs_ball(self):
        graph = chain(4)
        source = graph.node_id("n0")
        ball = stats.paths_k_from(graph, source, 2)
        names = {graph.node_name(node) for node in ball}
        assert names == {"n0", "n1", "n2"}

    def test_paths_k_pairs_matches_count(self):
        graph = figure1_graph()
        pairs = list(stats.paths_k_pairs(graph, 2))
        assert len(pairs) == stats.count_paths_k(graph, 2)
        assert len(set(pairs)) == len(pairs)

    def test_negative_k_rejected(self):
        graph = chain(2)
        with pytest.raises(ValidationError):
            stats.paths_k_from(graph, 0, -1)


class TestStarBound:
    def test_empty_graph(self):
        assert stats.star_bound(Graph()) == 0

    def test_matches_node_count_minus_one(self):
        assert stats.star_bound(chain(4)) == 4

    def test_star_bound_is_sufficient_on_cycle(self):
        """R* == R^{0,n(G)} — Section 2.2's observation, checked directly."""
        from repro.rpq.parser import parse
        from repro.rpq.semantics import eval_ast

        graph = cycle(5)
        bound = stats.star_bound(graph)
        star_answer = eval_ast(graph, parse("next*"))
        bounded_answer = eval_ast(graph, parse(f"next{{0,{bound}}}"))
        assert star_answer == bounded_answer


class TestSummaries:
    def test_label_frequencies(self):
        graph = Graph.from_edges([("x", "a", "y"), ("y", "a", "z"), ("x", "b", "z")])
        assert stats.label_frequencies(graph) == {"a": 2, "b": 1}

    def test_degree_summary(self):
        graph = Graph.from_edges([("x", "a", "y"), ("x", "a", "z")])
        summary = stats.out_degree_summary(graph)
        assert summary.maximum == 2
        assert summary.minimum == 0
        assert summary.mean == pytest.approx(2 / 3)

    def test_degree_summary_empty_graph(self):
        summary = stats.out_degree_summary(Graph())
        assert (summary.minimum, summary.maximum, summary.mean) == (0, 0, 0.0)

    def test_degree_histogram_direction_validation(self):
        with pytest.raises(ValidationError):
            stats.degree_histogram(Graph(), "sideways")

    def test_summarize_format_mentions_everything(self):
        graph = figure1_graph()
        text = stats.summarize(graph).format()
        assert "nodes:  9" in text
        assert "knows" in text
        assert "out-degree" in text
