"""Tests for the terminal bar-chart renderer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import Measurement
from repro.bench.plots import (
    bar_chart,
    figure2_charts,
    figure2_panel_chart,
    horizontal_bar,
)
from repro.errors import ValidationError


class TestHorizontalBar:
    def test_full_bar(self):
        assert horizontal_bar(10, 10, width=8) == "█" * 8

    def test_empty_bar(self):
        assert horizontal_bar(0, 10, width=8) == " " * 8

    def test_half_bar(self):
        bar = horizontal_bar(5, 10, width=8)
        assert bar.rstrip() == "█" * 4

    def test_zero_maximum(self):
        assert horizontal_bar(1, 0, width=4) == "    "

    def test_overflow_clamped(self):
        assert horizontal_bar(20, 10, width=4) == "████"

    def test_width_validated(self):
        with pytest.raises(ValidationError):
            horizontal_bar(1, 2, width=0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0.001, max_value=1e6),
        st.integers(min_value=1, max_value=60),
    )
    def test_property_width_constant(self, value, maximum, width):
        assert len(horizontal_bar(value, maximum, width)) == width

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_property_monotone(self, first, second):
        low, high = sorted([first, second])
        low_bar = horizontal_bar(low, 100, 20)
        high_bar = horizontal_bar(high, 100, 20)
        assert len(low_bar.rstrip()) <= len(high_bar.rstrip())


class TestBarChart:
    def test_labels_and_values_present(self):
        text = bar_chart([("alpha", 3.0), ("b", 1.5)])
        assert "alpha" in text
        assert "3.00 ms" in text
        assert "│" in text

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_custom_unit(self):
        assert "7.00 s" in bar_chart([("x", 7.0)], unit="s")


def _measurements() -> list[Measurement]:
    rows = []
    for k in (1, 2):
        for query in ("Q1", "Q2"):
            for position, method in enumerate(("naive", "minjoin")):
                rows.append(
                    Measurement(
                        query=query,
                        method=method,
                        k=k,
                        seconds=0.001 * (position + 1) * k,
                        answer_size=5,
                    )
                )
    return rows


class TestFigure2Charts:
    def test_panel_contains_queries_and_methods(self):
        text = figure2_panel_chart(_measurements(), k=1)
        assert "panel k=1" in text
        assert "Q1" in text and "Q2" in text
        assert "naive" in text and "minjoin" in text

    def test_missing_panel(self):
        assert "(no measurements" in figure2_panel_chart(_measurements(), k=9)

    def test_all_panels(self):
        text = figure2_charts(_measurements())
        assert "panel k=1" in text and "panel k=2" in text
