"""Tests for the algebraic RPQ simplifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast
from repro.rpq.simplify import nullable, simplify

from tests.strategies import graphs, rpq_asts


class TestNullable:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("<eps>", True),
            ("a", False),
            ("a*", True),
            ("a+", False),
            ("a?", True),
            ("a{0,3}", True),
            ("a{1,3}", False),
            ("a/b", False),
            ("a?/b?", True),
            ("a|b*", True),
            ("^a", False),
            ("^(a?)", True),
        ],
    )
    def test_examples(self, text, expected):
        assert nullable(parse(text)) is expected


class TestRules:
    @pytest.mark.parametrize(
        "before, after",
        [
            ("<eps>/a", "a"),
            ("a/<eps>/b", "a/b"),
            ("<eps>/<eps>", "<eps>"),
            ("a|a", "a"),
            ("a|a|b", "a|b"),
            ("<eps>|a*", "a*"),
            ("<eps>|a?", "a?"),
            ("a{1,1}", "a"),
            ("a{0,0}", "<eps>"),
            ("<eps>{2,5}", "<eps>"),
            ("(a*)*", "a*"),
            ("(a*){3,7}", "a*"),
            ("(a{0,4})*", "a*"),
            ("(a{1,2})*", "a*"),
            ("(a{1,2}){1,2}", "a{1,4}"),
            ("(a{1,1}){2,3}", "a{2,3}"),
            ("(a?)?", "a?"),
            ("(a{2,}){1,3}", "a{2,}"),
            ("<eps>*", "<eps>"),
        ],
    )
    def test_rewrites(self, before, after):
        assert simplify(parse(before)) == parse(after)

    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a/b",
            "a|b",
            "a{2,4}",
            "(a{2,2}){1,2}",  # exponents {2,4} minus gap 3 -> no merge
            "<eps>|a",        # a is not nullable: eps must stay
            "(a{2,3})*",      # gap at 1: exponent 1 unreachable... see below
        ],
    )
    def test_non_rewrites_stay_semantically_put(self, text):
        node = parse(text)
        simplified = simplify(node)
        from repro.graph.examples import two_triangles

        graph = two_triangles()
        assert eval_ast(graph, simplified) == eval_ast(graph, node)

    def test_gap_case_not_merged(self):
        """(a{2,2}){1,2} reaches exponents {2,4}, not {2,3,4}."""
        node = simplify(parse("(a{2,2}){1,2}"))
        assert node != parse("a{2,4}")

    def test_simplifier_never_grows(self):
        for text in ["(a{1,2}){1,3}", "<eps>/a/<eps>", "a|a|a|a", "(a*)*{2,9}"]:
            node = parse(text)
            assert simplify(node).size() <= node.size()


class TestSoundness:
    @settings(max_examples=120, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=4, allow_star=True))
    def test_simplify_preserves_semantics(self, graph, node):
        assert eval_ast(graph, simplify(node)) == eval_ast(graph, node)

    @settings(max_examples=80, deadline=None)
    @given(rpq_asts(max_leaves=4, allow_star=True))
    def test_simplify_idempotent(self, node):
        once = simplify(node)
        assert simplify(once) == once

    @settings(max_examples=80, deadline=None)
    @given(rpq_asts(max_leaves=4, allow_star=True))
    def test_simplify_never_grows(self, node):
        assert simplify(node).size() <= node.size()

    @settings(max_examples=80, deadline=None)
    @given(graphs(max_nodes=5), rpq_asts(max_leaves=3, allow_star=True))
    def test_nullable_matches_identity_containment(self, graph, node):
        """nullable => the identity relation is contained in the answer."""
        from repro.rpq.semantics import identity_relation

        if nullable(node):
            assert identity_relation(graph) <= eval_ast(graph, node)
