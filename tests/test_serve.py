"""Tests for the serving stack: protocol, workers, coordinator, HTTP.

The expensive fixtures (a worker fleet, an HTTP front door) are
module-scoped; tests that mutate or kill things restore the fleet
before handing it back.  Every distributed answer is pinned to an
in-process ``shards=1`` oracle — the serving stack's one correctness
contract is "same pairs as the embedded engine, or a typed error".
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphDatabase, QueryResult, ServiceConfig
from repro.client import AsyncClient, Client, RemoteResult
from repro.config import default_shard_count
from repro.errors import (
    ParseError,
    QueryTimeoutError,
    ReproError,
    ShardUnavailableError,
    TransientWireError,
    ValidationError,
    WireError,
)
from repro.faults import FaultPlan, FaultRule, armed
from repro.relation import Order, Relation
from repro.serve import CoordinatorDatabase, launch_workers
from repro.serve import protocol
from repro.serve.server import serve_in_thread
from repro.stats import EngineStats

QUERIES = ["a/b", "a|b", "(a|b)/c", "a", "b/c|a", "a{1,2}/b"]


def _edges(seed: int, nodes: int = 40, count: int = 160):
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    return [
        (rng.choice(names), rng.choice("abc"), rng.choice(names))
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def oracle():
    db = GraphDatabase.from_edges(_edges(5), config=ServiceConfig(k=2, shards=1))
    yield db
    db.close()


@pytest.fixture(scope="module")
def coordinator():
    db = CoordinatorDatabase.from_edges(
        _edges(5), config=ServiceConfig(k=2, shards=3)
    )
    yield db
    db.close()


# -- relation wire codec -------------------------------------------------------


@st.composite
def relations(draw):
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=2**32 - 1),
            ),
            max_size=32,
        )
    )
    order = draw(st.sampled_from([Order.NONE, Order.BY_SRC, Order.BY_TGT]))
    src = array("q", (pair[0] for pair in pairs))
    tgt = array("q", (pair[1] for pair in pairs))
    return Relation(src, tgt, order)


class TestRelationCodec:
    @settings(max_examples=60, deadline=None)
    @given(relations())
    def test_round_trip(self, relation):
        decoded = protocol.decode_relation(protocol.encode_relation(relation))
        assert decoded.src == relation.src
        assert decoded.tgt == relation.tgt
        assert decoded.order == relation.order

    def test_empty_relation(self):
        decoded = protocol.decode_relation(
            protocol.encode_relation(Relation(array("q"), array("q")))
        )
        assert len(decoded.src) == 0

    @settings(max_examples=30, deadline=None)
    @given(relations(), st.data())
    def test_truncation_is_typed(self, relation, data):
        encoded = protocol.encode_relation(relation)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(WireError):
            protocol.decode_relation(encoded[:cut])

    def test_bad_magic_is_typed(self):
        encoded = bytearray(
            protocol.encode_relation(Relation(array("q", [1]), array("q", [2])))
        )
        encoded[0] ^= 0x80
        with pytest.raises(WireError):
            protocol.decode_relation(bytes(encoded))

    def test_unknown_order_tag_is_typed(self):
        encoded = bytearray(
            protocol.encode_relation(Relation(array("q", [1]), array("q", [2])))
        )
        encoded[4] = 9
        with pytest.raises(WireError):
            protocol.decode_relation(bytes(encoded))

    def test_length_mismatch_is_typed(self):
        encoded = protocol.encode_relation(
            Relation(array("q", [1, 2]), array("q", [3, 4]), Order.BY_SRC)
        )
        with pytest.raises(WireError):
            protocol.decode_relation(encoded + b"\x00" * 8)


class TestFrames:
    def test_eof_mid_frame_is_transient(self):
        chunks = [b"\x00\x00"]  # half a length prefix, then EOF

        def read(count):
            return chunks.pop(0) if chunks else b""

        with pytest.raises(TransientWireError):
            protocol.recv_exact(read, 8)

    def test_implausible_lengths_are_permanent(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">II", 2**30, 0) + b"x" * 16)
            with pytest.raises(WireError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_garbage_header_is_permanent(self):
        left, right = socket.socketpair()
        try:
            header = b"\xff\xfenot json"
            left.sendall(struct.pack(">II", len(header), 0) + header)
            with pytest.raises(WireError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, {"op": "ping", "deadline_ms": 5.0}, b"abc")
            header, body = protocol.recv_frame(right)
            assert header == {"op": "ping", "deadline_ms": 5.0}
            assert body == b"abc"
        finally:
            left.close()
            right.close()


class TestErrorCodes:
    @pytest.mark.parametrize("code,error_type", protocol.ERROR_CODES)
    def test_round_trip_preserves_type(self, code, error_type):
        error = error_type("boom")
        payload = protocol.encode_error(error)
        assert payload["code"] == code
        rebuilt = protocol.remote_error(payload)
        assert type(rebuilt) is error_type

    def test_shard_extra_survives(self):
        payload = protocol.encode_error(ShardUnavailableError("gone", shard=3))
        rebuilt = protocol.remote_error(payload)
        assert isinstance(rebuilt, ShardUnavailableError)
        assert rebuilt.shard == 3

    def test_position_extra_survives(self):
        payload = protocol.encode_error(ParseError("bad", position=7))
        rebuilt = protocol.remote_error(payload)
        assert isinstance(rebuilt, ParseError)
        assert rebuilt.position == 7

    def test_unknown_code_degrades_to_base(self):
        rebuilt = protocol.remote_error({"code": "from_the_future", "message": "x"})
        assert type(rebuilt) is ReproError

    def test_most_specific_code_wins(self):
        assert protocol.error_code(TransientWireError("x")) == "transient_wire"
        assert protocol.error_code(WireError("x")) == "wire"


# -- config and stats (API redesign satellites) --------------------------------


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ServiceConfig(k=0)
        with pytest.raises(ValidationError):
            ServiceConfig(shards=0)
        with pytest.raises(ValidationError):
            ServiceConfig(max_inflight=0)

    def test_with_overrides(self):
        config = ServiceConfig(k=3).with_overrides(shards=4)
        assert (config.k, config.shards) == (3, 4)

    def test_resolved_shards_defaults_from_env(self):
        assert ServiceConfig().resolved_shards() == default_shard_count()
        assert ServiceConfig(shards=5).resolved_shards() == 5

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ServiceConfig"):
            db = GraphDatabase.from_edges(_edges(1, 10, 20), k=1, shards=2)
        assert db.config.shards == 2
        db.close()

    def test_config_and_legacy_conflict(self):
        with pytest.raises(ValidationError):
            GraphDatabase.from_edges(
                _edges(1, 10, 20), shards=2, config=ServiceConfig()
            )

    def test_k_overrides_config(self):
        db = GraphDatabase.from_edges(
            _edges(1, 10, 20), k=1, config=ServiceConfig(k=3, shards=1)
        )
        assert db.k == 1
        db.close()


class TestEngineStats:
    def test_grouped_and_flat_agree(self, oracle):
        oracle.query("a/b")
        oracle.query("a/b")
        stats = oracle.stats()
        assert isinstance(stats, EngineStats)
        with pytest.warns(DeprecationWarning, match=r"stats\(\)"):
            flat = oracle.cache_info()
        assert stats.as_dict() == flat
        assert flat["hits"] == stats.cache.hits
        assert flat["prepared_hits"] == stats.prepared.hits
        assert flat["shards_failed"] == stats.faults.shards_failed

    def test_flat_keys_are_the_legacy_surface(self, oracle):
        expected = {
            "hits", "misses", "entries", "capacity", "pairs", "max_pairs",
            "scan_memo_hits", "scan_memo_misses", "shards_scanned",
            "shards_pruned", "disjuncts_pruned", "shards_replanned",
            "prepared_hits", "prepared_misses", "prepared_invalidations",
            "artifact_loads", "plans_computed", "plan_artifacts",
            "shards_failed",
            "write_groups", "write_coalesced", "write_patched",
            "write_rebuilt", "log_records", "replayed",
        }
        assert set(oracle.stats().as_dict()) == expected


# -- worker protocol (one live worker, spoken to by hand) ----------------------


class TestWorkerProtocol:
    @pytest.fixture(scope="class")
    def worker(self):
        from repro.graph.graph import Graph

        graph = Graph.from_edges(_edges(9, 20, 60))
        handles = launch_workers(graph, k=2, shards=1)
        yield handles[0]
        handles[0].stop()

    def _call(self, handle, header, body=b""):
        with socket.create_connection(("127.0.0.1", handle.port), 5) as sock:
            protocol.send_frame(sock, header, body)
            return protocol.recv_frame(sock)

    def test_ping(self, worker):
        reply, _ = self._call(worker, {"op": "ping"})
        assert reply == {"ok": True, "shard": 0}

    def test_unknown_op_is_typed_reply(self, worker):
        reply, _ = self._call(worker, {"op": "warp"})
        assert not reply["ok"]
        assert reply["error"]["code"] == "validation"

    def test_exhausted_deadline_refused(self, worker):
        reply, _ = self._call(worker, {"op": "ping", "deadline_ms": -1.0})
        assert not reply["ok"]
        assert reply["error"]["code"] == "query_timeout"

    def test_garbage_drops_connection_but_worker_survives(self, worker):
        with socket.create_connection(("127.0.0.1", worker.port), 5) as sock:
            sock.sendall(struct.pack(">II", 2**31, 2**31))
            # The worker drops us without a reply.
            assert sock.recv(1) == b""
        reply, _ = self._call(worker, {"op": "ping"})
        assert reply["ok"]


# -- coordinator vs oracle -----------------------------------------------------


class TestCoordinator:
    @pytest.mark.parametrize("query", QUERIES)
    def test_query_parity(self, coordinator, oracle, query):
        assert coordinator.query(query).pairs == oracle.query(query).pairs

    @pytest.mark.parametrize("method", ["naive", "semi-naive", "minjoin"])
    def test_strategy_parity(self, coordinator, oracle, method):
        want = oracle.query("(a|b)/c", method=method).pairs
        assert coordinator.query("(a|b)/c", method=method).pairs == want

    def test_query_from_parity(self, coordinator, oracle):
        node = coordinator.graph.node_names()[0]
        want = oracle.query_from(node, "a/b")
        assert coordinator.query_from(node, "a/b") == want

    def test_mutation_parity(self, coordinator, oracle):
        assert coordinator.add_edge("n0", "a", "n39") is not None
        oracle.add_edge("n0", "a", "n39")
        try:
            for query in QUERIES:
                assert (
                    coordinator.query(query).pairs == oracle.query(query).pairs
                )
        finally:
            coordinator.remove_edge("n0", "a", "n39")
            oracle.remove_edge("n0", "a", "n39")
        assert coordinator.query("a/b").pairs == oracle.query("a/b").pairs

    def test_duplicate_add_is_noop_everywhere(self, coordinator):
        first = next(iter(coordinator.graph.edges()))
        assert coordinator.add_edge(*first) is None

    def test_deadline_propagates(self, coordinator):
        with pytest.raises(QueryTimeoutError):
            coordinator.query("a/b/c", timeout_ms=1e-4, use_cache=False)

    def test_requires_memory_backend(self, tmp_path):
        with pytest.raises(ValidationError, match="memory-backed"):
            CoordinatorDatabase.from_edges(
                _edges(1, 10, 20),
                config=ServiceConfig(
                    k=1, shards=2, backend="disk", index_path=str(tmp_path)
                ),
            )


class TestCoordinatorChaos:
    def test_kill_strict_degraded_restore(self, coordinator, oracle):
        full = oracle.query("a/b").pairs
        coordinator._index.handles[1].kill()
        coordinator._index.handles[1].process.join(5)
        coordinator.cache_clear()

        with pytest.raises(ShardUnavailableError):
            coordinator.query("a/b", use_cache=False)

        result = coordinator.query("a/b", degraded=True, use_cache=False)
        assert result.pairs <= full
        assert result.report.partial
        assert result.report.shards_failed >= 1

        assert coordinator.ensure_workers() == [1]
        coordinator.cache_clear()
        assert coordinator.query("a/b", use_cache=False).pairs == full

    def test_rpc_transient_is_retried_to_exact(self, coordinator, oracle):
        plan = FaultPlan(
            [FaultRule("rpc.send", "transient", times=1, shard=0)], seed=3
        )
        with armed(plan):
            result = coordinator.query("a/b", use_cache=False)
        assert result.pairs == oracle.query("a/b").pairs
        assert plan.fired >= 1

    def test_rpc_corrupt_is_typed_strict(self, coordinator):
        plan = FaultPlan([FaultRule("rpc.recv", "corrupt", shard=0)], seed=3)
        with armed(plan):
            with pytest.raises(WireError):
                coordinator.query("a/b", use_cache=False)

    def test_rpc_corrupt_drops_slice_degraded(self, coordinator, oracle):
        plan = FaultPlan([FaultRule("rpc.recv", "corrupt", shard=0)], seed=3)
        with armed(plan):
            result = coordinator.query("a/b", degraded=True, use_cache=False)
        assert result.pairs <= oracle.query("a/b").pairs
        assert result.report.partial


# -- the HTTP front door -------------------------------------------------------


@pytest.fixture(scope="module")
def served(coordinator):
    handle = serve_in_thread(coordinator, supervise_interval=0.1)
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(served):
    return Client(port=served.port)


class TestHttpService:
    def test_health(self, client, coordinator):
        health = client.health()
        assert health["ok"] and health["shards"] == 3

    @pytest.mark.parametrize("query", QUERIES[:3])
    def test_query_parity(self, client, oracle, query):
        result = client.query(query)
        assert isinstance(result, RemoteResult)
        assert result.pairs == oracle.query(query).pairs

    def test_result_carries_version(self, client, coordinator):
        assert client.query("a/b").version == coordinator.graph.version

    def test_prepared(self, client, oracle):
        result = client.prepared("a{1,$n}/b", params={"n": 2})
        assert result.pairs == oracle.query("a{1,2}/b").pairs
        again = client.prepared("a{1,$n}/b", params={"n": 2})
        assert again.pairs == result.pairs

    def test_mutation_round_trip(self, client, oracle, coordinator):
        version = client.add_edge("n1", "b", "n38")
        assert version is not None
        assert client.add_edge("n1", "b", "n38") is None
        oracle.add_edge("n1", "b", "n38")
        try:
            assert client.query("a/b").pairs == oracle.query("a/b").pairs
        finally:
            assert client.remove_edge("n1", "b", "n38") is not None
            oracle.remove_edge("n1", "b", "n38")

    def test_parse_error_crosses_wire(self, client):
        with pytest.raises(ParseError):
            client.query("a/(b")

    def test_timeout_crosses_wire(self, client):
        with pytest.raises(QueryTimeoutError):
            client.query("a/b/c/a", timeout_ms=1e-4, use_cache=False)

    def test_stats_endpoint_groups(self, client):
        stats = client.stats()
        assert set(stats) == {"cache", "scatter", "prepared", "faults", "write"}
        assert "shards_failed" in stats["faults"]

    def test_unknown_route_is_typed(self, served):
        with pytest.raises(ValidationError):
            Client(port=served.port)._request("GET", "/nope")

    def test_refused_connection_is_transient(self):
        with pytest.raises(TransientWireError):
            Client(port=1, timeout=2).health()

    def test_async_client(self, served, oracle):
        import asyncio

        async def exercise():
            remote = AsyncClient(port=served.port)
            result = await remote.query("a|b")
            health = await remote.health()
            stats = await remote.stats()
            return result, health, stats

        result, health, stats = asyncio.run(exercise())
        assert result.pairs == oracle.query("a|b").pairs
        assert health["ok"]
        assert "cache" in stats

    def test_chaos_over_http(self, client, coordinator, oracle):
        """Kill a worker mid-service: typed errors or exact subsets only."""
        full = oracle.query("a/b").pairs
        coordinator._index.handles[2].kill()
        coordinator._index.handles[2].process.join(5)
        coordinator.cache_clear()

        result = client.query("a/b", degraded=True, use_cache=False)
        assert result.pairs <= full
        if result.partial:
            assert result.shards_failed >= 1

        deadline = time.time() + 20
        while time.time() < deadline:
            probe = client.query("a/b", degraded=True, use_cache=False)
            if not probe.partial:
                break
            time.sleep(0.1)
        assert client.query("a/b", use_cache=False).pairs == full


class TestBackpressure:
    def test_queue_full_is_503_transient(self):
        db = GraphDatabase.from_edges(
            _edges(2, 10, 20),
            config=ServiceConfig(k=1, shards=1, max_inflight=1, queue_limit=0),
        )
        release = threading.Event()
        entered = threading.Event()
        original = db.query

        def slow_query(*args, **kwargs):
            entered.set()
            release.wait(timeout=30)
            return original(*args, **kwargs)

        db.query = slow_query
        handle = serve_in_thread(db)
        try:
            blocker = threading.Thread(
                target=lambda: Client(port=handle.port).query("a"), daemon=True
            )
            blocker.start()
            assert entered.wait(timeout=10)
            with pytest.raises(TransientWireError, match="capacity"):
                Client(port=handle.port).query("a")
        finally:
            release.set()
            blocker.join(timeout=10)
            handle.stop()
            db.query = original
            db.close()


class TestCliServe:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--port", "0", "--queue-limit", "4"]
        )
        assert args.workers == 2 and args.queue_limit == 4
        assert args.handler is not None
