"""Tests for the executor and the hybrid (fixpoint) fallback."""

from __future__ import annotations

import pytest

from repro.graph.examples import figure1_graph
from repro.graph.generators import cycle
from repro.engine.executor import evaluate_ast, evaluate_normal_form
from repro.engine.planner import Strategy
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.rpq.parser import parse
from repro.rpq.rewrite import normalize
from repro.rpq.semantics import eval_ast as reference_eval


@pytest.fixture(scope="module")
def setup():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=2)
    stats = ExactStatistics.from_index(index)
    return graph, index, stats


class TestNormalFormExecution:
    def test_answers_match_reference(self, setup):
        graph, index, stats = setup
        node = parse("knows/knows/worksFor")
        normal = normalize(node, star_bound_value=8)
        report = evaluate_normal_form(
            normal, index, graph, stats, Strategy.MIN_SUPPORT
        )
        assert set(report.pairs) == reference_eval(graph, node)
        assert not report.used_fallback
        assert report.plan is not None

    def test_timings_populated(self, setup):
        graph, index, stats = setup
        normal = normalize(parse("knows/worksFor"), star_bound_value=8)
        report = evaluate_normal_form(
            normal, index, graph, stats, Strategy.SEMI_NAIVE
        )
        assert report.planning_seconds >= 0.0
        assert report.execution_seconds >= 0.0
        assert report.total_seconds == pytest.approx(
            report.planning_seconds + report.execution_seconds
        )


class TestEvaluateAst:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_bounded_queries_avoid_fallback(self, setup, strategy):
        graph, index, stats = setup
        node = parse("(knows|worksFor){1,2}")
        report = evaluate_ast(node, index, graph, stats, strategy)
        assert not report.used_fallback
        assert set(report.pairs) == reference_eval(graph, node)

    def test_small_star_expands_without_fallback(self, setup):
        """n(G)=8 here, so supervisor* expands to 9 powers — still planable."""
        graph, index, stats = setup
        node = parse("supervisor*")
        report = evaluate_ast(node, index, graph, stats, Strategy.SEMI_NAIVE)
        assert set(report.pairs) == reference_eval(graph, node)

    def test_fallback_triggers_on_expansion_blowup(self, setup):
        graph, index, stats = setup
        node = parse("(knows|worksFor|supervisor)*")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.MIN_SUPPORT, max_disjuncts=50
        )
        assert report.used_fallback
        assert set(report.pairs) == reference_eval(graph, node)

    def test_fallback_star_on_cycle(self):
        graph = cycle(6)
        index = PathIndex.build(graph, k=2)
        stats = ExactStatistics.from_index(index)
        node = parse("next*")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.SEMI_NAIVE, max_disjuncts=3
        )
        assert report.used_fallback
        assert set(report.pairs) == reference_eval(graph, node)

    def test_fallback_concat_and_union_mix(self, setup):
        graph, index, stats = setup
        node = parse("knows*/worksFor | supervisor")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.MIN_JOIN, max_disjuncts=4
        )
        assert set(report.pairs) == reference_eval(graph, node)

    def test_fallback_open_repeat(self, setup):
        graph, index, stats = setup
        node = parse("knows{2,}")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.SEMI_NAIVE, max_disjuncts=2
        )
        assert set(report.pairs) == reference_eval(graph, node)

    def test_fallback_epsilon_and_inverse(self, setup):
        graph, index, stats = setup
        node = parse("^(knows*)|<eps>")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.SEMI_NAIVE, max_disjuncts=2
        )
        assert set(report.pairs) == reference_eval(graph, node)


class _CountingIndex:
    """A PathIndex proxy counting how often each leaf scan really runs."""

    def __init__(self, inner):
        self._inner = inner
        self.scans = 0

    @property
    def k(self):
        return self._inner.k

    def scan(self, path):
        self.scans += 1
        return self._inner.scan(path)

    def scan_swapped(self, path):
        self.scans += 1
        return self._inner.scan_swapped(path)


class TestScanMemo:
    """The per-execution memo over plan (and hybrid AST) subtrees."""

    def test_union_of_disjuncts_scans_each_path_once(self, setup):
        """knows{1,3} plans the knows scan under every disjunct; with
        the memo each distinct (path, direction) hits the index once."""
        graph, index, stats = setup
        counting = _CountingIndex(index)
        node = parse("knows{1,3}")
        normal = normalize(node, star_bound_value=8)
        report = evaluate_normal_form(
            normal, counting, graph, stats, Strategy.NAIVE
        )
        distinct_scans = {
            (plan.path, plan.via_inverse)
            for plan in _walk_plans(report.plan.plan)
        }
        assert counting.scans == len(distinct_scans)
        assert report.scan_memo_hits > 0
        assert report.scan_memo_misses > 0
        assert set(report.pairs) == reference_eval(graph, node)

    def test_counters_zero_without_sharing(self, setup):
        graph, index, stats = setup
        normal = normalize(parse("knows/worksFor"), star_bound_value=8)
        report = evaluate_normal_form(
            normal, index, graph, stats, Strategy.SEMI_NAIVE
        )
        assert report.scan_memo_hits == 0
        assert report.scan_memo_misses > 0

    def test_fallback_shares_repeated_subtrees(self, setup):
        """The hybrid fallback memoizes repeated AST subtrees: the same
        starred base appears under both union branches."""
        graph, index, stats = setup
        node = parse("(knows|worksFor)*/supervisor | (knows|worksFor)*")
        report = evaluate_ast(
            node, index, graph, stats, Strategy.SEMI_NAIVE, max_disjuncts=4
        )
        assert report.used_fallback
        assert report.scan_memo_hits > 0
        assert set(report.pairs) == reference_eval(graph, node)


def _walk_plans(plan):
    from repro.engine.plan import IndexScanPlan

    if isinstance(plan, IndexScanPlan):
        yield plan
    for child in plan.children():
        yield from _walk_plans(child)
