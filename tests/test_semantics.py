"""Tests for the reference set-semantics evaluator."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph.examples import figure1_graph
from repro.graph.generators import chain, cycle, grid
from repro.graph.graph import Graph, LabelPath
from repro.rpq import ast
from repro.rpq.parser import parse
from repro.rpq.semantics import (
    compose,
    eval_ast,
    eval_label_path,
    eval_query,
    identity_relation,
    relation_power,
    transitive_fixpoint,
)

from tests.strategies import graphs, rpq_asts


class TestPrimitives:
    def test_identity_relation(self):
        graph = chain(2)
        assert identity_relation(graph) == {(0, 0), (1, 1), (2, 2)}

    def test_compose(self):
        assert compose({(1, 2), (3, 4)}, {(2, 5), (2, 6)}) == {(1, 5), (1, 6)}

    def test_compose_empty(self):
        assert compose(set(), {(1, 2)}) == set()
        assert compose({(1, 2)}, set()) == set()

    def test_relation_power_zero_is_identity(self):
        graph = chain(3)
        base = {(0, 1)}
        assert relation_power(graph, base, 0) == identity_relation(graph)

    def test_relation_power(self):
        graph = chain(3)
        base = {(0, 1), (1, 2), (2, 3)}
        assert relation_power(graph, base, 2) == {(0, 2), (1, 3)}
        assert relation_power(graph, base, 4) == set()

    def test_transitive_fixpoint_on_cycle_terminates(self):
        graph = cycle(4)
        base = {(i, (i + 1) % 4) for i in range(4)}
        closure = transitive_fixpoint(graph, base, low=1)
        assert closure == {(i, j) for i in range(4) for j in range(4)}

    def test_transitive_fixpoint_low_zero_includes_identity(self):
        graph = chain(2)
        closure = transitive_fixpoint(graph, {(0, 1)}, low=0)
        assert (2, 2) in closure
        assert (0, 1) in closure

    def test_transitive_fixpoint_low_two(self):
        graph = chain(4)
        base = {(i, i + 1) for i in range(4)}
        closure = transitive_fixpoint(graph, base, low=2)
        assert (0, 1) not in closure
        assert (0, 2) in closure and (0, 4) in closure


class TestOperators:
    def test_epsilon(self):
        graph = chain(1)
        assert eval_ast(graph, ast.Epsilon()) == identity_relation(graph)

    def test_label_forward_and_inverse(self):
        graph = Graph.from_edges([("x", "a", "y")])
        x, y = graph.node_id("x"), graph.node_id("y")
        assert eval_ast(graph, parse("a")) == {(x, y)}
        assert eval_ast(graph, parse("^a")) == {(y, x)}

    def test_missing_label_is_empty(self):
        graph = chain(2)
        assert eval_ast(graph, parse("ghost")) == set()

    def test_concat(self):
        graph = chain(2)
        assert eval_ast(graph, parse("next/next")) == {(0, 2)}

    def test_union(self):
        graph = Graph.from_edges([("x", "a", "y"), ("x", "b", "z")])
        answer = eval_query(graph, "a|b")
        assert answer == {("x", "y"), ("x", "z")}

    def test_repeat_range(self):
        graph = chain(4)
        answer = eval_ast(graph, parse("next{2,3}"))
        assert answer == {(0, 2), (1, 3), (2, 4), (0, 3), (1, 4)}

    def test_repeat_zero_includes_identity(self):
        graph = chain(2)
        assert identity_relation(graph) <= eval_ast(graph, parse("next{0,1}"))

    def test_star_on_dag(self):
        graph = chain(3)
        answer = eval_ast(graph, parse("next*"))
        assert answer == {(i, j) for i in range(4) for j in range(4) if i <= j}

    def test_plus_excludes_identity_on_dag(self):
        graph = chain(3)
        answer = eval_ast(graph, parse("next+"))
        assert (0, 0) not in answer
        assert (0, 3) in answer

    def test_star_on_cycle_is_total(self):
        graph = cycle(3)
        answer = eval_ast(graph, parse("next*"))
        assert answer == {(i, j) for i in range(3) for j in range(3)}

    def test_inverse_expression(self):
        graph = chain(2)
        assert eval_ast(graph, parse("^(next/next)")) == {(2, 0)}

    def test_grid_monotone_paths(self):
        graph = grid(3, 3)
        answer = eval_query(graph, "right/down")
        assert ("c0_0", "c1_1") in answer
        # right then down commutes with down then right as a set
        assert answer == eval_query(graph, "down/right")


class TestPaperExamples:
    def test_supervisor_worksfor(self):
        assert eval_query(figure1_graph(), "supervisor/^worksFor") == {
            ("kim", "sue")
        }

    def test_label_path_evaluation_matches_ast(self):
        graph = figure1_graph()
        path = LabelPath.of("knows", "knows", "worksFor")
        assert eval_label_path(graph, path) == eval_ast(
            graph, parse("knows/knows/worksFor")
        )


class TestAlgebraicLaws:
    @settings(max_examples=50, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=3), rpq_asts(max_leaves=3))
    def test_union_commutes(self, graph, left, right):
        assert eval_ast(graph, ast.union(left, right)) == eval_ast(
            graph, ast.union(right, left)
        )

    @settings(max_examples=50, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=3))
    def test_epsilon_is_concat_identity(self, graph, node):
        assert eval_ast(graph, ast.concat(node, ast.Epsilon())) == eval_ast(
            graph, node
        )
        assert eval_ast(graph, ast.concat(ast.Epsilon(), node)) == eval_ast(
            graph, node
        )

    @settings(max_examples=50, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=2), rpq_asts(max_leaves=2),
           rpq_asts(max_leaves=2))
    def test_concat_associates(self, graph, a, b, c):
        left = ast.concat(ast.concat(a, b), c)
        right = ast.concat(a, ast.concat(b, c))
        assert eval_ast(graph, left) == eval_ast(graph, right)

    @settings(max_examples=50, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=2), rpq_asts(max_leaves=2),
           rpq_asts(max_leaves=2))
    def test_concat_distributes_over_union(self, graph, a, b, c):
        left = ast.concat(a, ast.union(b, c))
        right = ast.union(ast.concat(a, b), ast.concat(a, c))
        assert eval_ast(graph, left) == eval_ast(graph, right)

    @settings(max_examples=50, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=3))
    def test_double_inverse_is_identity(self, graph, node):
        assert eval_ast(graph, ast.Inverse(ast.Inverse(node))) == eval_ast(
            graph, node
        )

    @settings(max_examples=40, deadline=None)
    @given(graphs(), rpq_asts(max_leaves=2))
    def test_repeat_splits(self, graph, node):
        """R{0,2} == R{0,1} ∪ R{2,2}."""
        whole = eval_ast(graph, ast.repeat(node, 0, 2))
        split = eval_ast(graph, ast.repeat(node, 0, 1)) | eval_ast(
            graph, ast.repeat(node, 2, 2)
        )
        assert whole == split

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=5, max_edges=8), rpq_asts(max_leaves=2))
    def test_star_is_bounded_recursion_at_n(self, graph, node):
        """Section 2.2: R*(G) == R^{0,n(G)}(G)."""
        from repro.graph.stats import star_bound

        bound = star_bound(graph)
        star_answer = eval_ast(graph, ast.star(node))
        bounded_answer = eval_ast(graph, ast.repeat(node, 0, bound))
        assert star_answer == bounded_answer
