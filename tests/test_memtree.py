"""Tests for the in-memory B+tree, including property-based checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyOrderError, StorageError
from repro.storage.memtree import BPlusTree

KEYS = st.tuples(st.integers(min_value=0, max_value=50),
                 st.integers(min_value=0, max_value=50))


def build(pairs, order=4):
    tree = BPlusTree(order=order)
    for key, value in pairs:
        tree.insert(key, value)
    return tree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(("x",)) is None
        assert list(tree.items()) == []

    def test_insert_get(self):
        tree = build([((1,), "one"), ((2,), "two")])
        assert tree.get((1,)) == "one"
        assert tree.get((2,)) == "two"
        assert len(tree) == 2

    def test_overwrite_does_not_grow(self):
        tree = build([((1,), "a")])
        assert tree.insert((1,), "b") is False
        assert len(tree) == 1
        assert tree.get((1,)) == "b"

    def test_contains(self):
        tree = build([((1,), None)])
        assert (1,) in tree
        assert (2,) not in tree

    def test_contains_distinguishes_none_value(self):
        tree = build([((1,), None)])
        assert (1,) in tree  # stored value is None but the key exists

    def test_rejects_non_tuple_keys(self):
        tree = BPlusTree()
        with pytest.raises(StorageError):
            tree.insert([1], "x")

    def test_order_validation(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)

    def test_many_inserts_sorted_iteration(self):
        keys = [(i,) for i in range(500)]
        tree = BPlusTree(order=4)
        for key in reversed(keys):
            tree.insert(key)
        assert list(tree.keys()) == keys
        tree.check_invariants()


class TestDelete:
    def test_delete_existing(self):
        tree = build([((i,), i) for i in range(100)], order=4)
        assert tree.delete((50,)) is True
        assert (50,) not in tree
        assert len(tree) == 99
        tree.check_invariants()

    def test_delete_missing(self):
        tree = build([((1,), 1)])
        assert tree.delete((9,)) is False
        assert len(tree) == 1

    def test_delete_everything(self):
        keys = [(i,) for i in range(200)]
        tree = build([(key, None) for key in keys], order=4)
        for key in keys:
            assert tree.delete(key)
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_delete_then_reinsert(self):
        tree = build([((i,), i) for i in range(50)], order=4)
        for i in range(0, 50, 2):
            tree.delete((i,))
        for i in range(0, 50, 2):
            tree.insert((i,), -i)
        assert len(tree) == 50
        assert tree.get((4,)) == -4
        tree.check_invariants()


class TestScans:
    def test_range_scan_half_open(self):
        tree = build([((i,), i) for i in range(10)])
        keys = [key for key, _ in tree.range_scan((3,), (7,))]
        assert keys == [(3,), (4,), (5,), (6,)]

    def test_range_scan_unbounded(self):
        tree = build([((i,), i) for i in range(5)])
        assert len(list(tree.range_scan())) == 5
        assert [k for k, _ in tree.range_scan(low=(3,))] == [(3,), (4,)]
        assert [k for k, _ in tree.range_scan(high=(2,))] == [(0,), (1,)]

    def test_prefix_scan_contiguous(self):
        entries = [((path, s, t), None)
                   for path in ("a", "ab", "b")
                   for s in range(3) for t in range(3)]
        tree = build(entries, order=4)
        scanned = [key for key, _ in tree.prefix_scan(("a",))]
        assert scanned == [("a", s, t) for s in range(3) for t in range(3)]

    def test_prefix_scan_two_components(self):
        tree = build([((1, s, t), None) for s in range(3) for t in range(3)])
        assert [k for k, _ in tree.prefix_scan((1, 2))] == [
            (1, 2, 0), (1, 2, 1), (1, 2, 2)
        ]

    def test_prefix_scan_no_match(self):
        tree = build([((1, 1), None)])
        assert list(tree.prefix_scan((9,))) == []

    def test_count_prefix(self):
        tree = build([((1, i), None) for i in range(7)] + [((2, 0), None)])
        assert tree.count_prefix((1,)) == 7
        assert tree.count_prefix((2,)) == 1

    def test_prefix_requires_tuple(self):
        tree = BPlusTree()
        with pytest.raises(StorageError):
            list(tree.prefix_scan([1]))


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        items = [((i,), str(i)) for i in range(1000)]
        tree = BPlusTree.bulk_load(items, order=8)
        assert len(tree) == 1000
        assert list(tree.items()) == items
        tree.check_invariants()

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        tree.check_invariants()

    def test_bulk_load_single(self):
        tree = BPlusTree.bulk_load([((1,), "x")])
        assert tree.get((1,)) == "x"
        tree.check_invariants()

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(KeyOrderError):
            BPlusTree.bulk_load([((2,), None), ((1,), None)])

    def test_bulk_load_rejects_duplicates(self):
        with pytest.raises(KeyOrderError):
            BPlusTree.bulk_load([((1,), None), ((1,), None)])

    def test_bulk_loaded_tree_supports_mutation(self):
        tree = BPlusTree.bulk_load([((i,), None) for i in range(100)], order=4)
        tree.insert((1000,))
        assert tree.delete((50,))
        tree.check_invariants()

    @pytest.mark.parametrize("count", [0, 1, 3, 4, 5, 63, 64, 65, 300])
    def test_bulk_load_boundary_sizes(self, count):
        items = [((i,), None) for i in range(count)]
        tree = BPlusTree.bulk_load(items, order=4)
        assert list(tree.keys()) == [key for key, _ in items]
        tree.check_invariants()


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(KEYS, st.integers())))
    def test_matches_dict_semantics(self, operations):
        tree = BPlusTree(order=4)
        model: dict = {}
        for key, value in operations:
            tree.insert(key, value)
            model[key] = value
        assert len(tree) == len(model)
        assert list(tree.items()) == sorted(model.items())
        tree.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(KEYS, unique=True),
        st.lists(KEYS),
    )
    def test_insert_delete_mixture(self, inserts, deletes):
        tree = BPlusTree(order=4)
        model: set = set()
        for key in inserts:
            tree.insert(key)
            model.add(key)
        for key in deletes:
            assert tree.delete(key) == (key in model)
            model.discard(key)
        assert list(tree.keys()) == sorted(model)
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(KEYS, unique=True, min_size=1), KEYS, KEYS)
    def test_range_scan_matches_filter(self, keys, low, high):
        if low > high:
            low, high = high, low
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key)
        expected = sorted(k for k in keys if low <= k < high)
        assert [k for k, _ in tree.range_scan(low, high)] == expected
