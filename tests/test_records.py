"""Tests for the memcomparable record codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.records import decode_key, encode_key, encode_many

SCALARS = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(max_size=12),
    st.binary(max_size=12),
)

TUPLES = st.lists(SCALARS, max_size=4).map(tuple)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            (),
            (0,),
            (-1, 1),
            ("",),
            ("hello", 42),
            (b"\x00\x01", "x"),
            ("null\x00byte",),
            (2**63 - 1, -(2**63)),
            (3.5, -2.25, 0.0),
        ],
    )
    def test_examples(self, value):
        assert decode_key(encode_key(value)) == value

    @settings(max_examples=200, deadline=None)
    @given(TUPLES)
    def test_property_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value


class TestOrderPreservation:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                 min_size=1, max_size=3).map(tuple),
        st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                 min_size=1, max_size=3).map(tuple),
    )
    def test_int_tuples(self, left, right):
        assert (encode_key(left) < encode_key(right)) == (left < right)

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=8), st.text(max_size=8))
    def test_strings(self, left, right):
        # Compare as UTF-8 byte sequences (the index compares bytes).
        left_bytes, right_bytes = left.encode(), right.encode()
        assert (encode_key((left,)) < encode_key((right,))) == (
            left_bytes < right_bytes
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(allow_nan=False, allow_infinity=True),
        st.floats(allow_nan=False, allow_infinity=True),
    )
    def test_floats(self, left, right):
        if left < right:
            assert encode_key((left,)) < encode_key((right,))
        elif left > right:
            assert encode_key((left,)) > encode_key((right,))

    def test_prefix_tuples_encode_to_byte_prefixes(self):
        full = encode_key((7, "x", 3))
        prefix = encode_key((7, "x"))
        assert full.startswith(prefix)

    @settings(max_examples=100, deadline=None)
    @given(TUPLES, SCALARS)
    def test_property_prefix(self, prefix, extra):
        assert encode_key(prefix + (extra,)).startswith(encode_key(prefix))

    def test_string_escaping_preserves_order_around_nul(self):
        values = ["a", "a\x00", "a\x00b", "ab"]
        encoded = sorted(encode_key((value,)) for value in values)
        decoded = [decode_key(enc)[0] for enc in encoded]
        assert decoded == sorted(values, key=lambda s: s.encode())


class TestErrors:
    def test_rejects_bool(self):
        with pytest.raises(StorageError):
            encode_key((True,))

    def test_rejects_unknown_type(self):
        with pytest.raises(StorageError):
            encode_key(([1],))

    def test_rejects_out_of_range_int(self):
        with pytest.raises(StorageError):
            encode_key((2**63,))

    def test_rejects_corrupt_tag(self):
        with pytest.raises(StorageError):
            decode_key(b"\x7f")

    def test_rejects_unterminated_string(self):
        encoded = bytearray(encode_key(("abc",)))
        with pytest.raises(StorageError):
            decode_key(bytes(encoded[:-2]))

    def test_rejects_bad_escape(self):
        with pytest.raises(StorageError):
            decode_key(b"\x03a\x00\x01")


def test_encode_many():
    rows = [(1, "a"), (2, "b")]
    assert encode_many(rows) == [encode_key(row) for row in rows]
