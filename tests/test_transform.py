"""Tests for graph transformations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.graph import transform
from repro.graph.generators import chain
from repro.graph.graph import Graph
from repro.rpq.semantics import eval_ast, eval_query

from tests.strategies import graphs, rpq_asts


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, figure1):
        sub = transform.induced_subgraph(figure1, ["kim", "sue", "liz"])
        assert set(sub.node_names()) == {"kim", "sue", "liz"}
        assert sub.has_edge("kim", "supervisor", "liz")
        assert sub.has_edge("sue", "worksFor", "liz")
        assert not sub.has_edge("kim", "knows", "sue") or figure1.has_edge(
            "kim", "knows", "sue"
        )

    def test_unknown_node_rejected(self, figure1):
        with pytest.raises(ValidationError):
            transform.induced_subgraph(figure1, ["kim", "ghost"])

    def test_preserves_isolated_members(self, figure1):
        sub = transform.induced_subgraph(figure1, ["kim", "ada"])
        assert sub.node_count == 2
        # No edges between kim and ada in figure 1.
        assert sub.edge_count == 0


class TestNeighborhood:
    def test_radius_zero_is_just_center(self, figure1):
        sub = transform.neighborhood(figure1, "kim", 0)
        assert set(sub.node_names()) == {"kim"}

    def test_radius_grows_monotonically(self, figure1):
        sizes = [
            transform.neighborhood(figure1, "kim", r).node_count
            for r in range(4)
        ]
        assert sizes == sorted(sizes)

    def test_radius_covers_undirected_ball(self, figure1):
        from repro.graph.stats import paths_k_from

        sub = transform.neighborhood(figure1, "zoe", 2)
        expected = {
            figure1.node_name(n)
            for n in paths_k_from(figure1, figure1.node_id("zoe"), 2)
        }
        assert set(sub.node_names()) == expected

    def test_negative_radius_rejected(self, figure1):
        with pytest.raises(ValidationError):
            transform.neighborhood(figure1, "kim", -1)

    def test_local_queries_survive(self, figure1):
        """Queries whose answers stay inside the ball agree with the full graph."""
        sub = transform.neighborhood(figure1, "liz", 3)
        inside = eval_query(sub, "supervisor/^worksFor")
        assert inside == {("kim", "sue")}


class TestReverse:
    def test_edges_flipped(self):
        graph = Graph.from_edges([("x", "a", "y")])
        reversed_graph = transform.reverse(graph)
        assert reversed_graph.has_edge("y", "a", "x")
        assert not reversed_graph.has_edge("x", "a", "y")

    def test_involution(self, figure1):
        double = transform.reverse(transform.reverse(figure1))
        assert list(double.edges()) == list(figure1.edges())

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_single_steps_swap(self, graph):
        """Every step relation in reverse(G) is the swapped original."""
        reversed_graph = transform.reverse(graph)
        # reverse() interns names in the same order, so ids coincide.
        for step in graph.all_steps():
            assert reversed_graph.step_relation(step) == {
                (b, a) for a, b in graph.step_relation(step)
            }

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10), rpq_asts(max_leaves=3))
    def test_inverse_is_relation_swap(self, graph, node):
        """^R(G) == swap(R(G)) — the semantics identity behind reverse()."""
        from repro.rpq.ast import Inverse

        assert eval_ast(graph, Inverse(node)) == {
            (b, a) for a, b in eval_ast(graph, node)
        }


class TestRelabel:
    def test_dict_mapping(self):
        graph = Graph.from_edges([("x", "a", "y"), ("y", "b", "z")])
        renamed = transform.relabel(graph, {"a": "alpha", "b": "beta"})
        assert renamed.labels() == ("alpha", "beta")

    def test_merging_labels(self, figure1):
        merged = transform.relabel(
            figure1,
            {"knows": "link", "worksFor": "link", "supervisor": "link"},
        )
        assert merged.labels() == ("link",)
        assert merged.edge_count == figure1.edge_count

    def test_callable_mapping(self):
        graph = Graph.from_edges([("x", "a", "y")])
        upper = transform.relabel(graph, str.upper)
        assert upper.labels() == ("A",)

    def test_missing_mapping_rejected(self):
        graph = Graph.from_edges([("x", "a", "y")])
        with pytest.raises(ValidationError):
            transform.relabel(graph, {"b": "c"})


class TestMergeAndDrop:
    def test_merge_identifies_shared_nodes(self):
        first = Graph.from_edges([("x", "a", "y")])
        second = Graph.from_edges([("y", "b", "z")])
        merged = transform.merge(first, second)
        assert merged.node_count == 3
        assert merged.edge_count == 2

    def test_merge_deduplicates_edges(self):
        graph = Graph.from_edges([("x", "a", "y")])
        merged = transform.merge(graph, graph)
        assert merged.edge_count == 1

    def test_drop_labels(self, figure1):
        dropped = transform.drop_labels(figure1, ["knows"])
        assert "knows" not in dropped.labels()
        assert dropped.edge_count == 7
        assert dropped.node_count == figure1.node_count


class TestLargestComponent:
    def test_single_component(self):
        graph = chain(3)
        component = transform.largest_connected_component(graph)
        assert component.node_count == 4

    def test_picks_larger_island(self):
        graph = Graph.from_edges(
            [("a", "x", "b"), ("c", "x", "d"), ("d", "x", "e"), ("e", "x", "c")]
        )
        component = transform.largest_connected_component(graph)
        assert set(component.node_names()) == {"c", "d", "e"}

    def test_isolated_nodes_are_components(self):
        graph = Graph()
        graph.add_node("alone")
        component = transform.largest_connected_component(graph)
        assert component.node_count == 1
