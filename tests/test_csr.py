"""Tests for the CSR closure engine (:mod:`repro.csr`).

The builder is pinned against a direct adjacency construction; the
frontier fixpoint, bounded powers and relation power are property-tested
against the tuple-set oracle in :mod:`repro.rpq.semantics` — on both
the numpy-assisted and pure-Python paths, on graphs that include
self-loops and cycles, and with ``low > 1`` seeds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import csr
from repro import relation as rel
from repro.errors import ValidationError
from repro.graph.graph import Graph, Step
from repro.relation import Order, Relation
from repro.rpq.semantics import (
    bounded_powers as set_bounded_powers,
    relation_power as set_relation_power,
    transitive_fixpoint as set_transitive_fixpoint,
)

from tests.strategies import graphs
from tests.test_relation import forced_path

#: Pairs over a small dense id space; self-loops are frequent.
PAIRS = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
).map(lambda pairs: sorted(set(pairs)))

BOTH_PATHS = pytest.mark.parametrize(
    "pure_python", [False, True], ids=["vectorized", "scalar"]
)


def _graph_with(pairs, extra_nodes: int = 0) -> Graph:
    """A graph interning ids 0..max covering ``pairs`` (plus spares)."""
    bound = max((max(a, b) for a, b in pairs), default=-1) + 1 + extra_nodes
    graph = Graph()
    for i in range(bound):
        graph.add_node(f"n{i}")
    return graph


class TestBuilder:
    def test_offsets_and_neighbors(self):
        pairs = [(0, 1), (0, 3), (2, 2), (4, 0)]
        built = csr.CSR.from_relation(Relation.from_pairs(pairs))
        assert built.n == 5
        assert len(built) == 4
        assert list(built.offsets) == [0, 2, 2, 3, 3, 4]
        assert list(built.neighbors(0)) == [1, 3]
        assert list(built.neighbors(1)) == []
        assert list(built.neighbors(2)) == [2]
        assert built.out_degree(4) == 1

    def test_unsorted_input_is_sorted_and_deduplicated(self):
        shuffled = Relation.from_pairs([(3, 0), (1, 2), (3, 0), (1, 1)])
        built = csr.CSR.from_relation(shuffled)
        assert built.relation.pairs() == [(1, 1), (1, 2), (3, 0)]
        assert built.relation.order is Order.BY_SRC

    def test_widened_id_space(self):
        built = csr.CSR.from_relation(Relation.from_pairs([(0, 1)]), n=7)
        assert built.n == 7
        assert built.out_degree(6) == 0

    def test_transpose(self):
        pairs = [(0, 1), (0, 2), (2, 1)]
        transposed = csr.CSR.from_relation(Relation.from_pairs(pairs)).transpose()
        assert transposed.relation.to_set() == {(1, 0), (2, 0), (1, 2)}
        assert list(transposed.neighbors(1)) == [0, 2]

    def test_adjacency_bitsets(self):
        built = csr.CSR.from_relation(Relation.from_pairs([(0, 1), (0, 3), (2, 0)]))
        assert built.adjacency_bitsets() == {0: 0b1010, 2: 0b1}

    def test_sparse_ids_rejected(self):
        huge = Relation.from_pairs([(csr.MAX_DENSE_NODE + 1, 0)])
        with pytest.raises(ValidationError):
            csr.CSR.from_relation(huge)
        assert not csr.supports(range(0), huge)

    @settings(max_examples=40, deadline=None)
    @given(PAIRS)
    def test_builder_matches_adjacency(self, pairs):
        built = csr.CSR.from_relation(Relation.from_pairs(pairs))
        for node in range(built.n):
            expected = sorted(b for a, b in pairs if a == node)
            assert list(built.neighbors(node)) == expected

    @settings(max_examples=40, deadline=None)
    @given(PAIRS)
    def test_postorder_visits_every_source_once(self, pairs):
        built = csr.CSR.from_relation(Relation.from_pairs(pairs))
        order = csr._postorder(built)
        sources = {a for a, _ in pairs}
        assert sorted(order) == sorted(sources)

    def test_postorder_closes_successors_first_on_a_dag(self):
        chain = csr.CSR.from_relation(
            Relation.from_pairs([(0, 1), (1, 2), (2, 3)])
        )
        assert csr._postorder(chain) == [2, 1, 0]


@BOTH_PATHS
class TestClosureMatchesOracle:
    @settings(max_examples=50, deadline=None)
    @given(PAIRS, st.integers(0, 3))
    def test_transitive_fixpoint(self, pure_python, pairs, low):
        graph = _graph_with(pairs, extra_nodes=1)
        with forced_path(pure_python):
            result = csr.transitive_fixpoint(
                graph.node_ids(), Relation.from_pairs(pairs), low
            )
        assert result.to_set() == set_transitive_fixpoint(
            graph, set(pairs), low
        )
        assert result.order is Order.BY_SRC
        assert result.pairs() == sorted(set(result.pairs()))

    @settings(max_examples=50, deadline=None)
    @given(PAIRS, st.integers(0, 3), st.integers(0, 4))
    def test_bounded_powers(self, pure_python, pairs, low, extra):
        graph = _graph_with(pairs)
        with forced_path(pure_python):
            result = csr.bounded_powers(
                graph.node_ids(), Relation.from_pairs(pairs), low, low + extra
            )
        assert result.to_set() == set_bounded_powers(
            graph, set(pairs), low, low + extra
        )

    @settings(max_examples=50, deadline=None)
    @given(PAIRS, st.integers(0, 4))
    def test_relation_power(self, pure_python, pairs, exponent):
        graph = _graph_with(pairs)
        with forced_path(pure_python):
            result = csr.relation_power(
                graph.node_ids(), Relation.from_pairs(pairs), exponent
            )
        assert result.to_set() == set_relation_power(
            graph, set(pairs), exponent
        )

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=7, max_edges=14), st.integers(0, 2))
    def test_fixpoint_on_random_labeled_graphs(self, pure_python, graph, low):
        edges = set()
        for label in graph.labels():
            edges.update(graph.step_pairs(Step(label)))
        with forced_path(pure_python):
            result = csr.transitive_fixpoint(
                graph.node_ids(), Relation.from_pairs(sorted(edges)), low
            )
        assert result.to_set() == set_transitive_fixpoint(graph, edges, low)

    def test_cycle_with_high_low_seed(self, pure_python):
        """A pure cycle with a low > 1 seed exercises the power-seeded
        closure: every node reaches every node regardless of low."""
        cycle = [(i, (i + 1) % 5) for i in range(5)]
        graph = _graph_with(cycle)
        with forced_path(pure_python):
            result = csr.transitive_fixpoint(
                graph.node_ids(), Relation.from_pairs(cycle), low=3
            )
        assert result.to_set() == {(a, b) for a in range(5) for b in range(5)}

    def test_self_loop_only(self, pure_python):
        loop = Relation.from_pairs([(2, 2)])
        with forced_path(pure_python):
            result = csr.transitive_fixpoint(range(4), loop, low=1)
        assert result.to_set() == {(2, 2)}


class TestRelationDelegation:
    """The public :mod:`repro.relation` kernels route through CSR."""

    def test_dense_ids_route_to_csr(self, monkeypatch):
        calls = []
        original = csr.transitive_fixpoint
        monkeypatch.setattr(
            csr, "transitive_fixpoint",
            lambda *args: calls.append(args) or original(*args),
        )
        rel.transitive_fixpoint(range(3), Relation.from_pairs([(0, 1)]), 1)
        assert len(calls) == 1

    def test_sparse_ids_fall_back_to_delta(self):
        """Ids beyond the dense bound still evaluate (via delta)."""
        huge = csr.MAX_DENSE_NODE + 17
        base = Relation.from_pairs([(huge, huge + 1), (huge + 1, huge + 2)])
        result = rel.transitive_fixpoint([], base, 1)
        assert result.to_set() == {
            (huge, huge + 1), (huge + 1, huge + 2), (huge, huge + 2),
        }

    def test_delta_twins_still_agree(self):
        """The benchmark baseline stays semantically equivalent."""
        pairs = [(0, 1), (1, 2), (2, 0), (3, 3)]
        base = Relation.from_pairs(pairs)
        for low in (0, 1, 2):
            assert (
                rel.delta_transitive_fixpoint(range(5), base, low).to_set()
                == csr.transitive_fixpoint(range(5), base, low).to_set()
            )
        assert (
            rel.delta_bounded_powers(range(5), base, 1, 4).to_set()
            == csr.bounded_powers(range(5), base, 1, 4).to_set()
        )
