"""Tests for the GraphDatabase query cache and its invalidation.

The regression the cache must never introduce: a graph mutation or an
index rebuild after which a *stale* cached answer is served.  The cache
key embeds the graph's monotone version counter, and ``build_index``
clears the cache wholesale, so both routes are covered.
"""

from __future__ import annotations

from repro.api import GraphDatabase
from repro.graph.examples import FIGURE1_EDGES
from repro.rpq.semantics import eval_query


def _database(**kwargs) -> GraphDatabase:
    return GraphDatabase.from_edges(FIGURE1_EDGES, k=2, **kwargs)


class TestCacheHits:
    def test_repeated_query_is_cached(self):
        database = _database()
        first = database.query("knows/worksFor")
        second = database.query("knows/worksFor")
        assert not first.cached
        assert second.cached
        assert second.pairs == first.pairs
        assert first.report is not None
        assert second.report is None  # reports are not retained
        hash(first.report)  # reports stay hashable (set/dict-key use)
        info = database.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_methods_cached_separately(self):
        database = _database()
        semi = database.query("knows/worksFor", method="semi-naive")
        minj = database.query("knows/worksFor", method="minjoin")
        assert not semi.cached and not minj.cached
        assert semi.pairs == minj.pairs
        assert database.cache_info()["entries"] == 2

    def test_baseline_methods_are_cached_too(self):
        database = _database()
        database.query("knows", method="reference")
        assert database.query("knows", method="reference").cached

    def test_use_cache_false_bypasses(self):
        """No lookup, no store, no counter updates — a true bypass."""
        database = _database()
        before = database.cache_info()
        fresh = database.query("knows", use_cache=False)
        assert not fresh.cached
        info = database.cache_info()
        assert info["entries"] == before["entries"] == 0
        assert info["misses"] == before["misses"] == 0

    def test_overwriting_a_key_does_not_inflate_the_pair_count(self):
        """Regression: re-storing the same key must not double-count."""
        database = _database()
        size = len(database.query("knows").pairs)
        for _ in range(5):
            database._remember(
                next(iter(database._query_cache)),
                next(iter(database._query_cache.values())),
            )
        info = database.cache_info()
        assert info["entries"] == 1
        assert info["pairs"] == size
        # And the cache still actually hits.
        assert database.query("knows").cached

    def test_lru_eviction(self):
        database = _database(query_cache_size=2)
        database.query("knows")
        database.query("worksFor")
        database.query("supervisor")  # evicts "knows"
        assert database.cache_info()["entries"] == 2
        assert not database.query("knows").cached

    def test_zero_capacity_disables_caching(self):
        database = _database(query_cache_size=0)
        database.query("knows")
        assert not database.query("knows").cached

    def test_pairs_budget_bounds_memory(self):
        """The cache is bounded by total answer pairs, not just entries."""
        database = _database(query_cache_max_pairs=8)
        big = database.query("(knows|worksFor|supervisor){1,3}")
        assert len(big.pairs) > 8
        # Oversized answer is served but never cached.
        assert not database.query("(knows|worksFor|supervisor){1,3}").cached
        assert database.cache_info()["pairs"] == 0
        # Small answers still cache, and evict LRU when the budget fills.
        database.query("supervisor")
        database.query("knows/worksFor")
        info = database.cache_info()
        assert 0 < info["pairs"] <= 8
        database.cache_clear()
        assert database.cache_info()["pairs"] == 0


class TestScanMemoCounters:
    """cache_info() also surfaces the executor's per-execution scan memo."""

    def test_memo_fires_on_a_union_of_disjuncts_query(self):
        """knows{1,3} normalizes to a union of three disjuncts that all
        scan the knows path — the memo must serve the repeats."""
        database = _database()
        before = database.cache_info()
        assert before["scan_memo_hits"] == 0
        result = database.query("knows{1,3}", method="naive")
        assert result.report.scan_memo_hits > 0
        info = database.cache_info()
        assert info["scan_memo_hits"] == result.report.scan_memo_hits
        assert info["scan_memo_misses"] == result.report.scan_memo_misses

    def test_counters_accumulate_across_queries(self):
        database = _database()
        first = database.query("knows{1,2}", method="naive")
        second = database.query("worksFor{1,2}", method="naive")
        info = database.cache_info()
        assert info["scan_memo_hits"] == (
            first.report.scan_memo_hits + second.report.scan_memo_hits
        )
        assert info["scan_memo_misses"] == (
            first.report.scan_memo_misses + second.report.scan_memo_misses
        )

    def test_cached_answers_do_not_touch_the_memo_counters(self):
        database = _database()
        database.query("knows{1,3}", method="naive")
        after_first = database.cache_info()
        assert database.query("knows{1,3}", method="naive").cached
        info = database.cache_info()
        assert info["scan_memo_hits"] == after_first["scan_memo_hits"]
        assert info["scan_memo_misses"] == after_first["scan_memo_misses"]


class TestInvalidation:
    def test_stale_results_never_served_after_mutation(self):
        """The regression test: mutate, rebuild, query — answers are fresh."""
        database = _database()
        query = "knows/worksFor"
        before = database.query(query)
        assert database.query(query).cached  # primed

        # Mutate the graph: kim starts working for a brand-new node.
        assert database.graph.add_edge("kim", "worksFor", "newco")
        database.build_index()

        after = database.query(query)
        assert not after.cached, "cached answer served across a mutation"
        expected = eval_query(database.graph, query)
        assert set(after.pairs) == expected
        assert after.pairs != before.pairs or expected == set(before.pairs)

    def test_graph_version_is_part_of_the_key(self):
        """Even without build_index, a mutation must miss the cache."""
        database = _database()
        database.query("knows")
        database.graph.add_edge("zz_a", "knows", "zz_b")
        # No rebuild yet: the version bump alone must force a miss.
        assert not database.query("knows").cached

    def test_mutation_purges_dead_entries(self):
        """Entries keyed on superseded versions can never hit again —
        they must be dropped, not left pinning the budgets."""
        database = _database()
        database.query("knows")
        database.query("worksFor")
        assert database.cache_info()["entries"] == 2
        database.graph.add_edge("zz_a", "knows", "zz_b")
        database.query("supervisor")  # first query after the mutation
        info = database.cache_info()
        assert info["entries"] == 1  # only the fresh-version entry lives
        assert info["pairs"] == len(database.query("supervisor").pairs)

    def test_build_index_clears_cache(self):
        database = _database()
        database.query("knows")
        assert database.cache_info()["entries"] == 1
        database.build_index()
        assert database.cache_info()["entries"] == 0

    def test_cache_clear(self):
        database = _database()
        database.query("knows")
        database.cache_clear()
        assert database.cache_info()["entries"] == 0
        assert not database.query("knows").cached

    def test_mutated_answers_are_correct_for_all_strategies(self):
        database = _database()
        query = "knows/knows"
        for method in ("naive", "semi-naive", "minsupport", "minjoin"):
            database.query(query, method=method)
        database.graph.add_edge("sue", "knows", "jan")
        database.build_index()
        expected = eval_query(database.graph, query)
        for method in ("naive", "semi-naive", "minsupport", "minjoin"):
            result = database.query(query, method=method)
            assert not result.cached
            assert set(result.pairs) == expected, method
