"""Tests for the NFA construction and the automaton baseline."""

from __future__ import annotations

from hypothesis import given, settings

from repro.baselines import automaton_eval
from repro.graph.examples import figure1_graph
from repro.graph.generators import chain, cycle
from repro.graph.graph import Graph, Step
from repro.rpq.automaton import compile_ast
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast

from tests.strategies import graphs, rpq_asts


class TestNfaConstruction:
    def test_epsilon_accepts_empty(self):
        nfa = compile_ast(parse("<eps>"))
        assert nfa.accepts_empty()

    def test_label_does_not_accept_empty(self):
        assert not compile_ast(parse("a")).accepts_empty()

    def test_star_accepts_empty(self):
        assert compile_ast(parse("a*")).accepts_empty()

    def test_repeat_zero_accepts_empty(self):
        assert compile_ast(parse("a{0,3}")).accepts_empty()
        assert not compile_ast(parse("a{1,3}")).accepts_empty()

    def test_alphabet_includes_inverse_steps(self):
        nfa = compile_ast(parse("a/^b"))
        assert nfa.alphabet() == frozenset(
            {Step("a"), Step("b", inverse=True)}
        )

    def test_eps_closure_is_reflexive_transitive(self):
        nfa = compile_ast(parse("a|b"))
        closure = nfa.eps_closure(nfa.start)
        assert nfa.start in closure
        # Union introduces epsilon fan-out from the start state.
        assert len(closure) >= 3

    def test_closure_cache_invalidated_by_mutation(self):
        nfa = compile_ast(parse("a"))
        before = nfa.eps_closure(nfa.start)
        extra = nfa.new_state()
        nfa.add_epsilon(nfa.start, extra)
        after = nfa.eps_closure(nfa.start)
        assert extra in after and extra not in before


class TestEvaluation:
    def test_single_label(self):
        graph = Graph.from_edges([("x", "a", "y")])
        pairs = automaton_eval.evaluate(graph, parse("a"))
        assert pairs == {(graph.node_id("x"), graph.node_id("y"))}

    def test_concat_on_chain(self):
        graph = chain(3)
        assert automaton_eval.evaluate(graph, parse("next/next")) == {
            (0, 2), (1, 3)
        }

    def test_star_on_cycle(self):
        graph = cycle(3)
        answer = automaton_eval.evaluate(graph, parse("next*"))
        assert answer == {(i, j) for i in range(3) for j in range(3)}

    def test_inverse_navigation(self):
        graph = chain(2)
        assert automaton_eval.evaluate(graph, parse("^next")) == {(1, 0), (2, 1)}

    def test_figure1_supervisor_example(self):
        graph = figure1_graph()
        pairs = automaton_eval.evaluate(graph, parse("supervisor/^worksFor"))
        assert graph.pairs_to_names(pairs) == {("kim", "sue")}

    def test_evaluate_from_single_source(self):
        graph = chain(3)
        nfa = compile_ast(parse("next{1,2}"))
        assert automaton_eval.evaluate_from(graph, nfa, 0) == {1, 2}

    def test_evaluate_pair(self):
        graph = chain(3)
        assert automaton_eval.evaluate_pair(graph, parse("next{3}"), 0, 3)
        assert not automaton_eval.evaluate_pair(graph, parse("next{3}"), 1, 3)

    @settings(max_examples=60, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), rpq_asts(max_leaves=4))
    def test_matches_reference_semantics(self, graph, node):
        """The product-BFS agrees with the set-semantics oracle."""
        assert automaton_eval.evaluate(graph, node) == eval_ast(graph, node)

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=2, allow_star=True))
    def test_matches_reference_with_star(self, graph, node):
        assert automaton_eval.evaluate(graph, node) == eval_ast(graph, node)
