"""Tests for the graph data model (Step, LabelPath, Graph)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import GraphError, UnknownNodeError, ValidationError
from repro.graph.graph import Graph, LabelPath, Step

from tests.strategies import label_paths


class TestStep:
    def test_forward_encode(self):
        assert Step("knows").encode() == "knows"

    def test_inverse_encode(self):
        assert Step("knows", inverse=True).encode() == "knows-"

    def test_decode_forward(self):
        assert Step.decode("knows") == Step("knows")

    def test_decode_inverse(self):
        assert Step.decode("knows-") == Step("knows", inverse=True)

    def test_inverted_flips_direction(self):
        assert Step("a").inverted() == Step("a", inverse=True)
        assert Step("a", inverse=True).inverted() == Step("a")

    def test_str_uses_caret_for_inverse(self):
        assert str(Step("a", inverse=True)) == "^a"

    def test_rejects_invalid_label(self):
        with pytest.raises(ValidationError):
            Step("has space")

    def test_rejects_empty_label(self):
        with pytest.raises(ValidationError):
            Step("")

    def test_rejects_label_with_dot(self):
        with pytest.raises(ValidationError):
            Step("a.b")

    def test_steps_are_hashable_and_equal_by_value(self):
        assert {Step("a"), Step("a")} == {Step("a")}


class TestLabelPath:
    def test_requires_at_least_one_step(self):
        with pytest.raises(ValidationError):
            LabelPath([])

    def test_of_constructor(self):
        path = LabelPath.of("knows", "knows-", "worksFor")
        assert len(path) == 3
        assert path[1] == Step("knows", inverse=True)

    def test_encode_decode_roundtrip(self):
        path = LabelPath.of("a", "b-", "c")
        assert LabelPath.decode(path.encode()) == path

    def test_inverted_reverses_and_flips(self):
        path = LabelPath.of("a", "b-", "c")
        assert path.inverted() == LabelPath.of("c-", "b", "a-")

    def test_double_inversion_is_identity(self):
        path = LabelPath.of("a", "b-")
        assert path.inverted().inverted() == path

    def test_concat(self):
        left = LabelPath.of("a")
        right = LabelPath.of("b", "c")
        assert left.concat(right) == LabelPath.of("a", "b", "c")

    def test_prefix_and_subpath(self):
        path = LabelPath.of("a", "b", "c", "d")
        assert path.prefix(2) == LabelPath.of("a", "b")
        assert path.subpath(1, 3) == LabelPath.of("b", "c")

    def test_slice_returns_labelpath(self):
        path = LabelPath.of("a", "b", "c")
        assert path[1:] == LabelPath.of("b", "c")

    def test_immutable(self):
        path = LabelPath.of("a")
        with pytest.raises(AttributeError):
            path.steps = ()

    def test_str_uses_slash_and_caret(self):
        assert str(LabelPath.of("a", "b-")) == "a/^b"

    @given(label_paths())
    def test_property_roundtrip_and_involution(self, path):
        assert LabelPath.decode(path.encode()) == path
        assert path.inverted().inverted() == path
        assert len(path.inverted()) == len(path)


class TestGraph:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.node_count == 0
        assert graph.edge_count == 0
        assert graph.labels() == ()

    def test_add_edge_interns_nodes(self):
        graph = Graph()
        assert graph.add_edge("x", "a", "y") is True
        assert graph.node_count == 2
        assert graph.has_node("x") and graph.has_node("y")

    def test_duplicate_edge_is_noop(self):
        graph = Graph()
        graph.add_edge("x", "a", "y")
        assert graph.add_edge("x", "a", "y") is False
        assert graph.edge_count == 1

    def test_same_pair_different_labels_both_kept(self):
        graph = Graph()
        graph.add_edge("x", "a", "y")
        graph.add_edge("x", "b", "y")
        assert graph.edge_count == 2
        assert graph.labels() == ("a", "b")

    def test_self_loop_allowed(self):
        graph = Graph()
        graph.add_edge("x", "a", "x")
        assert graph.has_edge("x", "a", "x")
        assert graph.node_count == 1

    def test_node_id_roundtrip(self):
        graph = Graph()
        graph.add_edge("x", "a", "y")
        assert graph.node_name(graph.node_id("x")) == "x"

    def test_unknown_node_raises(self):
        graph = Graph()
        with pytest.raises(UnknownNodeError):
            graph.node_id("ghost")

    def test_unknown_node_id_raises(self):
        graph = Graph()
        with pytest.raises(UnknownNodeError):
            graph.node_name(5)

    def test_bad_node_name_raises(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_node("")

    def test_bad_label_raises(self):
        graph = Graph()
        with pytest.raises(ValidationError):
            graph.add_edge("x", "9bad", "y")

    def test_out_in_neighbors(self):
        graph = Graph.from_edges([("x", "a", "y"), ("x", "a", "z")])
        x = graph.node_id("x")
        y = graph.node_id("y")
        assert set(graph.out_neighbors(x, "a")) == {y, graph.node_id("z")}
        assert set(graph.in_neighbors(y, "a")) == {x}
        assert graph.out_neighbors(y, "a") == ()

    def test_step_neighbors_inverse(self):
        graph = Graph.from_edges([("x", "a", "y")])
        y = graph.node_id("y")
        assert set(graph.step_neighbors(y, Step("a", inverse=True))) == {
            graph.node_id("x")
        }

    def test_step_relation_inverse_swaps(self):
        graph = Graph.from_edges([("x", "a", "y")])
        forward = graph.step_relation(Step("a"))
        backward = graph.step_relation(Step("a", inverse=True))
        assert backward == {(target, source) for source, target in forward}

    def test_undirected_neighbors_ignore_direction_and_label(self):
        graph = Graph.from_edges([("x", "a", "y"), ("z", "b", "x")])
        x = graph.node_id("x")
        assert graph.undirected_neighbors(x) == {
            graph.node_id("y"),
            graph.node_id("z"),
        }

    def test_edges_iteration_sorted(self):
        graph = Graph.from_edges(
            [("x", "b", "y"), ("x", "a", "y"), ("a", "a", "b")]
        )
        assert list(graph.edges()) == [
            ("a", "a", "b"),
            ("x", "a", "y"),
            ("x", "b", "y"),
        ]

    def test_all_steps_covers_both_directions(self):
        graph = Graph.from_edges([("x", "a", "y")])
        assert graph.all_steps() == (Step("a"), Step("a", inverse=True))

    def test_degrees(self):
        graph = Graph.from_edges([("x", "a", "y"), ("x", "b", "z")])
        x = graph.node_id("x")
        assert graph.degree_out(x) == 2
        assert graph.degree_in(x) == 0

    def test_pairs_to_names(self):
        graph = Graph.from_edges([("x", "a", "y")])
        ids = {(graph.node_id("x"), graph.node_id("y"))}
        assert graph.pairs_to_names(ids) == {("x", "y")}

    def test_isolated_node_counts(self):
        graph = Graph()
        graph.add_node("lonely")
        assert graph.node_count == 1
        assert list(graph.edges()) == []

    def test_label_edge_count(self):
        graph = Graph.from_edges([("x", "a", "y"), ("y", "a", "z")])
        assert graph.label_edge_count("a") == 2
        assert graph.label_edge_count("nope") == 0
