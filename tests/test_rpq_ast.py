"""Tests for the RPQ AST nodes and constructor helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.graph.graph import LabelPath, Step
from repro.rpq import ast

from tests.strategies import rpq_asts


class TestConstructors:
    def test_label(self):
        node = ast.label("knows")
        assert node.step == Step("knows")

    def test_inv_label(self):
        node = ast.inv_label("knows")
        assert node.step == Step("knows", inverse=True)

    def test_concat_flattens(self):
        node = ast.concat(ast.label("a"), ast.concat(ast.label("b"), ast.label("c")))
        assert isinstance(node, ast.Concat)
        assert len(node.parts) == 3

    def test_concat_singleton_collapses(self):
        assert ast.concat(ast.label("a")) == ast.label("a")

    def test_concat_empty_is_epsilon(self):
        assert ast.concat() == ast.Epsilon()

    def test_union_flattens(self):
        node = ast.union(ast.label("a"), ast.union(ast.label("b"), ast.label("c")))
        assert isinstance(node, ast.Union)
        assert len(node.parts) == 3

    def test_union_empty_rejected(self):
        with pytest.raises(ValidationError):
            ast.union()

    def test_repeat_bounds_validated(self):
        with pytest.raises(ValidationError):
            ast.repeat(ast.label("a"), 3, 2)
        with pytest.raises(ValidationError):
            ast.repeat(ast.label("a"), -1, 2)

    def test_plus_optional_star_sugar(self):
        assert ast.plus(ast.label("a")) == ast.Repeat(ast.label("a"), 1, None)
        assert ast.optional(ast.label("a")) == ast.Repeat(ast.label("a"), 0, 1)
        assert ast.star(ast.label("a")) == ast.Star(ast.label("a"))

    def test_from_label_path(self):
        path = LabelPath.of("a", "b-")
        node = ast.from_label_path(path)
        assert isinstance(node, ast.Concat)
        assert node.parts == (ast.label("a"), ast.inv_label("b"))

    def test_from_singleton_label_path(self):
        assert ast.from_label_path(LabelPath.of("a")) == ast.label("a")


class TestNodeProtocol:
    def test_size(self):
        node = ast.concat(ast.label("a"), ast.union(ast.label("b"), ast.Epsilon()))
        assert node.size() == 5

    def test_labels_used(self):
        node = ast.concat(
            ast.label("a"), ast.repeat(ast.inv_label("b"), 0, 2)
        )
        assert node.labels_used() == frozenset({"a", "b"})

    def test_walk_preorder(self):
        inner = ast.label("a")
        node = ast.repeat(inner, 1, 2)
        assert list(node.walk()) == [node, inner]

    def test_nodes_hashable(self):
        first = ast.concat(ast.label("a"), ast.label("b"))
        second = ast.concat(ast.label("a"), ast.label("b"))
        assert first == second
        assert {first} == {second}


class TestUnparse:
    @pytest.mark.parametrize(
        "node, expected",
        [
            (ast.label("a"), "a"),
            (ast.inv_label("a"), "^a"),
            (ast.Epsilon(), "<eps>"),
            (ast.concat(ast.label("a"), ast.label("b")), "a/b"),
            (ast.union(ast.label("a"), ast.label("b")), "a|b"),
            (
                ast.concat(ast.union(ast.label("a"), ast.label("b")), ast.label("c")),
                "(a|b)/c",
            ),
            (ast.repeat(ast.label("a"), 1, 3), "a{1,3}"),
            (ast.repeat(ast.label("a"), 1, None), "a{1,}"),
            (ast.star(ast.concat(ast.label("a"), ast.label("b"))), "(a/b)*"),
            (ast.Inverse(ast.union(ast.label("a"), ast.label("b"))), "^(a|b)"),
            (
                ast.repeat(ast.union(ast.label("a"), ast.label("b")), 4, 5),
                "(a|b){4,5}",
            ),
        ],
    )
    def test_examples(self, node, expected):
        assert str(node) == expected

    @settings(max_examples=100, deadline=None)
    @given(rpq_asts(allow_star=True))
    def test_unparse_reparses_to_same_ast(self, node):
        """str() output is valid syntax describing an equivalent query."""
        from repro.graph.examples import two_triangles
        from repro.rpq.parser import parse
        from repro.rpq.semantics import eval_ast

        reparsed = parse(str(node))
        graph = two_triangles()
        # Semantic equivalence (syntactic trees may differ by grouping):
        # both ASTs must denote the same relation.  The tiny fixed graph
        # has no 'c'-labeled edges, which is fine — both sides agree.
        assert eval_ast(graph, reparsed) == eval_ast(graph, node)
