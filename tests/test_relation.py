"""Tests for the columnar relation core (:mod:`repro.relation`).

Every kernel is property-tested against the tuple-set reference
implementations in :mod:`repro.rpq.semantics` — the library's
correctness oracle — on both the vectorized (numpy) and pure-Python
fallback paths.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import relation as rel
from repro.errors import ExecutionError, ValidationError
from repro.indexes.pathindex import PathIndex
from repro.relation import Order, Relation
from repro.rpq.semantics import (
    bounded_powers as set_bounded_powers,
    compose as set_compose,
    eval_ast,
    eval_label_path,
    transitive_fixpoint as set_transitive_fixpoint,
)

from tests.strategies import graphs, label_paths, rpq_asts

PAIRS = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30
).map(lambda pairs: sorted(set(pairs)))

#: Exercise both the numpy fast path and the scalar fallback.
BOTH_PATHS = pytest.mark.parametrize("pure_python", [False, True],
                                     ids=["vectorized", "scalar"])


@contextmanager
def forced_path(pure_python: bool):
    """Route kernels through one implementation path for the duration."""
    old_flag, old_min = rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN
    rel._FORCE_PURE_PYTHON = pure_python
    if not pure_python:
        rel._VECTOR_MIN = 0  # let tiny inputs hit the vectorized kernels
    try:
        yield
    finally:
        rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN = old_flag, old_min


def by_src(pairs) -> Relation:
    return Relation.from_pairs(sorted(pairs), Order.BY_SRC)


def by_tgt(pairs) -> Relation:
    return Relation.from_pairs(
        sorted(pairs, key=lambda pair: (pair[1], pair[0])), Order.BY_TGT
    )


class TestRelationType:
    def test_sequence_protocol(self):
        relation = Relation.from_pairs([(1, 2), (3, 4)])
        assert len(relation) == 2
        assert relation[0] == (1, 2)
        assert relation[0:2] == [(1, 2), (3, 4)]
        assert list(relation) == [(1, 2), (3, 4)]
        assert (3, 4) in relation
        assert (9, 9) not in relation
        assert relation == [(1, 2), (3, 4)]
        assert relation == Relation.from_pairs([(1, 2), (3, 4)])
        assert relation != [(1, 2)]

    def test_empty(self):
        empty = Relation.empty()
        assert len(empty) == 0 and not empty
        assert empty == []

    def test_column_length_mismatch_rejected(self):
        from array import array

        with pytest.raises(ValidationError):
            Relation(array("q", [1]), array("q"))

    def test_coerce_passthrough(self):
        relation = Relation.from_pairs([(1, 2)])
        assert Relation.coerce(relation) is relation
        assert Relation.coerce([(1, 2)]) == relation

    def test_out_of_range_ids_rejected(self):
        """Packed-key kernels would corrupt silently; fail loudly instead."""
        with pytest.raises(ValidationError):
            Relation.from_pairs([(2**32 + 1, 5)])
        with pytest.raises(ValidationError):
            Relation.from_pairs([(1, -2)])
        # The boundary values themselves are fine.
        edge = Relation.from_pairs([(0, 2**32 - 1)])
        assert edge.pairs() == [(0, 2**32 - 1)]

    def test_swap_flips_columns_and_order(self):
        relation = by_src([(1, 5), (2, 3)])
        swapped = rel.swap(relation)
        assert swapped.order is Order.BY_TGT
        assert set(swapped) == {(5, 1), (3, 2)}
        assert rel.swap(swapped).order is Order.BY_SRC

    def test_to_frozenset(self):
        assert Relation.from_pairs([(1, 2), (1, 2)]).to_frozenset() == {(1, 2)}


@BOTH_PATHS
class TestKernelsMatchOracle:
    @settings(max_examples=60, deadline=None)
    @given(PAIRS, PAIRS)
    def test_merge_join_matches_compose(self, pure_python, left, right):
        with forced_path(pure_python):
            result = rel.merge_join(by_tgt(left), by_src(right))
        assert result.to_set() == set_compose(set(left), set(right))

    @settings(max_examples=60, deadline=None)
    @given(PAIRS, PAIRS)
    def test_hash_join_matches_compose(self, pure_python, left, right):
        with forced_path(pure_python):
            result = rel.hash_join(
                Relation.from_pairs(left), Relation.from_pairs(right)
            )
        assert result.to_set() == set_compose(set(left), set(right))

    @settings(max_examples=60, deadline=None)
    @given(PAIRS, PAIRS)
    def test_compose_picks_algorithm_by_order(self, pure_python, left, right):
        with forced_path(pure_python):
            merged = rel.compose(by_tgt(left), by_src(right))
            hashed = rel.compose(
                Relation.from_pairs(left), Relation.from_pairs(right)
            )
        assert merged.to_set() == hashed.to_set() == set_compose(
            set(left), set(right)
        )

    @settings(max_examples=60, deadline=None)
    @given(PAIRS, PAIRS, PAIRS)
    def test_union_dedups_and_sorts(self, pure_python, a, b, c):
        with forced_path(pure_python):
            result = rel.union([Relation.from_pairs(p) for p in (a, b, c)])
        assert result.order is Order.BY_SRC
        assert result.to_set() == set(a) | set(b) | set(c)
        assert result.pairs() == sorted(result.to_set())

    def test_union_of_one_sorted_part_is_zero_copy(self, pure_python):
        """The single-disjunct fast path: already BY_SRC → returned as-is."""
        part = by_src([(1, 2), (3, 4)])
        with forced_path(pure_python):
            assert rel.union([part]) is part
            assert rel.union([part, Relation.empty()]) is part
            shuffled = rel.union([Relation.from_pairs([(3, 4), (1, 2), (3, 4)])])
        assert shuffled.order is Order.BY_SRC
        assert shuffled.pairs() == [(1, 2), (3, 4)]

    @settings(max_examples=60, deadline=None)
    @given(PAIRS)
    def test_dedup_sort_both_orders(self, pure_python, pairs):
        doubled = Relation.from_pairs(pairs + pairs)
        with forced_path(pure_python):
            sorted_src = rel.dedup_sort(doubled, Order.BY_SRC)
            sorted_tgt = rel.dedup_sort(doubled, Order.BY_TGT)
        assert sorted_src.pairs() == sorted(set(pairs))
        assert sorted_tgt.pairs() == sorted(
            set(pairs), key=lambda pair: (pair[1], pair[0])
        )

    @settings(max_examples=40, deadline=None)
    @given(graphs(), PAIRS, st.integers(0, 2))
    def test_transitive_fixpoint_matches_oracle(
        self, pure_python, graph, pairs, low
    ):
        pairs = [
            (a, b) for a, b in pairs
            if a < graph.node_count and b < graph.node_count
        ]
        with forced_path(pure_python):
            result = rel.transitive_fixpoint(
                graph.node_ids(), Relation.from_pairs(pairs), low
            )
        assert result.to_set() == set_transitive_fixpoint(
            graph, set(pairs), low
        )

    @settings(max_examples=40, deadline=None)
    @given(graphs(), PAIRS, st.integers(0, 2), st.integers(0, 3))
    def test_bounded_powers_matches_oracle(
        self, pure_python, graph, pairs, low, extra
    ):
        pairs = [
            (a, b) for a, b in pairs
            if a < graph.node_count and b < graph.node_count
        ]
        with forced_path(pure_python):
            result = rel.bounded_powers(
                graph.node_ids(), Relation.from_pairs(pairs), low, low + extra
            )
        assert result.to_set() == set_bounded_powers(
            graph, set(pairs), low, low + extra
        )

    def test_merge_join_validates_orders(self, pure_python):
        with forced_path(pure_python), pytest.raises(ExecutionError):
            rel.merge_join(by_src([(1, 2)]), by_src([(2, 3)]))

    def test_dedup_sort_rejects_none(self, pure_python):
        with forced_path(pure_python), pytest.raises(ValidationError):
            rel.dedup_sort(Relation.from_pairs([(1, 2)]), Order.NONE)


class TestIndexScanRelations:
    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10), label_paths(max_length=2))
    def test_scan_agrees_with_reference(self, graph, path):
        index = PathIndex.build(graph, k=2)
        scanned = index.scan(path)
        assert scanned.order is Order.BY_SRC
        assert scanned.pairs() == sorted(eval_label_path(graph, path))
        swapped = index.scan_swapped(path)
        assert swapped.order is Order.BY_TGT
        assert swapped.to_set() == scanned.to_set()

    @settings(max_examples=15, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_compressed_backend_scan_columns(self, graph):
        memory = PathIndex.build(graph, k=2)
        compressed = PathIndex.build(graph, k=2, backend="compressed")
        for path in memory.paths():
            assert compressed.scan(path) == memory.scan(path)


class TestEndToEndAgainstOracle:
    """Acceptance: every planner strategy equals the reference evaluator."""

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), rpq_asts(max_leaves=4))
    def test_all_strategies_match_eval_ast(self, graph, query):
        from repro.api import GraphDatabase

        expected = graph.pairs_to_names(eval_ast(graph, query))
        database = GraphDatabase(graph, k=2)
        for method in ("naive", "semi-naive", "minsupport", "minjoin"):
            result = database.query(query, method=method, use_cache=False)
            assert result.pairs == expected, method


def test_scan_columns_on_memory_tree():
    """The B+tree columnar prefix scan equals the tuple prefix scan."""
    from repro.storage.memtree import BPlusTree

    tree = BPlusTree(order=4)
    keys = [(p, s, t) for p in range(3) for s in range(5) for t in range(3)]
    for key in keys:
        tree.insert(key)
    for path_id in range(3):
        sources, targets = tree.prefix_scan_columns((path_id,))
        expected = [key for key, _ in tree.prefix_scan((path_id,))]
        assert list(zip(sources, targets)) == [(s, t) for _, s, t in expected]
    empty_a, empty_b = tree.prefix_scan_columns((99,))
    assert len(empty_a) == len(empty_b) == 0


class TestUnionInto:
    """The fused N-way gather kernel (:func:`repro.relation.union_into`)."""

    @BOTH_PATHS
    @settings(max_examples=40, deadline=None)
    @given(st.lists(PAIRS, max_size=5))
    def test_matches_pairwise_union(self, pure_python, parts):
        relations = [by_src(pairs) for pairs in parts]
        expected = sorted({pair for pairs in parts for pair in pairs})
        with forced_path(pure_python):
            fused = rel.union_into(relations)
        assert fused.order is Order.BY_SRC
        assert list(fused) == expected

    @BOTH_PATHS
    def test_accepts_unsorted_parts(self, pure_python):
        messy = Relation.from_pairs([(3, 1), (1, 2), (3, 1)], Order.NONE)
        with forced_path(pure_python):
            fused = rel.union_into([messy, by_src([(0, 9)])])
        assert list(fused) == [(0, 9), (1, 2), (3, 1)]

    @BOTH_PATHS
    def test_disjoint_skips_dedup_soundly(self, pure_python):
        """Disjoint inputs: the fast path equals the deduping path."""
        left = by_src([(0, 1), (0, 2), (2, 5)])
        right = by_src([(1, 1), (3, 0)])
        with forced_path(pure_python):
            fused = rel.union_into([left, right], disjoint=True)
            plain = rel.union_into([left, right])
        assert list(fused) == list(plain)

    @BOTH_PATHS
    def test_check_hook_catches_broken_disjoint_contract(self, pure_python):
        overlapping = [by_src([(1, 2)]), by_src([(1, 2), (3, 4)])]
        old = rel._CHECK_DISJOINT
        rel._CHECK_DISJOINT = True
        try:
            with forced_path(pure_python):
                with pytest.raises(ExecutionError, match="overlapping"):
                    rel.union_into(overlapping, disjoint=True)
        finally:
            rel._CHECK_DISJOINT = old

    @BOTH_PATHS
    def test_empty_and_single_part(self, pure_python):
        with forced_path(pure_python):
            assert len(rel.union_into([])) == 0
            assert len(rel.union_into([Relation.empty()])) == 0
            only = by_src([(1, 2), (3, 4)])
            # A single sorted part is returned as-is (zero copy).
            assert rel.union_into([only]) is only
            assert rel.union_into([only], disjoint=True) is only


class TestRestrictSrc:
    @BOTH_PATHS
    @settings(max_examples=40, deadline=None)
    @given(PAIRS, st.integers(0, 12))
    def test_matches_filter(self, pure_python, pairs, source):
        expected = [pair for pair in sorted(pairs) if pair[0] == source]
        with forced_path(pure_python):
            sliced = rel.restrict_src(by_src(pairs), source)
            unsorted = rel.restrict_src(
                Relation.from_pairs(pairs, Order.NONE), source
            )
        assert list(sliced) == expected
        assert sorted(unsorted) == expected
