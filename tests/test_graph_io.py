"""Tests for graph loading and saving."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import io
from repro.graph.examples import figure1_graph
from repro.graph.graph import Graph


@pytest.fixture()
def sample() -> Graph:
    return Graph.from_edges(
        [("ada", "knows", "zoe"), ("zoe", "worksFor", "ada"), ("bob", "knows", "ada")]
    )


class TestEdgelist:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.tsv"
        io.save_edgelist(sample, path)
        loaded = io.load_edgelist(path)
        assert list(loaded.edges()) == list(sample.edges())

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# header\n\nx\ta\ty\n")
        graph = io.load_edgelist(path)
        assert graph.edge_count == 1

    def test_two_column_requires_default_label(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("x\ty\n")
        with pytest.raises(GraphError):
            io.load_edgelist(path)
        graph = io.load_edgelist(path, default_label="link")
        assert graph.has_edge("x", "link", "y")

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("x\ta\ty\tz\textra\n")
        with pytest.raises(GraphError, match=":1"):
            io.load_edgelist(path)

    def test_custom_separator(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("x a y\n")
        graph = io.load_edgelist(path, separator=" ")
        assert graph.has_edge("x", "a", "y")

    def test_figure1_roundtrip(self, tmp_path):
        graph = figure1_graph()
        path = tmp_path / "fig1.tsv"
        io.save_edgelist(graph, path)
        assert list(io.load_edgelist(path).edges()) == list(graph.edges())


class TestJson:
    def test_roundtrip_preserves_isolated_nodes(self, sample, tmp_path):
        sample.add_node("hermit")
        path = tmp_path / "g.json"
        io.save_json(sample, path)
        loaded = io.load_json(path)
        assert loaded.has_node("hermit")
        assert list(loaded.edges()) == list(sample.edges())

    def test_rejects_non_graph_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(GraphError):
            io.load_json(path)

    def test_rejects_malformed_edge(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": [], "edges": [["x", "a"]]}')
        with pytest.raises(GraphError):
            io.load_json(path)


class TestCsv:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.csv"
        io.save_csv(sample, path)
        loaded = io.load_csv(path)
        assert list(loaded.edges()) == list(sample.edges())

    def test_no_header(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("x,a,y\n")
        graph = io.load_csv(path, has_header=False)
        assert graph.has_edge("x", "a", "y")

    def test_wrong_arity_raises(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("source,label\nx,a\n")
        with pytest.raises(GraphError):
            io.load_csv(path)


def test_from_triples_matches_graph_from_edges(sample):
    rebuilt = io.from_triples(sample.edges())
    assert list(rebuilt.edges()) == list(sample.edges())
