"""Tests for the GraphDatabase facade."""

from __future__ import annotations

import pytest

from repro.api import GraphDatabase
from repro.errors import ParseError, UnsupportedQueryError, ValidationError
from repro.graph.examples import FIGURE1_EDGES
from repro.graph.io import save_csv, save_edgelist, save_json
from repro.graph.graph import Graph
from repro.rpq.parser import parse


class TestConstruction:
    def test_from_edges(self):
        db = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        assert db.graph.node_count == 9
        assert db.k == 2

    def test_lazy_build(self):
        db = GraphDatabase(Graph.from_edges(FIGURE1_EDGES), k=1, build=False)
        assert db._index is None
        _ = db.index  # triggers the build
        assert db._index is not None

    def test_k_validated(self):
        with pytest.raises(ValidationError):
            GraphDatabase(Graph(), k=0)

    @pytest.mark.parametrize("saver, suffix", [
        (save_edgelist, "g.tsv"),
        (save_json, "g.json"),
        (save_csv, "g.csv"),
    ])
    def test_from_file(self, tmp_path, saver, suffix):
        graph = Graph.from_edges(FIGURE1_EDGES)
        path = tmp_path / suffix
        saver(graph, path)
        db = GraphDatabase.from_file(path, k=1)
        assert db.graph.edge_count == graph.edge_count

    def test_from_file_unknown_extension(self, tmp_path):
        path = tmp_path / "graph.xml"
        path.write_text("<graph/>")
        with pytest.raises(ValidationError):
            GraphDatabase.from_file(path)

    def test_disk_backend_context_manager(self, tmp_path):
        with GraphDatabase(
            Graph.from_edges(FIGURE1_EDGES),
            k=1,
            backend="disk",
            index_path=tmp_path / "index.db",
        ) as db:
            assert len(db.query("knows").pairs) == 9


class TestQueries:
    def test_query_returns_name_pairs(self, figure1_db):
        result = figure1_db.query("supervisor/^worksFor")
        assert result.pairs == frozenset({("kim", "sue")})
        assert ("kim", "sue") in result
        assert len(result) == 1

    def test_query_accepts_ast(self, figure1_db):
        result = figure1_db.query(parse("knows"))
        assert len(result.pairs) == 9

    def test_query_rejects_other_types(self, figure1_db):
        with pytest.raises(ValidationError):
            figure1_db.query(42)  # type: ignore[arg-type]

    def test_query_parse_error_propagates(self, figure1_db):
        with pytest.raises(ParseError):
            figure1_db.query("a//b")

    @pytest.mark.parametrize(
        "method",
        ["naive", "semi-naive", "minsupport", "minjoin",
         "automaton", "datalog", "reference"],
    )
    def test_all_methods_agree(self, figure1_db, method):
        expected = figure1_db.query("knows/knows/worksFor", method="reference")
        result = figure1_db.query("knows/knows/worksFor", method=method)
        assert result.pairs == expected.pairs

    def test_reachability_method_on_supported_query(self, figure1_db):
        result = figure1_db.query("knows*", method="reachability")
        expected = figure1_db.query("knows*", method="reference")
        assert result.pairs == expected.pairs

    def test_reachability_method_rejects_general_query(self, figure1_db):
        with pytest.raises(UnsupportedQueryError):
            figure1_db.query("knows/worksFor", method="reachability")

    def test_unknown_method_rejected(self, figure1_db):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            figure1_db.query("knows", method="alchemy")

    def test_exact_statistics_option(self, figure1_db):
        result = figure1_db.query(
            "knows/knows/worksFor", use_exact_statistics=True
        )
        expected = figure1_db.query("knows/knows/worksFor", method="reference")
        assert result.pairs == expected.pairs

    def test_report_attached_for_index_methods(self, figure1_db):
        result = figure1_db.query("knows/worksFor")
        assert result.report is not None
        assert result.seconds >= 0.0

    def test_star_query_via_fallback(self, figure1_db):
        result = figure1_db.query("(knows|worksFor)*", max_disjuncts=10)
        expected = figure1_db.query("(knows|worksFor)*", method="reference")
        assert result.pairs == expected.pairs


class TestExplainAndStats:
    def test_explain_contains_plan(self, figure1_db_k3):
        text = figure1_db_k3.explain("knows/knows/worksFor/knows/worksFor")
        assert "strategy: minsupport" in text
        assert "IndexScan" in text
        assert "join" in text

    def test_explain_shows_disjuncts(self, figure1_db):
        text = figure1_db.explain("(knows|worksFor)/knows")
        assert "disjuncts: 2" in text

    def test_selectivity_small_for_rare_path(self, figure1_db):
        rare = figure1_db.selectivity("supervisor/knows")
        common = figure1_db.selectivity("knows")
        assert 0.0 <= rare
        assert rare < common

    def test_selectivity_rejects_non_path(self, figure1_db):
        with pytest.raises(ValidationError):
            figure1_db.selectivity("a|b")

    def test_normal_form(self, figure1_db):
        normal = figure1_db.normal_form("knows{0,1}")
        assert normal.has_epsilon
        assert len(normal.paths) == 1

    def test_summary(self, figure1_db):
        summary = figure1_db.summary()
        assert summary.nodes == 9
        assert summary.edges == 16

    def test_histogram_and_exact_stats_available(self, figure1_db):
        assert figure1_db.histogram.k == 2
        assert figure1_db.exact_statistics.total_paths_k > 0

    def test_repr(self, figure1_db):
        assert "GraphDatabase(nodes=9" in repr(figure1_db)


class TestWitnessApi:
    def test_witness_for_answer_pair(self, figure1_db):
        witness = figure1_db.witness("kim", "sue", "supervisor/^worksFor")
        assert witness is not None
        assert witness.source == "kim" and witness.target == "sue"
        assert witness.length == 2

    def test_no_witness_for_non_answer(self, figure1_db):
        assert figure1_db.witness("sue", "kim", "supervisor") is None

    def test_witness_unknown_node(self, figure1_db):
        from repro.errors import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            figure1_db.witness("ghost", "kim", "knows")

    def test_every_answer_pair_has_a_witness(self, figure1_db):
        result = figure1_db.query("knows/worksFor")
        for source, target in result.pairs:
            witness = figure1_db.witness(source, target, "knows/worksFor")
            assert witness is not None
            assert witness.length == 2


class TestCompressedBackendApi:
    def test_compressed_database(self, figure1):
        # shards=1 pinned: the assertion reads the raw backend facade.
        db = GraphDatabase(figure1, k=2, backend="compressed", shards=1)
        assert db.index.backend_name == "compressed"
        expected = GraphDatabase(figure1, k=2).query("knows/knows").pairs
        assert db.query("knows/knows").pairs == expected


class TestRebuildRecoveryTaxonomy:
    """The partial-rebuild recovery path must not swallow the taxonomy.

    When ``rebuild_shards`` fails, the facade drops the index triple and
    closes the dead index.  A resilience-taxonomy exception raised by
    that ``close()`` (a deadline, a retryable fault) must propagate with
    the original rebuild failure attached as ``__context__`` — never be
    suppressed like an ordinary cleanup defect (regression for the
    broad handler in ``_rebuild_shards_locked``, rule ``error-taxonomy``).
    """

    def _sharded_db(self, figure1):
        db = GraphDatabase(figure1, k=2, shards=2)
        index = db.index  # force the build outside the locked section
        assert index.shard_count == 2
        return db, index

    def test_timeout_in_cleanup_close_propagates(self, figure1, monkeypatch):
        from repro.errors import QueryTimeoutError, StorageError

        db, index = self._sharded_db(figure1)

        def failing_rebuild(affected):
            raise StorageError("disk gone during partial rebuild")

        def timing_out_close():
            raise QueryTimeoutError("deadline expired while closing shards")

        monkeypatch.setattr(index, "rebuild_shards", failing_rebuild)
        monkeypatch.setattr(index, "close", timing_out_close)
        with pytest.raises(QueryTimeoutError) as excinfo:
            db._rebuild_shards_locked({0})
        assert isinstance(excinfo.value.__context__, StorageError)
        assert db._index is None  # triple dropped, next query rebuilds

    def test_plain_cleanup_defect_keeps_original_error(
        self, figure1, monkeypatch
    ):
        from repro.errors import StorageError

        db, index = self._sharded_db(figure1)

        def failing_rebuild(affected):
            raise StorageError("disk gone during partial rebuild")

        def broken_close():
            raise OSError("close() raced the handle")

        monkeypatch.setattr(index, "rebuild_shards", failing_rebuild)
        monkeypatch.setattr(index, "close", broken_close)
        with pytest.raises(StorageError):
            db._rebuild_shards_locked({0})

    def test_recovered_database_answers_again(self, figure1, monkeypatch):
        from repro.errors import StorageError

        db, index = self._sharded_db(figure1)
        expected = db.query("knows/knows", use_cache=False).pairs

        def failing_rebuild(affected):
            raise StorageError("disk gone during partial rebuild")

        monkeypatch.setattr(index, "rebuild_shards", failing_rebuild)
        with pytest.raises(StorageError):
            db._rebuild_shards_locked({0})
        assert db._index is None
        assert db.query("knows/knows", use_cache=False).pairs == expected
