"""Tests for the RPQ text parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.rpq import ast
from repro.rpq.parser import MAX_REPEAT_BOUND, parse, tokenize


class TestAtoms:
    def test_label(self):
        assert parse("knows") == ast.label("knows")

    def test_inverse_label(self):
        assert parse("^knows") == ast.Inverse(ast.label("knows"))

    def test_epsilon(self):
        assert parse("<eps>") == ast.Epsilon()

    def test_epsilon_unicode(self):
        assert parse("ε") == ast.Epsilon()

    def test_parentheses(self):
        assert parse("(knows)") == ast.label("knows")


class TestOperators:
    def test_concat(self):
        assert parse("a/b/c") == ast.concat(
            ast.label("a"), ast.label("b"), ast.label("c")
        )

    def test_union(self):
        assert parse("a|b|c") == ast.union(
            ast.label("a"), ast.label("b"), ast.label("c")
        )

    def test_union_binds_weaker_than_concat(self):
        assert parse("a/b|c") == ast.union(
            ast.concat(ast.label("a"), ast.label("b")), ast.label("c")
        )

    def test_parens_override_precedence(self):
        assert parse("a/(b|c)") == ast.concat(
            ast.label("a"), ast.union(ast.label("b"), ast.label("c"))
        )

    def test_postfix_binds_tighter_than_concat(self):
        assert parse("a/b*") == ast.concat(ast.label("a"), ast.star(ast.label("b")))

    def test_inverse_binds_tighter_than_concat(self):
        assert parse("^a/b") == ast.concat(
            ast.Inverse(ast.label("a")), ast.label("b")
        )

    def test_inverse_of_group(self):
        assert parse("^(a/b)") == ast.Inverse(
            ast.concat(ast.label("a"), ast.label("b"))
        )

    def test_double_inverse(self):
        assert parse("^^a") == ast.Inverse(ast.Inverse(ast.label("a")))


class TestRepetition:
    def test_star_plus_optional(self):
        assert parse("a*") == ast.star(ast.label("a"))
        assert parse("a+") == ast.repeat(ast.label("a"), 1, None)
        assert parse("a?") == ast.repeat(ast.label("a"), 0, 1)

    def test_bounds(self):
        assert parse("a{2,4}") == ast.repeat(ast.label("a"), 2, 4)

    def test_exact_bound(self):
        assert parse("a{3}") == ast.repeat(ast.label("a"), 3, 3)

    def test_open_bound(self):
        assert parse("a{2,}") == ast.repeat(ast.label("a"), 2, None)

    def test_stacked_postfix(self):
        assert parse("a{1,2}?") == ast.repeat(
            ast.repeat(ast.label("a"), 1, 2), 0, 1
        )

    def test_bound_on_group(self):
        assert parse("(a/b){2,3}") == ast.repeat(
            ast.concat(ast.label("a"), ast.label("b")), 2, 3
        )

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse("a{4,2}")

    def test_absurd_bound_rejected(self):
        with pytest.raises(ParseError):
            parse(f"a{{1,{MAX_REPEAT_BOUND + 1}}}")


class TestPaperQueries:
    """The queries appearing verbatim in the paper."""

    def test_supervisor_worksfor_inverse(self):
        assert parse("supervisor/^worksFor") == ast.concat(
            ast.label("supervisor"), ast.Inverse(ast.label("worksFor"))
        )

    def test_union_recursion(self):
        node = parse("(supervisor|worksFor|^worksFor){4,5}")
        assert node == ast.repeat(
            ast.union(
                ast.label("supervisor"),
                ast.label("worksFor"),
                ast.Inverse(ast.label("worksFor")),
            ),
            4,
            5,
        )

    def test_section4_example(self):
        """R = k ∘ (k ∘ w)^{2,4} ∘ w from Section 4."""
        node = parse("knows/(knows/worksFor){2,4}/worksFor")
        assert isinstance(node, ast.Concat)
        assert node.parts[0] == ast.label("knows")
        assert node.parts[1] == ast.repeat(
            ast.concat(ast.label("knows"), ast.label("worksFor")), 2, 4
        )
        assert node.parts[2] == ast.label("worksFor")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "   ", "/a", "a/", "a||b", "(a", "a)", "a{", "a{1", "a{,2}",
         "a b", "^", "a{x}", "a$"],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("a/$b")
        assert info.value.position == 2

    def test_trailing_junk_reported(self):
        with pytest.raises(ParseError, match="after end of query"):
            parse("a b")

    def test_non_string_rejected(self):
        with pytest.raises(ParseError):
            parse(None)  # type: ignore[arg-type]


class TestTokenizer:
    def test_whitespace_ignored(self):
        assert parse("a / b") == parse("a/b")

    def test_token_positions(self):
        tokens = tokenize("ab|c")
        assert [(t.kind, t.position) for t in tokens] == [
            ("ident", 0), ("|", 2), ("ident", 3),
        ]

    def test_identifiers_with_digits_and_underscores(self):
        assert parse("label_2") == ast.label("label_2")
