"""Fault injection, deadlines, retries, and degraded answers.

The headline properties (hypothesis):

* under ANY generated fault plan, every query either raises a *typed*
  :class:`~repro.errors.ReproError` or returns exactly the unsharded
  disarmed oracle answer — chaos never produces a silently wrong
  answer, and (on a fake clock) never hangs;
* degraded answers are always subsets of the oracle and a result that
  lost pairs is always flagged ``partial``.

Around them, unit tests pin the deterministic pieces: the
``REPRO_FAULTS`` grammar, backoff arithmetic, deadline behavior,
times-capped replayability, crash-safe index writes, and artifact
store eviction.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import prepared as prepared_module
from repro.engine.prepared import PlanArtifactStore
from repro.errors import (
    QueryTimeoutError,
    ReproError,
    ShardUnavailableError,
    StorageError,
    TransientStorageError,
    ValidationError,
)
from repro.faults import (
    CORRUPT_POINTS,
    CRASH_POINTS,
    INJECTION_POINTS,
    Deadline,
    FakeClock,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    armed,
    disarmed,
    plan_from_env,
    retry_call,
)
from repro.graph.generators import advogato_like
from repro.indexes.pathindex import PathIndex

from repro.api import GraphDatabase  # isort: skip

#: Small fixed graph: cheap enough to index per hypothesis example,
#: rich enough that every shard of a 4-way split holds real paths.
GRAPH = advogato_like(nodes=24, edges=70, seed=5)

#: Queries covering scan, join, inverse, union, and Kleene closure —
#: each engine path the resilience machinery is threaded through.
QUERIES = (
    "master/journeyer",
    "^master/journeyer",
    "master|apprentice/observer",
    "master*",
)


@functools.lru_cache(maxsize=None)
def oracle(query: str) -> frozenset:
    """The disarmed, unsharded ground-truth answer."""
    with disarmed():
        db = GraphDatabase(GRAPH, k=2, shards=1)
        return db.query(query, use_cache=False).pairs


def build_db(shards: int) -> GraphDatabase:
    """A sharded database over the fixed graph (serial build)."""
    return GraphDatabase(GRAPH, k=2, shards=shards, shard_build_workers=1)


# -- hypothesis strategies -----------------------------------------------------


@st.composite
def fault_rules(draw) -> FaultRule:
    point = draw(st.sampled_from(INJECTION_POINTS))
    kinds = ["transient", "latency"]
    if point in CRASH_POINTS:
        kinds.append("crash")
    if point in CORRUPT_POINTS:
        kinds.append("corrupt")
    return FaultRule(
        point=point,
        kind=draw(st.sampled_from(kinds)),
        rate=draw(st.sampled_from([0.0, 0.3, 1.0])),
        times=draw(st.sampled_from([None, 1, 2])),
        delay_ms=draw(st.sampled_from([0.0, 5.0, 50.0])),
        shard=draw(st.sampled_from([None, 0, 1])),
    )


fault_plans = st.builds(
    lambda rules, seed: FaultPlan(rules, seed=seed, clock=FakeClock()),
    st.lists(fault_rules(), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=2**16),
)


# -- the headline properties ---------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(plan=fault_plans, shards=st.sampled_from([1, 2, 4]))
def test_chaos_is_typed_or_exact(plan: FaultPlan, shards: int) -> None:
    """Typed error or the oracle answer — never a silent wrong answer.

    Build AND queries run under the armed plan, so build-time faults
    (pool crashes, per-shard transients) are exercised too.  The fake
    clock turns latency faults and retry backoff into bookkeeping, so
    the property also shows no plan can hang the engine.
    """
    with armed(plan):
        try:
            db = build_db(shards)
            for query in QUERIES:
                result = db.query(query, use_cache=False)
                assert result.pairs == oracle(query)
                assert result.report is not None and not result.report.partial
        except ReproError:
            pass  # typed, named failure: an allowed outcome


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([2, 4]),
    down=st.integers(min_value=0, max_value=3),
)
def test_degraded_is_flagged_subset(seed: int, shards: int, down: int) -> None:
    """With one shard permanently down, degraded answers are flagged subsets."""
    down %= shards
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient", shard=down)],
        seed=seed,
        clock=FakeClock(),
    )
    with disarmed():
        db = build_db(shards)
    with armed(plan):
        for query in QUERIES:
            result = db.query(query, degraded=True, use_cache=False)
            truth = oracle(query)
            assert result.pairs <= truth
            report = result.report
            assert report is not None
            assert report.partial == (report.shards_failed > 0)
            if result.pairs != truth:
                assert report.partial
        assert plan.fired > 0, "the downed shard was never even scanned"


def test_strict_mode_raises_on_downed_shard() -> None:
    """Without the degraded opt-in, a downed shard is a typed failure."""
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient")], clock=FakeClock()
    )
    with disarmed():
        db = build_db(2)
    with armed(plan):
        with pytest.raises(ShardUnavailableError) as info:
            db.query("master/journeyer", use_cache=False)
    assert info.value.shard is not None


def test_transient_faults_recover_via_retry() -> None:
    """Every slice fails exactly once; retries recover the exact answer."""
    clock = FakeClock()
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient", times=1)], clock=clock
    )
    with disarmed():
        db = build_db(4)
    with armed(plan):
        result = db.query("master/journeyer", use_cache=False)
    assert result.pairs == oracle("master/journeyer")
    assert plan.fired > 0
    assert clock.sleeps, "recovery must have gone through backoff sleeps"


def test_pool_build_failure_falls_back_and_recovers() -> None:
    """A transient at the pool stage falls back to the serial build.

    ``times=1`` makes the pool submission fail once and each serial
    per-shard attempt fail once — the retry loop absorbs the latter,
    so the build completes and answers stay exact.
    """
    plan = FaultPlan(
        [FaultRule("shard.build", "transient", times=1)], clock=FakeClock()
    )
    with armed(plan):
        db = GraphDatabase(GRAPH, k=2, shards=4, shard_build_workers=2)
        result = db.query("master/journeyer", use_cache=False)
    assert result.pairs == oracle("master/journeyer")
    assert plan.fired >= 2  # pool stage + at least one serial shard


def test_build_raises_shard_unavailable_when_permanent() -> None:
    plan = FaultPlan(
        [FaultRule("shard.build", "transient", shard=1)], clock=FakeClock()
    )
    with armed(plan):
        with pytest.raises(ShardUnavailableError) as info:
            build_db(2)
    assert info.value.shard == 1


# -- deadlines and timeouts ----------------------------------------------------


def test_deadline_validates_and_expires() -> None:
    clock = FakeClock()
    with pytest.raises(ValidationError):
        Deadline(0.0, clock=clock)
    deadline = Deadline(100.0, clock=clock)
    assert not deadline.expired()
    deadline.check()  # within budget: no raise
    clock.advance(0.2)
    assert deadline.expired()
    with pytest.raises(QueryTimeoutError):
        deadline.check()


def test_query_timeout_is_typed_and_prompt() -> None:
    """An absurdly small budget fails fast with the typed error."""
    with disarmed():
        db = build_db(2)
        with pytest.raises(QueryTimeoutError):
            db.query("master/journeyer", timeout_ms=1e-6, use_cache=False)


def test_latency_faults_trip_the_deadline() -> None:
    """Injected shard latency on a fake clock exceeds a virtual deadline."""
    plan = FaultPlan(
        [FaultRule("shard.scan", "latency", delay_ms=50.0)],
        clock=FakeClock(),
    )
    with disarmed():
        db = build_db(4)
    with armed(plan):
        with pytest.raises(QueryTimeoutError):
            db.query("master/journeyer", timeout_ms=10.0, use_cache=False)


def test_timeout_rejected_for_baselines() -> None:
    with disarmed():
        db = build_db(1)
        with pytest.raises(ValidationError):
            db.query("master", method="reference", timeout_ms=100.0)
        with pytest.raises(ValidationError):
            db.query("master", method="automaton", degraded=True)


# -- retry policy --------------------------------------------------------------


def test_retry_policy_backoff_caps() -> None:
    policy = RetryPolicy(
        attempts=6, base_delay_ms=10.0, cap_delay_ms=50.0, multiplier=2.0
    )
    assert [policy.delay_ms(i) for i in range(5)] == [10, 20, 40, 50, 50]
    with pytest.raises(ValidationError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValidationError):
        RetryPolicy(multiplier=0.5)


def test_retry_call_recovers_and_records_backoff() -> None:
    clock = FakeClock()
    failures = iter([True, True, False])

    def flaky() -> str:
        if next(failures):
            raise TransientStorageError("flap")
        return "ok"

    with armed(FaultPlan([], clock=clock)):
        assert retry_call(flaky) == "ok"
    assert clock.sleeps == [0.01, 0.02]


def test_retry_call_propagates_permanent_errors_immediately() -> None:
    calls = 0

    def permanent() -> None:
        nonlocal calls
        calls += 1
        raise StorageError("torn page")

    with armed(FaultPlan([], clock=FakeClock())):
        with pytest.raises(StorageError):
            retry_call(permanent)
    assert calls == 1  # permanent errors are not retried


def test_retry_call_exhausts_then_raises() -> None:
    clock = FakeClock()

    def always() -> None:
        raise TransientStorageError("down")

    with armed(FaultPlan([], clock=clock)):
        with pytest.raises(TransientStorageError):
            retry_call(always, policy=RetryPolicy(attempts=3))
    assert len(clock.sleeps) == 2


def test_retry_call_respects_deadline() -> None:
    clock = FakeClock()

    def always() -> None:
        raise TransientStorageError("down")

    with armed(FaultPlan([], clock=clock)):
        deadline = Deadline(1000.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(QueryTimeoutError):
            retry_call(always, deadline=deadline)


# -- plan determinism ----------------------------------------------------------

def test_plan_replays_exactly_after_reset() -> None:
    rules = [FaultRule("shard.scan", "transient", rate=0.5, times=2)]

    def run(plan: FaultPlan) -> tuple[int, int]:
        successes = errors = 0
        for shard in range(8):
            try:
                plan.fire("shard.scan", None, {"shard": shard})
                successes += 1
            except TransientStorageError:
                errors += 1
        return successes, errors

    plan = FaultPlan(rules, seed=99, clock=FakeClock())
    first = run(plan)
    plan.reset()
    assert run(plan) == first
    assert first[1] > 0


def test_times_caps_per_context() -> None:
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient", times=1)], clock=FakeClock()
    )
    for shard in range(2):
        with pytest.raises(TransientStorageError):
            plan.fire("shard.scan", None, {"shard": shard})
        plan.fire("shard.scan", None, {"shard": shard})  # capped: no raise
    assert plan.fired == 2


# -- REPRO_FAULTS grammar ------------------------------------------------------


def test_plan_from_env_full_grammar() -> None:
    plan = plan_from_env(
        "seed=7;shard.scan=transient@0.5,times=1,shard=2;"
        "gather.merge=latency,delay_ms=5"
    )
    assert plan is not None and plan.seed == 7
    first, second = plan.rules
    assert (first.point, first.kind, first.rate) == ("shard.scan", "transient", 0.5)
    assert (first.times, first.shard) == (1, 2)
    assert (second.point, second.kind, second.delay_ms) == (
        "gather.merge",
        "latency",
        5.0,
    )


def test_plan_from_env_empty_means_disarmed() -> None:
    assert plan_from_env("") is None
    assert plan_from_env("   ") is None


@pytest.mark.parametrize(
    "spec",
    [
        "garbage",
        "shard.scan=explode",
        "nowhere=transient",
        "shard.scan=transient@lots",
        "shard.scan=transient,times=0",
        "shard.scan=transient,color=red",
        "shard.scan=crash,shard",
        "gather.merge=crash",
        "shard.scan=corrupt",
        "seed=3",
    ],
)
def test_plan_from_env_rejects_garbage(spec: str) -> None:
    with pytest.raises(ValidationError):
        plan_from_env(spec)


# -- disk backend: corruption and crash-safe writes ----------------------------


def test_disk_corruption_is_a_typed_error(tmp_path) -> None:
    """A corrupted page surfaces as StorageError, never a wrong answer."""
    with disarmed():
        db = GraphDatabase(
            GRAPH, k=2, backend="disk", index_path=tmp_path / "g.idx"
        )
    plan = FaultPlan(
        [FaultRule("storage.read_page", "corrupt")], clock=FakeClock()
    )
    # The first query faults in index pages from disk; every one comes
    # back torn.  The guaranteed-detectable corruption (the node type
    # byte's high bit) must surface as a typed StorageError.
    with armed(plan):
        with pytest.raises(StorageError):
            db.query("master/journeyer", use_cache=False)
    assert plan.fired > 0
    # Disarmed and re-opened, the on-disk index itself is unharmed.
    with disarmed():
        healthy = GraphDatabase(
            GRAPH, k=2, backend="disk", index_path=tmp_path / "g.idx"
        )
        result = healthy.query("master/journeyer", use_cache=False)
    assert result.pairs == oracle("master/journeyer")


def test_bulk_load_failure_preserves_previous_index(tmp_path) -> None:
    """A build that dies mid-write leaves the old index fully readable."""
    with disarmed():
        path = tmp_path / "index.db"
        index = PathIndex.build(GRAPH, k=1, backend="disk", path=path)
        before = index.entry_count
        assert before > 0

        def exploding():
            yield (0, 1, 2)
            raise RuntimeError("power loss")

        with pytest.raises(RuntimeError):
            index._backend.bulk_load(exploding())
        assert not path.with_name(path.name + ".build").exists()
        assert index.entry_count == before  # old tree still serves


def test_save_catalog_is_atomic(tmp_path) -> None:
    with disarmed():
        index_path = tmp_path / "index.db"
        catalog = tmp_path / "catalog.json"
        index = PathIndex.build(GRAPH, k=1, backend="disk", path=index_path)
        index.save_catalog(catalog)
        assert catalog.exists()
        assert not catalog.with_name(catalog.name + ".tmp").exists()
        reopened = PathIndex.open_disk(GRAPH, index_path, catalog)
        assert reopened.counts_by_path() == index.counts_by_path()


# -- plan-artifact store: fail-open loads and bounded growth -------------------


def test_artifact_store_fails_open_under_faults(tmp_path) -> None:
    store = PlanArtifactStore(tmp_path / "plans.json")
    with disarmed():
        store.open("fp")
        store.store("key", {"plan": 1})
    plan = FaultPlan(
        [FaultRule("prepared.artifact_load", "transient")], clock=FakeClock()
    )
    with armed(plan):
        assert store.load("key") is None  # degrade to re-planning
        assert store.open("fp") == 0  # unreadable file adopts nothing
    assert plan.fired == 2


def test_artifact_store_evicts_oldest(tmp_path, monkeypatch) -> None:
    monkeypatch.setattr(prepared_module, "ARTIFACT_STORE_MAX", 3)
    store = PlanArtifactStore(tmp_path / "plans.json")
    with disarmed():
        store.open("fp")
        for number in range(5):
            store.store(f"key{number}", {"plan": number})
        assert store.entry_count() == 3
        assert store.load("key0") is None and store.load("key1") is None
        assert store.load("key4") == {"plan": 4}
        # Re-storing refreshes age: key2 survives the next insertion.
        store.store("key2", {"plan": 22})
        store.store("key5", {"plan": 5})
        assert store.load("key2") == {"plan": 22}
        assert store.load("key3") is None
        # A reopen adopts at most the cap from disk.
        fresh = PlanArtifactStore(tmp_path / "plans.json")
        assert fresh.open("fp") <= 3


# -- degraded answers through the service layer --------------------------------


def test_degraded_counters_surface_in_cache_info() -> None:
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient", shard=0)], clock=FakeClock()
    )
    with disarmed():
        db = build_db(2)
    with armed(plan):
        result = db.query("master/journeyer", degraded=True, use_cache=False)
    assert result.report is not None and result.report.partial
    assert db.cache_info()["shards_failed"] > 0


def test_partial_answers_are_never_cached() -> None:
    plan = FaultPlan(
        [FaultRule("shard.scan", "transient", shard=0)], clock=FakeClock()
    )
    with disarmed():
        db = build_db(2)
    with armed(plan):
        degraded = db.query("master/journeyer", degraded=True)
        assert degraded.report is not None and degraded.report.partial
    with disarmed():
        healed = db.query("master/journeyer")
    assert not healed.cached, "a partial answer must not be served from cache"
    assert healed.pairs == oracle("master/journeyer")
