"""Tests for DFA determinization, minimization and evaluation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Step
from repro.rpq.automaton import compile_ast
from repro.rpq.dfa import compile_dfa, determinize, evaluate, minimize
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast

from tests.strategies import LABELS, graphs, rpq_asts

WORDS = st.lists(
    st.builds(Step, st.sampled_from(LABELS), st.booleans()),
    max_size=6,
).map(tuple)


def _nfa_accepts(nfa, word) -> bool:
    states = nfa.eps_closure(nfa.start)
    for step in word:
        raw = frozenset(
            target
            for state in states
            for target in nfa.step_targets(state, step)
        )
        states = nfa.eps_closure_set(raw)
        if not states:
            return False
    return nfa.accept in states


class TestDeterminize:
    def test_simple_label(self):
        dfa = determinize(compile_ast(parse("a")))
        assert not dfa.accepts_empty()
        assert dfa.accepts((Step("a"),))
        assert not dfa.accepts((Step("a"), Step("a")))
        assert not dfa.accepts((Step("b"),))

    def test_star_accepts_empty_and_repeats(self):
        dfa = determinize(compile_ast(parse("a*")))
        assert dfa.accepts_empty()
        assert dfa.accepts((Step("a"),) * 5)

    def test_union(self):
        dfa = determinize(compile_ast(parse("a|b")))
        assert dfa.accepts((Step("a"),))
        assert dfa.accepts((Step("b"),))
        assert not dfa.accepts((Step("c"),))

    def test_inverse_steps_are_symbols(self):
        dfa = determinize(compile_ast(parse("^a/b")))
        assert dfa.accepts((Step("a", inverse=True), Step("b")))
        assert not dfa.accepts((Step("a"), Step("b")))

    def test_deterministic_transitions(self):
        dfa = determinize(compile_ast(parse("(a|a/a){1,3}")))
        for state, by_step in dfa.transitions.items():
            assert len(set(by_step)) == len(by_step)
            assert state < dfa.state_count

    @settings(max_examples=80, deadline=None)
    @given(rpq_asts(max_leaves=4, allow_star=True), WORDS)
    def test_property_same_language_as_nfa(self, node, word):
        nfa = compile_ast(node)
        dfa = determinize(nfa)
        assert dfa.accepts(word) == _nfa_accepts(nfa, word)


class TestMinimize:
    def test_never_grows(self):
        for text in ["a", "a|b", "(a/b){1,3}", "a*/b", "(a|b|c){2,4}"]:
            dfa = determinize(compile_ast(parse(text)))
            assert minimize(dfa).state_count <= dfa.state_count

    def test_merges_redundant_states(self):
        # a|a/a|a/a/a determinizes with several final states that
        # minimize to fewer.
        dfa = determinize(compile_ast(parse("a{1,3}")))
        minimal = minimize(dfa)
        assert minimal.state_count <= dfa.state_count
        assert minimal.accepts((Step("a"),))
        assert minimal.accepts((Step("a"),) * 3)
        assert not minimal.accepts((Step("a"),) * 4)

    def test_universal_star_minimizes_to_one_state(self):
        dfa = minimize(determinize(compile_ast(parse("(a|b|c|^a|^b|^c)*"))))
        assert dfa.state_count == 1
        assert dfa.accepts_empty()

    @settings(max_examples=80, deadline=None)
    @given(rpq_asts(max_leaves=4, allow_star=True), WORDS)
    def test_property_language_preserved(self, node, word):
        dfa = determinize(compile_ast(node))
        assert minimize(dfa).accepts(word) == dfa.accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(rpq_asts(max_leaves=4, allow_star=True))
    def test_property_minimize_idempotent(self, node):
        minimal = minimize(determinize(compile_ast(node)))
        again = minimize(minimal)
        assert again.state_count == minimal.state_count


class TestEvaluation:
    def test_figure1_example(self, figure1):
        pairs = evaluate(figure1, parse("supervisor/^worksFor"))
        assert figure1.pairs_to_names(pairs) == {("kim", "sue")}

    def test_empty_word_pairs(self, figure1):
        pairs = evaluate(figure1, parse("knows{0,1}"))
        for node in figure1.node_ids():
            assert (node, node) in pairs

    @settings(max_examples=50, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), rpq_asts(max_leaves=3))
    def test_property_matches_reference(self, graph, node):
        assert evaluate(graph, node) == eval_ast(graph, node)

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=8),
           rpq_asts(max_leaves=2, allow_star=True))
    def test_property_matches_reference_with_star(self, graph, node):
        assert evaluate(graph, node) == eval_ast(graph, node)

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10), rpq_asts(max_leaves=3))
    def test_dfa_agrees_with_nfa_baseline(self, graph, node):
        from repro.baselines import automaton_eval

        assert evaluate(graph, node) == automaton_eval.evaluate(graph, node)


class TestCompileDfa:
    def test_minimized_by_default(self):
        dfa = compile_dfa(parse("a{1,3}"))
        unminimized = compile_dfa(parse("a{1,3}"), minimized=False)
        assert dfa.state_count <= unminimized.state_count

    def test_evaluate_from(self, figure1):
        from repro.rpq.dfa import evaluate_from

        dfa = compile_dfa(parse("knows/worksFor"))
        kim = figure1.node_id("kim")
        expected = {
            b for a, b in eval_ast(figure1, parse("knows/worksFor")) if a == kim
        }
        assert evaluate_from(figure1, dfa, kim) == expected
