"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.examples import figure1_graph
from repro.graph.io import save_edgelist


@pytest.fixture()
def fig1_file(tmp_path):
    path = tmp_path / "fig1.tsv"
    save_edgelist(figure1_graph(), path)
    return str(path)


class TestStats:
    def test_synthetic(self, capsys):
        assert main(["stats", "--synthetic", "small", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "nodes:  120" in out
        assert "index:" in out

    def test_graph_file(self, capsys, fig1_file):
        assert main(["stats", "--graph", fig1_file, "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "nodes:  9" in out


class TestQuery:
    def test_query_prints_pairs(self, capsys, fig1_file):
        code = main(["query", "--graph", fig1_file, "-k", "2",
                     "supervisor/^worksFor"])
        assert code == 0
        captured = capsys.readouterr()
        assert "kim\tsue" in captured.out
        assert "1 pairs" in captured.err

    def test_query_method_option(self, capsys, fig1_file):
        code = main(["query", "--graph", fig1_file, "-k", "1",
                     "--method", "naive", "knows/worksFor"])
        assert code == 0

    def test_parse_error_is_reported_not_raised(self, capsys, fig1_file):
        code = main(["query", "--graph", fig1_file, "a//b"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_plan(self, capsys, fig1_file):
        code = main(["explain", "--graph", fig1_file, "-k", "2",
                     "--method", "minjoin", "knows/knows/worksFor"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IndexScan" in out
        assert "minjoin" in out


class TestExperiments:
    def test_figure2_smoke(self, capsys):
        code = main(["figure2", "--scale", "small", "--repeats", "1",
                     "--ks", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "panel k=1" in out and "panel k=2" in out
        assert "Q8" in out
        assert "trend" in out

    def test_compare_datalog_smoke(self, capsys):
        code = main(["compare-datalog", "--scale", "small", "-k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Datalog" in out
        assert "geomean" in out

    def test_index_build_smoke(self, capsys):
        code = main(["index-build", "--scale", "small", "--ks", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_histogram_smoke(self, capsys):
        code = main(["histogram", "--scale", "small", "-k", "2"])
        assert code == 0
        assert "buckets" in capsys.readouterr().out


class TestParser:
    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
