"""Per-shard statistics and skew-aware scatter planning.

Two properties govern the subsystem:

* **merge exactness** — summing per-shard exact counts reproduces the
  global catalog on every path (the hypothesis suite pins it on both
  kernel paths at shards 1/2/4), so the merged view can replace a
  global recount and the statistics "wire format" (per-shard count
  dictionaries) loses nothing.
* **answer transparency** — shard pruning and per-shard re-planning
  are pure performance decisions: ``shards=N`` answers stay identical
  to the ``shards=1`` oracle with both features forced on (eager
  divergence threshold), including on chains whose every hop crosses
  a shard boundary.

Around those sit the observables (pruned counts on
``ExecutionReport`` / ``cache_info``), the cache-invalidation
contracts, and the ``REPRO_DEFAULT_SHARDS`` knob.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphDatabase, default_shard_count
from repro.errors import ValidationError
from repro.graph.generators import advogato_like
from repro.graph.graph import Graph, LabelPath
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import (
    ExactStatistics,
    ShardStatistics,
    merge_shard_counts,
)
from repro.rpq.semantics import eval_query
from repro.sharding import ShardedGraph, shard_of

from tests.strategies import graphs
from tests.test_sharding import BOTH_PATHS, forced_path

STRATEGIES = ("naive", "semi-naive", "minsupport", "minjoin")


def interleaved_chain(length: int, shards: int, first_label: str = "a") -> Graph:
    """A chain whose consecutive vertices never share a shard.

    The first edge carries ``first_label``; the rest carry ``a``.
    """
    ids: list[int] = []
    lane, candidate = 0, 0
    while len(ids) < length + 1:
        if shard_of(candidate, shards) == lane % shards:
            ids.append(candidate)
            lane += 1
        candidate += 1
    graph = Graph()
    for node in range(max(ids) + 1):
        graph.add_node(f"n{node}")
    for hop, (left, right) in enumerate(zip(ids, ids[1:])):
        label = first_label if hop == 0 else "a"
        graph.add_edge(f"n{left}", label, f"n{right}")
    return graph


# -- the statistics merge -----------------------------------------------------


class TestShardStatistics:
    def test_merged_statistics_agree_with_global_exact(self):
        graph = advogato_like(nodes=70, edges=350, seed=3)
        plain = PathIndex.build(graph, 2)
        sharded = ShardedGraph.build(graph, 2, shards=4)
        merged = sharded.merged_statistics()
        reference = ExactStatistics.from_index(plain, graph)
        assert merged.total_paths_k == reference.total_paths_k
        for path in plain.paths():
            assert merged.estimated_count(path) == reference.estimated_count(path)
            assert merged.selectivity(path) == reference.selectivity(path)

    def test_shard_statistics_sum_to_catalog(self):
        graph = advogato_like(nodes=60, edges=300, seed=9)
        sharded = ShardedGraph.build(graph, 2, shards=3)
        per_shard = [sharded.shard_statistics(shard) for shard in range(3)]
        for path in sharded.paths():
            total = sum(stats.exact_count(path) for stats in per_shard)
            assert total == sharded.count(path)

    def test_provider_matches_global_flavor(self):
        stats = ShardStatistics(0, {"a": 4}, k=1, total_paths_k=10)
        histogram = EquiDepthHistogram.from_counts({"a": 4}, 1, 10)
        exact = ExactStatistics({"a": 4}, 1, 10)
        assert stats.provider(histogram) is stats.histogram
        assert stats.provider(exact) is stats.exact
        path = LabelPath.of("a")
        assert stats.exact_count(path) == 4
        assert stats.estimated_count(path) == stats.histogram.estimated_count(path)

    def test_merge_shard_counts(self):
        merged = merge_shard_counts([{"a": 1, "b": 2}, {"b": 3}, {}])
        assert merged == {"a": 1, "b": 5}

    def test_shard_statistics_validates_shard(self):
        graph = advogato_like(nodes=20, edges=60, seed=1)
        sharded = ShardedGraph.build(graph, 2, shards=2)
        with pytest.raises(ValidationError):
            sharded.shard_statistics(2)

    @BOTH_PATHS
    @settings(max_examples=30, deadline=None)
    @given(
        graph=graphs(max_nodes=7, max_edges=14),
        shards=st.sampled_from((1, 2, 4)),
    )
    def test_merged_per_shard_statistics_equal_global(
        self, pure_python, graph, shards
    ):
        """Per-shard counts sum to the unsharded catalog on every path."""
        with forced_path(pure_python):
            plain = PathIndex.build(graph, 2)
            sharded = ShardedGraph.build(graph, 2, shards=shards)
            reference = ExactStatistics.from_index(plain, graph)
            merged = sharded.merged_statistics()
            per_shard = [sharded.shard_statistics(shard) for shard in range(shards)]
            for path in plain.paths():
                expected = reference.estimated_count(path)
                assert merged.estimated_count(path) == expected
                assert sum(stats.exact_count(path) for stats in per_shard) == expected


class TestStatisticsCaches:
    def test_counts_by_path_is_cached_and_copied(self):
        graph = advogato_like(nodes=40, edges=160, seed=5)
        sharded = ShardedGraph.build(graph, 2, shards=3)
        first = sharded.counts_by_path()
        assert sharded._merged_counts is not None
        # The cache survives; callers get copies they cannot corrupt.
        first.clear()
        assert sharded.counts_by_path() != {}

    def test_rebuild_shards_invalidates_statistics_caches(self):
        graph = advogato_like(
            nodes=40, edges=160, seed=5, labels=("a", "b"), label_weights=None
        )
        sharded = ShardedGraph.build(graph, 2, shards=3)
        sharded.counts_by_path()  # warm the merge cache
        stats_before = sharded.shard_statistics(0)
        sharded.replan_cache["sentinel"] = object()
        graph.add_edge("n0", "a", "n1") or graph.remove_edge("n0", "a", "n1")
        sharded.rebuild_shards(range(3))
        after = sharded.counts_by_path()
        assert after == merge_shard_counts(
            [index.counts_by_path() for index in sharded.shard_indexes]
        )
        assert "sentinel" not in sharded.replan_cache
        # Shard statistics are rebuilt lazily against the new catalogs.
        assert sharded.shard_statistics(0) is not stats_before


# -- pruning exactness --------------------------------------------------------


class TestShardPruning:
    def test_pruning_never_drops_answers_on_cross_shard_chain(self):
        """Every hop crosses shards; the rare-led head makes all but
        one shard provably empty — the answer must survive pruning."""
        shards = 2
        graph = interleaved_chain(5, shards, first_label="r")
        database = GraphDatabase(graph, k=2, shards=shards)
        oracle = GraphDatabase(graph, k=2, shards=1)
        for query in ("r/a/a", "r/a/a/a/a", "r/a{1,3}"):
            answer = database.query(query, use_cache=False)
            expected = oracle.query(query, use_cache=False)
            assert answer.pairs == expected.pairs, query
            assert answer.pairs == frozenset(eval_query(graph, query)), query
            assert answer.report.shards_pruned >= 1, query
        # And with every hop crossing shards, the chain's start still
        # reaches three hops out — the pruned shards contributed nothing.
        assert len(database.query("r/a/a", use_cache=False).pairs) == 1

    def test_pruned_counts_surface_on_report_and_cache_info(self):
        shards = 4
        graph = interleaved_chain(4, shards, first_label="r")
        database = GraphDatabase(graph, k=2, shards=shards)
        result = database.query("r/a/a", use_cache=False)
        report = result.report
        assert report.shards_pruned >= 1
        assert report.disjuncts_pruned >= report.shards_pruned
        assert report.shards_scanned >= 1
        info = database.cache_info()
        assert info["shards_pruned"] == report.shards_pruned
        assert info["disjuncts_pruned"] == report.disjuncts_pruned
        assert info["shards_scanned"] == report.shards_scanned
        batch = database.query_batch(["r/a", "r/a/a"], use_cache=False)
        assert all(item.pairs is not None for item in batch)
        grown = database.cache_info()
        assert grown["shards_pruned"] >= info["shards_pruned"]

    def test_pruning_knob_disables_skipping(self):
        shards = 4
        graph = interleaved_chain(4, shards, first_label="r")
        database = GraphDatabase(graph, k=2, shards=shards)
        database.index.scatter_pruning = False
        database.index.replan_divergence = None
        result = database.query("r/a/a", use_cache=False)
        assert result.report.shards_pruned == 0
        # Every shard execution is still counted with the features off.
        assert result.report.shards_scanned == shards
        assert result.pairs == frozenset(eval_query(graph, "r/a/a"))

    def test_knobs_survive_full_rebuilds(self):
        graph = interleaved_chain(4, 2, first_label="r")
        database = GraphDatabase(graph, k=2, shards=2)
        database.index.scatter_pruning = False
        database.index.replan_divergence = None
        # An unseen label forces a full rebuild (new ShardedGraph)...
        assert database.add_edge("n0", "brandnew", "n1") is not None
        assert database.index.scatter_pruning is False
        assert database.index.replan_divergence is None
        # ...and an explicit rebuild preserves them too.
        database.build_index()
        assert database.index.scatter_pruning is False
        assert database.index.replan_divergence is None

    def test_empty_star_operand_survives_all_shard_pruning(self):
        """A star whose operand label does not exist: every shard slice
        prunes, and the closure must still produce the identity."""
        graph = interleaved_chain(3, 2)
        database = GraphDatabase(graph, k=2, shards=2)
        oracle = GraphDatabase(graph, k=2, shards=1)
        assert (
            database.query("zz*", use_cache=False).pairs
            == oracle.query("zz*", use_cache=False).pairs
        )


# -- re-planning --------------------------------------------------------------


class TestPerShardReplanning:
    def test_eager_replanning_keeps_answers_exact(self):
        graph = advogato_like(nodes=60, edges=300, seed=17)
        database = GraphDatabase(graph, k=2, shards=4)
        oracle = GraphDatabase(graph, k=2, shards=1)
        database.index.replan_divergence = 1.0 + 1e-9  # any skew re-plans
        for query in (
            "master/journeyer/apprentice",
            "journeyer/master/journeyer/master",
        ):
            for method in ("minsupport", "minjoin"):
                answer = database.query(query, method=method, use_cache=False)
                expected = oracle.query(query, method=method, use_cache=False)
                assert answer.pairs == expected.pairs, (query, method)

    def test_replan_cache_reused_across_executions(self):
        graph = advogato_like(nodes=60, edges=300, seed=17)
        database = GraphDatabase(graph, k=2, shards=4)
        database.index.replan_divergence = 1.0 + 1e-9
        query = "master/journeyer/apprentice/master"
        first = database.query(query, use_cache=False).report
        cached_entries = len(database.index.replan_cache)
        again = database.query(query, use_cache=False).report
        assert len(database.index.replan_cache) == cached_entries
        assert again.shards_replanned == first.shards_replanned

    @BOTH_PATHS
    @settings(max_examples=25, deadline=None)
    @given(
        graph=graphs(max_nodes=7, max_edges=14),
        shards=st.sampled_from((2, 4)),
        method=st.sampled_from(STRATEGIES),
    )
    def test_pruning_and_replanning_match_oracle(
        self, pure_python, graph, shards, method
    ):
        """shards=N answers equal the shards=1 oracle with pruning on
        and re-planning forced eager — the ISSUE-5 exactness pin."""
        with forced_path(pure_python):
            oracle = GraphDatabase(graph, k=2, shards=1)
            sharded = GraphDatabase(graph, k=2, shards=shards)
            sharded.index.replan_divergence = 1.0 + 1e-9
            for query in ("a/b/a", "a{1,3}", "(a|b)/a/b", "b*"):
                assert (
                    sharded.query(query, method=method, use_cache=False).pairs
                    == oracle.query(query, method=method, use_cache=False).pairs
                ), query


# -- the REPRO_DEFAULT_SHARDS knob --------------------------------------------


class TestDefaultShardsKnob:
    def test_unset_means_unsharded(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_SHARDS", raising=False)
        assert default_shard_count() == 1

    def test_env_value_routes_defaults_through_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "3")
        assert default_shard_count() == 3
        graph = interleaved_chain(3, 3)
        database = GraphDatabase(graph, k=2)
        assert isinstance(database.index, ShardedGraph)
        assert database.index.shard_count == 3
        # An explicit shards= always wins over the environment.
        pinned = GraphDatabase(graph, k=2, shards=1)
        assert isinstance(pinned.index, PathIndex)

    def test_garbage_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "four")
        with pytest.raises(ValidationError):
            default_shard_count()
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "0")
        with pytest.raises(ValidationError):
            default_shard_count()


# -- the bounded decision cache -----------------------------------------------


class TestBoundedCache:
    def test_fifo_eviction_caps_size(self):
        from repro.sharding import BoundedCache

        cache = BoundedCache(maxsize=3)
        for i in range(10):
            cache[i] = i * i
        assert len(cache) == 3
        assert 6 not in cache and 9 in cache
        assert cache[9] == 81
        assert cache.get(0) is None and cache.get(9) == 81
        cache.clear()
        assert len(cache) == 0

    def test_maxsize_validated(self):
        from repro.sharding import BoundedCache

        with pytest.raises(ValidationError):
            BoundedCache(maxsize=0)

    def test_replan_cache_is_bounded(self):
        from repro.sharding import DECISION_CACHE_MAX

        graph = interleaved_chain(2, 4)
        sharded = ShardedGraph.build(graph, k=2, shards=2)
        assert sharded.replan_cache.maxsize == DECISION_CACHE_MAX
        for i in range(DECISION_CACHE_MAX + 50):
            sharded.replan_cache[("synthetic", i)] = object()
        assert len(sharded.replan_cache) == DECISION_CACHE_MAX
