"""Tests for the exact and uniform statistics providers."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics, UniformStatistics


@pytest.fixture(scope="module")
def setup():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=2)
    return graph, index


class TestExactStatistics:
    def test_from_index(self, setup):
        graph, index = setup
        stats = ExactStatistics.from_index(index)
        assert stats.k == 2
        assert stats.total_paths_k == count_paths_k(graph, 2)

    def test_counts_are_exact(self, setup):
        _, index = setup
        stats = ExactStatistics.from_index(index)
        for path in index.paths():
            assert stats.estimated_count(path) == float(index.count(path))

    def test_unknown_path_is_zero(self, setup):
        _, index = setup
        stats = ExactStatistics.from_index(index)
        assert stats.estimated_count(LabelPath.of("supervisor", "supervisor")) == 0.0

    def test_selectivity_normalization(self, setup):
        graph, index = setup
        stats = ExactStatistics.from_index(index)
        knows = LabelPath.of("knows")
        assert stats.selectivity(knows) == pytest.approx(
            9 / count_paths_k(graph, 2)
        )

    def test_too_long_path_rejected(self, setup):
        _, index = setup
        stats = ExactStatistics.from_index(index)
        with pytest.raises(ValidationError):
            stats.estimated_count(LabelPath.of("a", "a", "a"))

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExactStatistics({}, k=0, total_paths_k=1)
        with pytest.raises(ValidationError):
            ExactStatistics({}, k=1, total_paths_k=0)


class TestUniformStatistics:
    def test_same_estimate_for_same_length(self, setup):
        graph, _ = setup
        stats = UniformStatistics(graph, k=2)
        knows = stats.estimated_count(LabelPath.of("knows"))
        supervisor = stats.estimated_count(LabelPath.of("supervisor"))
        assert knows == supervisor  # information-free by design

    def test_longer_paths_estimate_smaller_on_sparse_graphs(self, setup):
        graph, _ = setup
        stats = UniformStatistics(graph, k=2)
        one = stats.estimated_count(LabelPath.of("knows"))
        two = stats.estimated_count(LabelPath.of("knows", "knows"))
        assert two < one

    def test_length_bound_enforced(self, setup):
        graph, _ = setup
        stats = UniformStatistics(graph, k=1)
        with pytest.raises(ValidationError):
            stats.estimated_count(LabelPath.of("a", "b"))

    def test_selectivity_positive(self, setup):
        graph, _ = setup
        stats = UniformStatistics(graph, k=2)
        assert stats.selectivity(LabelPath.of("knows")) > 0.0
