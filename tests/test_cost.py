"""Tests for the cost model."""

from __future__ import annotations

import pytest

from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.engine.cost import (
    HASH_BUILD_FACTOR,
    INVERSE_SWAP_FACTOR,
    CostModel,
)
from repro.engine.plan import Order
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics


@pytest.fixture(scope="module")
def model():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=2)
    stats = ExactStatistics.from_index(index)
    return CostModel(stats, graph), index, graph


class TestScanCosts:
    def test_scan_cost_tracks_cardinality(self, model):
        cost_model, index, _ = model
        knows = LabelPath.of("knows")
        costed = cost_model.scan(knows)
        assert costed.cardinality == index.count(knows)
        assert costed.cost == pytest.approx(costed.cardinality + 1.0)

    def test_inverse_scan_same_cardinality_different_order(self, model):
        cost_model, _, _ = model
        path = LabelPath.of("knows", "worksFor")
        direct = cost_model.scan(path)
        swapped = cost_model.scan(path, via_inverse=True)
        assert direct.cardinality == swapped.cardinality
        assert direct.order is Order.BY_SRC
        assert swapped.order is Order.BY_TGT

    def test_inverse_scan_charges_the_swap_term(self, model):
        """Regression: an inverse scan must cost strictly more than a
        direct scan of the same path (the executor pays a column swap),
        so the planner never prefers a spurious inverse scan on a tie."""
        cost_model, _, _ = model
        path = LabelPath.of("knows", "worksFor")
        direct = cost_model.scan(path)
        swapped = cost_model.scan(path, via_inverse=True)
        assert swapped.cost > direct.cost
        assert swapped.cost - direct.cost == pytest.approx(
            INVERSE_SWAP_FACTOR * direct.cardinality
        )
        assert cost_model.cheapest([swapped, direct]) is direct

    def test_swap_term_never_outweighs_a_merge_join_win(self, model):
        """The swap term must stay far below the hash-build penalty:
        scanning via the inverse to *enable* a merge join still wins."""
        cost_model, _, _ = model
        left_path = LabelPath.of("knows")
        right = cost_model.scan(LabelPath.of("worksFor"))
        merge = cost_model.join(
            cost_model.scan(left_path, via_inverse=True), right
        )
        hashj = cost_model.join(cost_model.scan(left_path), right)
        assert merge.plan.algorithm == "merge"
        assert hashj.plan.algorithm == "hash"
        assert merge.cost < hashj.cost

    def test_identity_costs_node_count(self, model):
        cost_model, _, graph = model
        assert cost_model.identity().cardinality == graph.node_count


class TestJoinCosts:
    def test_merge_chosen_when_orders_align(self, model):
        cost_model, _, _ = model
        left = cost_model.scan(LabelPath.of("knows"), via_inverse=True)
        right = cost_model.scan(LabelPath.of("worksFor"))
        joined = cost_model.join(left, right)
        assert joined.plan.algorithm == "merge"

    def test_hash_chosen_otherwise(self, model):
        cost_model, _, _ = model
        left = cost_model.scan(LabelPath.of("knows"))  # BY_SRC, not BY_TGT
        right = cost_model.scan(LabelPath.of("worksFor"))
        joined = cost_model.join(left, right)
        assert joined.plan.algorithm == "hash"

    def test_hash_join_costs_more_than_merge_all_else_equal(self, model):
        cost_model, _, _ = model
        swapped = cost_model.scan(LabelPath.of("knows"), via_inverse=True)
        direct = cost_model.scan(LabelPath.of("knows"))
        right = cost_model.scan(LabelPath.of("worksFor"))
        merge = cost_model.join(swapped, right)
        hashj = cost_model.join(direct, right)
        assert merge.cost < hashj.cost
        assert hashj.cost - merge.cost == pytest.approx(
            HASH_BUILD_FACTOR * min(direct.cardinality, right.cardinality)
            - INVERSE_SWAP_FACTOR * swapped.cardinality
        )

    def test_join_cardinality_independence_estimate(self, model):
        cost_model, _, graph = model
        assert cost_model.join_cardinality(10, 20) == pytest.approx(
            200 / graph.node_count
        )

    def test_long_path_cardinality_decomposes(self, model):
        cost_model, _, _ = model
        long_path = LabelPath.of("knows", "knows", "knows", "worksFor")
        estimate = cost_model.path_cardinality(long_path)
        assert estimate >= 0.0


class TestCheapest:
    def test_picks_min_cost(self, model):
        cost_model, _, _ = model
        cheap = cost_model.scan(LabelPath.of("supervisor"))
        expensive = cost_model.scan(LabelPath.of("knows"))
        assert cost_model.cheapest([expensive, cheap]) is cheap

    def test_empty_candidates_rejected(self, model):
        cost_model, _, _ = model
        with pytest.raises(ValueError):
            cost_model.cheapest([])
