"""Tests for the physical join operators and plan execution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.engine.operators import execute, hash_join, merge_join
from repro.engine.plan import IdentityPlan, IndexScanPlan, JoinPlan, UnionPlan
from repro.indexes.pathindex import PathIndex
from repro.rpq.semantics import compose

PAIRS = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20
).map(lambda pairs: sorted(set(pairs)))


def _compose_sets(left, right):
    return compose(set(left), set(right))


class TestJoins:
    def test_merge_join_basic(self):
        # left sorted by target, right sorted by source
        left = [(1, 5), (2, 5), (3, 7)]
        right = [(5, 10), (7, 11), (7, 12)]
        assert set(merge_join(left, right)) == {
            (1, 10), (2, 10), (3, 11), (3, 12),
        }

    def test_merge_join_empty(self):
        assert merge_join([], [(1, 2)]) == []
        assert merge_join([(1, 2)], []) == []

    def test_hash_join_basic(self):
        left = [(1, 5), (3, 7)]
        right = [(5, 10), (7, 11)]
        assert set(hash_join(left, right)) == {(1, 10), (3, 11)}

    def test_hash_join_builds_smaller_side_consistently(self):
        small = [(1, 5)]
        large = [(5, i) for i in range(10)]
        assert set(hash_join(small, large)) == {(1, i) for i in range(10)}
        swapped = [(i, 1) for i in range(10)]
        assert set(hash_join(swapped, [(1, 9)])) == {(i, 9) for i in range(10)}

    def test_joins_deduplicate(self):
        # two mid values both connect (1, *) to (*, 9)
        left = [(1, 5), (1, 6)]
        right = [(5, 9), (6, 9)]
        assert merge_join(sorted(left, key=lambda p: p[1]), right) == [(1, 9)]
        assert hash_join(left, right) == [(1, 9)]

    @settings(max_examples=100, deadline=None)
    @given(PAIRS, PAIRS)
    def test_hash_join_matches_composition(self, left, right):
        assert set(hash_join(left, right)) == _compose_sets(left, right)

    @settings(max_examples=100, deadline=None)
    @given(PAIRS, PAIRS)
    def test_merge_join_matches_composition(self, left, right):
        target_sorted = sorted(left, key=lambda pair: (pair[1], pair[0]))
        assert set(merge_join(target_sorted, right)) == _compose_sets(
            left, right
        )

    @settings(max_examples=100, deadline=None)
    @given(PAIRS, PAIRS)
    def test_merge_equals_hash(self, left, right):
        target_sorted = sorted(left, key=lambda pair: (pair[1], pair[0]))
        assert set(merge_join(target_sorted, right)) == set(
            hash_join(left, right)
        )


class TestExecute:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = figure1_graph()
        index = PathIndex.build(graph, k=2)
        return graph, index

    def test_scan_execution(self, setup):
        graph, index = setup
        plan = IndexScanPlan(LabelPath.of("knows"))
        assert set(execute(plan, index, graph)) == graph.step_relation(
            LabelPath.of("knows")[0]
        )

    def test_inverse_scan_execution_same_relation(self, setup):
        graph, index = setup
        path = LabelPath.of("knows", "worksFor")
        direct = execute(IndexScanPlan(path), index, graph)
        swapped = execute(IndexScanPlan(path, via_inverse=True), index, graph)
        assert set(direct) == set(swapped)

    def test_identity_execution(self, setup):
        graph, index = setup
        pairs = execute(IdentityPlan(), index, graph)
        assert pairs == [(node, node) for node in graph.node_ids()]

    def test_merge_join_plan(self, setup):
        graph, index = setup
        plan = JoinPlan(
            IndexScanPlan(LabelPath.of("knows"), via_inverse=True),
            IndexScanPlan(LabelPath.of("worksFor")),
            "merge",
        )
        from repro.rpq.parser import parse
        from repro.rpq.semantics import eval_ast

        assert set(execute(plan, index, graph)) == eval_ast(
            graph, parse("knows/worksFor")
        )

    def test_merge_join_with_bad_orders_rejected(self, setup):
        graph, index = setup
        plan = JoinPlan(
            IndexScanPlan(LabelPath.of("knows")),  # BY_SRC on the left
            IndexScanPlan(LabelPath.of("worksFor")),
            "merge",
        )
        with pytest.raises(ExecutionError):
            execute(plan, index, graph)

    def test_union_deduplicates(self, setup):
        graph, index = setup
        scan = IndexScanPlan(LabelPath.of("knows"))
        plan = UnionPlan((scan, scan))
        pairs = execute(plan, index, graph)
        assert len(pairs) == len(set(pairs)) == index.count(LabelPath.of("knows"))

    def test_unknown_plan_type_rejected(self, setup):
        graph, index = setup

        class Bogus:
            pass

        with pytest.raises(ExecutionError):
            execute(Bogus(), index, graph)  # type: ignore[arg-type]
