"""Tests for the concurrent query service layer.

Covers the :class:`repro.concurrency.ReadWriteLock` primitive, the
thread-safety of :class:`repro.api.GraphDatabase` (the multi-threaded
hammer test: N threads interleaving ``query`` / ``add_edge`` /
``remove_edge`` while every served answer must match the
single-threaded oracle for the graph version it carries), the
``query_batch`` API with its shared scan memo, the frozen-relation
assertion, and the parallel CSR closure knob.

The hammer's thread count is read from ``REPRO_STRESS_THREADS``
(default 4) so CI can dial the stress level explicitly.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import csr
from repro import relation as rel
from repro.api import GraphDatabase
from repro.bench.workloads import closure_base_pairs
from repro.concurrency import ReadWriteLock
from repro.engine.operators import ScanMemo, SharedScanMemo
from repro.engine.plan import IdentityPlan
from repro.errors import ExecutionError
from repro.graph.examples import FIGURE1_EDGES, figure1_graph
from repro.relation import Order, Relation
from repro.rpq.semantics import eval_query

from tests.strategies import rpq_asts

STRESS_THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "4"))


@contextmanager
def forced_path(pure_python: bool):
    """Route kernels through one implementation path for the duration."""
    old_flag, old_min = rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN
    rel._FORCE_PURE_PYTHON = pure_python
    if not pure_python:
        rel._VECTOR_MIN = 0
    try:
        yield
    finally:
        rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN = old_flag, old_min


BOTH_PATHS = pytest.mark.parametrize(
    "pure_python", [False, True], ids=["vectorized", "scalar"]
)


def _run_threads(targets) -> list[BaseException]:
    """Run one thread per target, collecting exceptions instead of dying."""
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def wrap(target):
        def runner():
            try:
                target()
            except BaseException as exc:  # noqa: BLE001 - test harness
                with errors_lock:
                    errors.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# -- ReadWriteLock -------------------------------------------------------------


class TestReadWriteLock:
    def test_readers_run_concurrently(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers must be inside at once

        assert _run_threads([reader, reader]) == []

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        active = []
        seen = []

        def writer(tag):
            def run():
                with lock.write_locked():
                    active.append(tag)
                    assert len(active) == 1, "two writers active at once"
                    active.remove(tag)
                    seen.append(tag)
            return run

        assert _run_threads([writer(i) for i in range(8)]) == []
        assert sorted(seen) == list(range(8))

    def test_writer_preference_over_new_readers(self):
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                # Hold until the writer is provably queued.
                assert writer_waiting.wait(timeout=5)

        def writer():
            assert reader_in.wait(timeout=5)
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            assert writer_waiting.wait(timeout=5)
            with lock.read_locked():
                order.append("late_reader")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for thread in threads:
            thread.start()
        assert reader_in.wait(timeout=5)
        while not lock._writers_waiting:  # writer queued behind reader
            pass
        writer_waiting.set()
        for thread in threads:
            thread.join()
        # The queued writer beat the reader that arrived after it.
        assert order == ["writer", "late_reader"]


# -- frozen relations and the shared memo --------------------------------------


class TestFrozenRelations:
    def test_freeze_then_mutate_fails_loudly(self):
        relation = Relation.from_pairs([(1, 2), (3, 4)], Order.BY_SRC)
        assert not relation.frozen
        relation.freeze()
        assert relation.frozen
        relation.check_frozen()  # intact: no error
        relation.src.append(9)  # the realistic corruption: a shared append
        with pytest.raises(ExecutionError, match="frozen relation mutated"):
            relation.check_frozen()

    def test_memo_freezes_stored_relations_and_checks_on_hit(self):
        memo = ScanMemo()
        plan = IdentityPlan()
        relation = Relation.from_pairs([(0, 0)], Order.BY_SRC)
        memo.store_plan(plan, relation)
        assert relation.frozen
        assert memo.lookup_plan(plan) is relation
        relation.src.append(7)
        with pytest.raises(ExecutionError):
            memo.lookup_plan(plan)

    def test_shared_memo_is_a_scan_memo(self):
        memo = SharedScanMemo()
        node = object()
        stored = Relation.from_pairs([(1, 1)])
        assert memo.lookup_ast(node) is None
        memo.store_ast(node, stored)
        assert memo.lookup_ast(node) is stored
        assert memo.hits == 1 and memo.misses == 1

    def test_shared_memo_survives_concurrent_traffic(self):
        memo = SharedScanMemo()
        relations = [
            Relation.from_pairs([(i, i)], Order.BY_SRC) for i in range(16)
        ]

        def worker(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(300):
                    i = rng.randrange(16)
                    cached = memo.lookup_plan(("plan", i))
                    if cached is None:
                        memo.store_plan(("plan", i), relations[i])
                    else:
                        assert cached is relations[i]
            return run

        assert _run_threads([worker(s) for s in range(STRESS_THREADS)]) == []
        assert memo.hits + memo.misses == 300 * STRESS_THREADS


# -- parallel CSR closure ------------------------------------------------------


class TestParallelClosure:
    @pytest.mark.parametrize("kind", ["cyclic", "chain", "scale_free"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_sequential_oracle(self, kind, workers):
        nodes, pairs = closure_base_pairs(kind, 600)
        base = Relation.from_pairs(pairs)
        sequential = csr.transitive_fixpoint(range(nodes), base, low=1)
        parallel = csr.transitive_fixpoint(
            range(nodes), base, low=1, workers=workers
        )
        assert parallel.to_set() == sequential.to_set()
        assert parallel.order is Order.BY_SRC

    def test_workers_with_identity_seed(self):
        nodes, pairs = closure_base_pairs("scale_free", 400)
        base = Relation.from_pairs(pairs)
        assert (
            csr.transitive_fixpoint(range(nodes), base, 0, workers=3).to_set()
            == csr.transitive_fixpoint(range(nodes), base, 0).to_set()
        )

    def test_workers_beyond_source_count(self):
        base = Relation.from_pairs([(0, 1), (1, 2)], Order.BY_SRC)
        closed = rel.transitive_fixpoint(range(3), base, 1, workers=64)
        assert closed.to_set() == {(0, 1), (0, 2), (1, 2)}

    @settings(max_examples=30, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
        ),
        workers=st.integers(min_value=2, max_value=5),
        low=st.integers(min_value=0, max_value=2),
    )
    def test_random_graphs_property(self, pairs, workers, low):
        base = Relation.from_pairs(sorted(set(pairs)), Order.BY_SRC)
        sequential = csr.transitive_fixpoint(range(16), base, low)
        parallel = csr.transitive_fixpoint(range(16), base, low, workers=workers)
        assert parallel.to_set() == sequential.to_set()


# -- the GraphDatabase mutation API --------------------------------------------


class TestServiceMutations:
    def test_add_edge_returns_version_and_serves_fresh_answers(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        before = database.query("knows")
        version = database.add_edge("ada", "knows", "kim")
        assert version is not None and version > before.version
        after = database.query("knows")
        assert after.version == version
        assert ("ada", "kim") in after.pairs
        assert set(after.pairs) == eval_query(database.graph, "knows")

    def test_duplicate_add_is_a_noop(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        version = database.graph.version
        assert database.add_edge("ada", "knows", "zoe") is None  # exists
        assert database.graph.version == version

    def test_remove_edge_round_trip(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        baseline = database.query("knows/worksFor").pairs
        assert database.remove_edge("zoe", "worksFor", "ada") is not None
        mutated = database.query("knows/worksFor")
        assert set(mutated.pairs) == eval_query(
            database.graph, "knows/worksFor"
        )
        assert database.add_edge("zoe", "worksFor", "ada") is not None
        assert database.query("knows/worksFor").pairs == baseline

    def test_remove_missing_edge_is_a_noop(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        assert database.remove_edge("ada", "knows", "ada") is None

    def test_failed_rebuild_fails_queries_cleanly_until_healed(
        self, monkeypatch
    ):
        """A rebuild that dies mid-mutation must not leave queries
        answering from pre-mutation state (or crashing on a half
        swapped index) — they raise PathIndexError until a rebuild
        succeeds."""
        from repro.errors import PathIndexError
        from repro.indexes.pathindex import PathIndex

        # shards=1 pinned: the failure is injected into the unsharded
        # PathIndex.build (the sharded engine rebuilds via
        # from_relations and has its own failure-path tests).
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2, shards=1)
        original_build = PathIndex.build

        def exploding_build(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(PathIndex, "build", exploding_build)
        with pytest.raises(OSError):
            database.add_edge("ada", "knows", "kim")
        # The graph is mutated and the index cleared: queries retry the
        # rebuild (and fail loudly) rather than serving stale answers.
        with pytest.raises(OSError):
            database.query("knows", use_cache=False)
        # A reader that slipped past _ensure_built before the failure
        # gets the clean "unavailable" error, not an AttributeError.
        with pytest.raises(PathIndexError, match="index unavailable"):
            database._require_index()
        # Once building works again, the service self-heals.
        monkeypatch.setattr(PathIndex, "build", original_build)
        fresh = database.query("knows", use_cache=False)
        assert set(fresh.pairs) == eval_query(database.graph, "knows")
        assert ("ada", "kim") in fresh.pairs  # the mutation is visible

    def test_failed_disk_rebuild_recovers_on_retry(self, tmp_path, monkeypatch):
        """Regression: a disk build dying mid-bulk-load left a partial
        non-empty index file that made every later build_index() raise
        'bulk_load requires an empty tree' — the database was wedged."""
        from repro.indexes.pathindex import PathIndex
        from repro.storage.diskbtree import DiskBPlusTree

        database = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=2, backend="disk",
            index_path=str(tmp_path / "index.db"),
        )
        original = DiskBPlusTree.bulk_load

        def exploding(self, *args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(DiskBPlusTree, "bulk_load", exploding)
        with pytest.raises(OSError):
            database.add_edge("ada", "knows", "kim")
        monkeypatch.setattr(DiskBPlusTree, "bulk_load", original)
        database.build_index()  # must not be wedged by the partial file
        assert set(database.query("knows").pairs) == eval_query(
            database.graph, "knows"
        )
        database.close()

    @pytest.mark.parametrize("backend", ["memory", "disk", "compressed"])
    def test_mutation_rebuild_works_on_every_backend(self, backend, tmp_path):
        """Regression: rebuilding a disk-backed index reused the old
        non-empty file and bulk_load raised StorageError — the rebuild
        must release the stale backend first."""
        kwargs = (
            {"index_path": str(tmp_path / "index.db")}
            if backend == "disk" else {}
        )
        with GraphDatabase.from_edges(
            FIGURE1_EDGES, k=2, backend=backend, **kwargs
        ) as database:
            assert database.add_edge("ada", "knows", "kim") is not None
            assert set(database.query("knows").pairs) == eval_query(
                database.graph, "knows"
            )
            assert database.remove_edge("ada", "knows", "kim") is not None
            assert set(database.query("knows").pairs) == eval_query(
                database.graph, "knows"
            )


# -- query_batch ---------------------------------------------------------------


class TestQueryBatch:
    QUERIES = [
        "knows",
        "knows/worksFor",
        "supervisor/^worksFor",
        "knows{1,3}",
        "knows",  # duplicate on purpose
        "(knows|worksFor)/knows",
    ]

    def test_matches_per_query_results_in_order(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        batch = database.query_batch(self.QUERIES, use_cache=False)
        assert len(batch) == len(self.QUERIES)
        for text, result in zip(self.QUERIES, batch):
            single = database.query(text, use_cache=False)
            assert result.query == text
            assert result.pairs == single.pairs
            assert result.version == database.graph.version

    def test_duplicates_share_one_execution(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        batch = database.query_batch(["knows"] * 5, use_cache=False)
        assert len({id(result) for result in batch}) == 1

    def test_batch_shares_scans_across_distinct_queries(self):
        """Two naive plans share their leading join subtree; with the
        batch-wide memo the second query gets it for free."""
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        before = database.cache_info()
        database.query_batch(
            ["knows/worksFor", "knows/worksFor/knows"],
            method="naive",
            use_cache=False,
        )
        info = database.cache_info()
        assert info["scan_memo_hits"] > before["scan_memo_hits"]

    def test_batch_results_land_in_the_query_cache(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        database.query_batch(["knows", "worksFor"])
        assert database.query("knows").cached
        assert database.query("worksFor").cached

    def test_batch_serves_cached_answers(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        primed = database.query("knows")
        batch = database.query_batch(["knows"])
        assert batch[0].cached
        assert batch[0].pairs == primed.pairs

    def test_workers_do_not_change_answers(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        serial = database.query_batch(self.QUERIES, use_cache=False)
        threaded = database.query_batch(
            self.QUERIES, use_cache=False, workers=4
        )
        for left, right in zip(serial, threaded):
            assert left.pairs == right.pairs

    def test_baseline_methods_batch_too(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        batch = database.query_batch(
            ["knows", "knows/worksFor"], method="reference", workers=2
        )
        for text, result in zip(["knows", "knows/worksFor"], batch):
            assert set(result.pairs) == eval_query(database.graph, text)
            assert result.method == "reference"

    def test_fallback_queries_share_the_batch_memo(self):
        """Unbounded stars take the hybrid fallback; the starred base
        repeats across the batch and must be computed once."""
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        queries = ["(knows|worksFor)*", "(knows|worksFor)*/supervisor"]
        batch = database.query_batch(queries, max_disjuncts=4, use_cache=False)
        for text, result in zip(queries, batch):
            assert result.report is not None and result.report.used_fallback
            assert set(result.pairs) == eval_query(database.graph, text)

    def test_empty_batch(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
        assert database.query_batch([]) == []

    @BOTH_PATHS
    @settings(max_examples=15, deadline=None)
    @given(nodes=st.lists(rpq_asts(allow_star=True), min_size=1, max_size=4))
    def test_batch_pins_to_query_property(self, pure_python, nodes):
        """Property: query_batch == a query() loop on hypothesis-drawn
        query mixes, on both the numpy and pure-Python kernel paths."""
        with forced_path(pure_python):
            database = GraphDatabase(figure1_graph(), k=2)
            batch = database.query_batch(nodes, max_disjuncts=6, workers=2)
            for node, result in zip(nodes, batch):
                single = database.query(node, max_disjuncts=6, use_cache=False)
                assert result.pairs == single.pairs, str(node)


# -- the multi-threaded hammer -------------------------------------------------


class TestConcurrentHammer:
    """N threads interleave query / add_edge / remove_edge.

    Every answer must match the single-threaded oracle for the graph
    version it was served under — no torn LRU entries, no answers
    computed against one index and keyed under another version.
    """

    #: Mutators toggle only these extra edges (labels stay alive — the
    #: base graph keeps other edges of every label), one disjoint slice
    #: per mutator so each thread knows which of its edges are present.
    EXTRA_EDGES = (
        ("ada", "knows", "kim"),
        ("sue", "knows", "ada"),
        ("kim", "worksFor", "acme"),
        ("zoe", "knows", "liz"),
        ("liz", "worksFor", "acme"),
        ("jan", "knows", "zoe"),
    )
    QUERIES = (
        "knows",
        "knows/worksFor",
        "supervisor/^worksFor",
        "(knows|worksFor){1,2}",
    )

    def test_hammer_serves_only_oracle_answers(self):
        database = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=2, query_cache_size=8
        )
        initial_version = database.graph.version
        op_log: list[tuple[int, str, tuple[str, str, str]]] = []
        log_lock = threading.Lock()
        answers: list[tuple[str, int, frozenset]] = []
        answers_lock = threading.Lock()

        def mutator(slice_edges, seed):
            def run():
                rng = random.Random(seed)
                present: set = set()
                for _ in range(10):
                    edge = rng.choice(slice_edges)
                    if edge in present:
                        version = database.remove_edge(*edge)
                        operation = "remove"
                        present.discard(edge)
                    else:
                        version = database.add_edge(*edge)
                        operation = "add"
                        present.add(edge)
                    assert version is not None
                    with log_lock:
                        op_log.append((version, operation, edge))
            return run

        def querier(seed):
            def run():
                rng = random.Random(seed)
                local = []
                for _ in range(20):
                    text = rng.choice(self.QUERIES)
                    result = database.query(
                        text, use_cache=rng.random() < 0.7
                    )
                    local.append((text, result.version, result.pairs))
                with answers_lock:
                    answers.extend(local)
            return run

        mutator_count = 2
        slices = [self.EXTRA_EDGES[0::2], self.EXTRA_EDGES[1::2]]
        targets = [
            mutator(slices[i], seed=100 + i) for i in range(mutator_count)
        ] + [querier(seed=i) for i in range(STRESS_THREADS)]
        errors = _run_threads(targets)
        assert errors == [], errors

        # Reconstruct the exact edge set at every served version.  The
        # write lock serializes mutations, so version order is
        # application order; queries can only observe versions at the
        # boundaries of completed mutations.
        states: dict[int, frozenset] = {}
        current = set(FIGURE1_EDGES)
        states[initial_version] = frozenset(current)
        for version, operation, edge in sorted(op_log):
            if operation == "add":
                current.add(edge)
            else:
                current.discard(edge)
            states[version] = frozenset(current)

        assert answers, "no answers recorded"
        oracle_cache: dict[tuple, set] = {}
        from repro.graph.graph import Graph

        for text, version, pairs in answers:
            assert version in states, (
                f"answer served under unknown version {version}"
            )
            key = (version, text)
            if key not in oracle_cache:
                graph = Graph.from_edges(sorted(states[version]))
                oracle_cache[key] = eval_query(graph, text)
            assert set(pairs) == oracle_cache[key], (
                f"{text!r} at version {version} diverged from the oracle"
            )

    def test_concurrent_readers_on_the_disk_backend(self, tmp_path):
        """Regression: the disk backend's pager shares one file handle
        and one LRU across readers — concurrent queries interleaved
        seek/read and could serve torn pages.  A tiny page cache forces
        constant misses/evictions while threads query and mutate."""
        # shards=1 pinned: the test reaches into the *unsharded* disk
        # backend's pager (the shared handle under test).
        database = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=2, backend="disk",
            index_path=str(tmp_path / "index.db"), shards=1,
        )
        # Shrink the pager cache so nearly every read goes to the file.
        database.index._backend._tree._pager._cache_pages = 4
        expected = {
            text: eval_query(database.graph, text) for text in self.QUERIES
        }

        def querier(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(15):
                    text = rng.choice(self.QUERIES)
                    result = database.query(text, use_cache=False)
                    assert set(result.pairs) == expected[text], text
            return run

        errors = _run_threads([querier(i) for i in range(STRESS_THREADS)])
        assert errors == [], errors
        database.close()

    def test_concurrent_batches_and_mutations(self):
        """query_batch under concurrent mutation: every batch is served
        against one consistent version."""
        database = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=2, query_cache_size=8
        )
        collected: list[list] = []
        collected_lock = threading.Lock()

        def mutator():
            for _ in range(6):
                assert database.add_edge("ada", "knows", "kim") is not None
                assert database.remove_edge("ada", "knows", "kim") is not None

        def batcher(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(5):
                    batch = database.query_batch(
                        ["knows", "knows/worksFor", "knows"],
                        workers=rng.choice((1, 2)),
                        use_cache=rng.random() < 0.5,
                    )
                    with collected_lock:
                        collected.append(batch)
            return run

        errors = _run_threads(
            [mutator] + [batcher(i) for i in range(STRESS_THREADS)]
        )
        assert errors == [], errors
        for batch in collected:
            versions = {result.version for result in batch}
            assert len(versions) == 1, "batch spanned graph versions"
            assert batch[0].pairs == batch[2].pairs  # duplicate query
