"""The write path: unified ``apply()``, group commit, WAL replay, patching.

The contracts under test, in the order the module covers them:

* **value types** — ``Mutation`` / ``MutationBatch`` / ``ApplyResult``
  validate eagerly and round-trip their wire forms;
* **exactness** — any interleaving of ``apply()`` batches against the
  sharded delta-patching engine answers exactly like a ``shards=1``
  oracle that rebuilds from scratch after every batch (the hypothesis
  property), including under concurrent writers;
* **durability** — the mutation log survives torn tails, a crash
  injected at the ``mutlog.flush`` seam fails the group with nothing
  applied, and reopening the log replays exactly the acknowledged
  batches (never a double-apply);
* **the serve stack** — the coordinator absorbs commit groups as patch
  broadcasts, restarts workers by journal replay (zero full-graph
  transfers), and the HTTP ``/apply`` route + clients + CLI speak the
  same one wire shape;
* **deprecations** — ``cache_info()`` and legacy keyword knobs warn
  but keep working.
"""

from __future__ import annotations

import io
import random
import sys
import threading

import pytest
from concurrent.futures import BrokenExecutor
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.api import GraphDatabase
from repro.client import Client
from repro.config import ServiceConfig
from repro.errors import ValidationError
from repro.faults import FaultPlan, FaultRule, armed, disarmed
from repro.serve import CoordinatorDatabase
from repro.serve.server import serve_in_thread
from repro.write import ApplyResult, Mutation, MutationBatch, MutationLog

QUERIES = ("a/b", "b/a", "a/b/c", "(a|b)/c")


def _edges(seed: int, nodes: int = 40, count: int = 160):
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    return [
        (rng.choice(names), rng.choice("abc"), rng.choice(names))
        for _ in range(count)
    ]


def _mutations(seed: int, count: int, nodes: int = 40):
    """A reproducible mix of adds and removes over the ``_edges`` names."""
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    return [
        (
            Mutation.add if rng.random() < 0.7 else Mutation.remove
        )(rng.choice(names), rng.choice("abc"), rng.choice(names))
        for _ in range(count)
    ]


# -- value types ---------------------------------------------------------------


class TestMutationTypes:
    def test_validation_is_eager(self):
        with pytest.raises(ValidationError):
            Mutation("upsert", "a", "b", "c")
        with pytest.raises(ValidationError):
            Mutation.add("", "b", "c")
        with pytest.raises(ValidationError):
            Mutation.add("a", "b/c", "d")

    def test_wire_round_trip(self):
        batch = MutationBatch.of(
            Mutation.add("a", "x", "b"), Mutation.remove("b", "y", "a")
        )
        assert MutationBatch.from_wire(batch.as_wire()) == batch
        assert MutationBatch.from_json_bytes(batch.as_json_bytes()) == batch

    def test_coerce_accepts_all_three_shapes(self):
        one = Mutation.add("a", "x", "b")
        assert list(MutationBatch.coerce(one)) == [one]
        assert list(MutationBatch.coerce([one, one])) == [one, one]
        batch = MutationBatch.of(one)
        assert MutationBatch.coerce(batch) is batch

    def test_apply_result_round_trip(self):
        result = ApplyResult(
            applied=2, noops=1, version=9, mode="patch", patched_shards=(0, 2)
        )
        assert ApplyResult.from_wire(result.as_wire()) == result
        assert result.changed
        assert not ApplyResult(0, 3, 9, "noop").changed


# -- engine exactness ----------------------------------------------------------


class _Oracle:
    """A shards=1 database rebuilt from scratch after every batch.

    The unsharded engine absorbs every changed group with a full
    index rebuild — an independent code path from delta patching,
    which is what makes it a ground truth here.
    """

    def __init__(self, edges, k=2):
        self.db = GraphDatabase.from_edges(
            edges, config=ServiceConfig(k=k, shards=1)
        )

    def apply(self, batch):
        self.db.apply(MutationBatch.coerce(batch))

    def answers(self):
        return {q: self.db.query(q, use_cache=False).pairs for q in QUERIES}

    def close(self):
        self.db.close()


class TestApplyEngine:
    def test_patched_groups_match_rebuilt_oracle(self):
        edges = _edges(11)
        db = GraphDatabase.from_edges(edges, config=ServiceConfig(k=2, shards=4))
        oracle = _Oracle(edges)
        try:
            modes = set()
            for start in range(0, 24, 6):
                batch = MutationBatch.of(*_mutations(start, 6))
                result = db.apply(batch)
                oracle.apply(batch)
                modes.add(result.mode)
                for query, want in oracle.answers().items():
                    assert db.query(query, use_cache=False).pairs == want
            assert "patch" in modes, f"no group was delta-patched: {modes}"
            assert db.stats().write.patched > 0
        finally:
            db.close()
            oracle.close()

    def test_new_label_falls_back_to_rebuild(self):
        db = GraphDatabase.from_edges(_edges(3), config=ServiceConfig(k=2, shards=4))
        try:
            result = db.apply(Mutation.add("n0", "zzz", "n1"))
            assert result.mode == "rebuild"
            assert db.query("zzz").pairs
        finally:
            db.close()

    def test_pure_noop_group_touches_nothing(self):
        edges = _edges(4)
        db = GraphDatabase.from_edges(edges, config=ServiceConfig(k=2, shards=2))
        try:
            version = db.graph.version
            result = db.apply(Mutation.add(*edges[0]))
            assert result.mode == "noop" and not result.changed
            assert result.noops == 1 and db.graph.version == version
        finally:
            db.close()

    def test_shims_ride_apply(self):
        db = GraphDatabase.from_edges(_edges(5), config=ServiceConfig(k=2, shards=2))
        try:
            version = db.add_edge("n0", "a", "n39")
            assert version == db.graph.version
            assert db.add_edge("n0", "a", "n39") is None
            assert db.remove_edge("n0", "a", "n39") == db.graph.version
            assert db.remove_edge("n0", "a", "n39") is None
        finally:
            db.close()

    def test_concurrent_writers_coalesce_and_stay_exact(self):
        edges = _edges(6)
        config = ServiceConfig(
            k=2, shards=4, group_commit_ms=2.0, group_commit_max=16
        )
        db = GraphDatabase.from_edges(edges, config=config)
        oracle = _Oracle(edges)
        # Adds only: insertions commute and are idempotent, so the
        # final graph is interleaving-independent.
        mutations = [
            m for m in _mutations(99, 48) if m.kind == "add"
        ][:32]
        errors = []

        def writer(chunk):
            try:
                for mutation in chunk:
                    db.apply(mutation)
            except BaseException as error:  # surfaced after join
                errors.append(error)

        try:
            threads = [
                threading.Thread(target=writer, args=(mutations[i::8],))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            oracle.apply(mutations)  # order-independent: adds/removes commute
            stats = db.stats().write
            assert stats.groups + stats.patched + stats.rebuilt > 0
            for query, want in oracle.answers().items():
                assert db.query(query, use_cache=False).pairs == want
        finally:
            db.close()
            oracle.close()

    def test_rebalance_preserves_answers(self):
        edges = _edges(7)
        db = GraphDatabase.from_edges(edges, config=ServiceConfig(k=2, shards=4))
        oracle = _Oracle(edges)
        try:
            moved = db.rebalance(skew_threshold=0.1, candidates=4)
            assert isinstance(moved, bool)
            for query, want in oracle.answers().items():
                assert db.query(query, use_cache=False).pairs == want
        finally:
            db.close()
            oracle.close()


@st.composite
def batch_plans(draw):
    """A starting edge list plus batches of mutations over few names."""
    names = [f"n{i}" for i in range(6)]
    edge = st.tuples(
        st.sampled_from(names), st.sampled_from("ab"), st.sampled_from(names)
    )
    start = draw(st.lists(edge, min_size=2, max_size=12))
    batches = draw(
        st.lists(
            st.lists(
                st.tuples(st.booleans(), edge), min_size=1, max_size=4
            ),
            min_size=1,
            max_size=3,
        )
    )
    return start, batches


class TestInterleavingProperty:
    @settings(max_examples=20, deadline=None)
    @given(plan=batch_plans(), shards=st.sampled_from([2, 3]))
    def test_any_batch_sequence_matches_oracle(self, plan, shards):
        start, batches = plan
        db = GraphDatabase.from_edges(
            start, config=ServiceConfig(k=2, shards=shards)
        )
        oracle = _Oracle(start)
        try:
            for spec in batches:
                batch = MutationBatch.of(
                    *(
                        (Mutation.add if add else Mutation.remove)(*edge)
                        for add, edge in spec
                    )
                )
                db.apply(batch)
                oracle.apply(batch)
                for query in ("a/b", "b/a", "a/a"):
                    want = oracle.db.query(query, use_cache=False).pairs
                    assert db.query(query, use_cache=False).pairs == want
        finally:
            db.close()
            oracle.close()


# -- the mutation log ----------------------------------------------------------


class TestMutationLog:
    """Raw log contracts; disarmed — unlike the engine's commit group,
    direct ``append``/``flush`` calls carry no retry envelope, so a
    process-wide chaos plan (CI's ``REPRO_FAULTS``) would fail them
    by design rather than reveal anything."""

    @pytest.fixture(autouse=True)
    def _no_chaos(self):
        with disarmed():
            yield

    def test_append_flush_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with MutationLog(path) as log:
            log.append(MutationBatch.of(Mutation.add("a", "x", "b")))
            log.append(MutationBatch.of(Mutation.remove("a", "x", "b")))
            log.flush()
            assert log.last_seq == 2
            replayed = list(log.replay())
        assert [seq for seq, _ in replayed] == [1, 2]
        assert list(replayed[0][1])[0] == Mutation.add("a", "x", "b")

    def test_unflushed_records_are_not_durable(self, tmp_path):
        path = tmp_path / "wal.log"
        with MutationLog(path) as log:
            log.append(MutationBatch.of(Mutation.add("a", "x", "b")))
            log.flush()
            log.append(MutationBatch.of(Mutation.add("b", "x", "c")))
            assert log.last_seq == 1
            assert len(list(log.replay())) == 1

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        with MutationLog(path) as log:
            log.append(MutationBatch.of(Mutation.add("a", "x", "b")))
            log.append(MutationBatch.of(Mutation.add("b", "x", "c")))
            log.flush()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x07garbage-torn-tail")
        with MutationLog(path) as log:
            assert log.recovered_records == 2
            assert log.truncated_bytes > 0
            assert log.last_seq == 2
            log.append(MutationBatch.of(Mutation.add("c", "x", "a")))
            log.flush()
            assert [seq for seq, _ in log.replay()] == [1, 2, 3]


class TestWalEngine:
    def _config(self, tmp_path, **extra):
        return ServiceConfig(
            k=2,
            shards=2,
            mutation_log_path=str(tmp_path / "wal.log"),
            **extra,
        )

    def test_reopen_replays_log(self, tmp_path):
        edges = _edges(8)
        db = GraphDatabase.from_edges(edges, config=self._config(tmp_path))
        db.apply(MutationBatch.of(*_mutations(1, 4)))
        db.apply(MutationBatch.of(*_mutations(2, 4)))
        want = {q: db.query(q, use_cache=False).pairs for q in QUERIES}
        version = db.graph.version
        db.close()

        revived = GraphDatabase.from_edges(edges, config=self._config(tmp_path))
        try:
            stats = revived.stats()
            assert stats.write.replayed == 2
            assert stats.write.log_records == 2
            # Replay is by whole batches, exactly once: the edge
            # multiset matches, so no mutation was double-applied.
            assert revived.graph.version == version
            for query, pairs in want.items():
                assert revived.query(query, use_cache=False).pairs == pairs
        finally:
            revived.close()

    def test_crash_at_flush_fails_group_cleanly(self, tmp_path):
        edges = _edges(9)
        config = self._config(tmp_path)
        db = GraphDatabase.from_edges(edges, config=config)
        try:
            survivor = MutationBatch.of(*_mutations(3, 3))
            db.apply(survivor)
            before = {q: db.query(q, use_cache=False).pairs for q in QUERIES}
            version = db.graph.version

            plan = FaultPlan([FaultRule("mutlog.flush", "crash", times=1)])
            doomed = MutationBatch.of(*_mutations(4, 3))
            with armed(plan):
                with pytest.raises(BrokenExecutor):
                    db.apply(doomed)
            assert plan.fired == 1

            # Nothing applied, nothing acknowledged, answers unchanged.
            assert db.graph.version == version
            assert db.stats().write.log_records == 1
            for query, pairs in before.items():
                assert db.query(query, use_cache=False).pairs == pairs

            # Re-submitting the same batch after the fault is safe.
            assert db.apply(doomed).changed
        finally:
            db.close()

        # And a reopen replays exactly the two acknowledged batches.
        revived = GraphDatabase.from_edges(edges, config=self._config(tmp_path))
        try:
            assert revived.stats().write.replayed == 2
        finally:
            revived.close()


# -- deprecations --------------------------------------------------------------


class TestDeprecations:
    def test_cache_info_warns_and_delegates(self):
        db = GraphDatabase.from_edges(_edges(1, 10, 20), config=ServiceConfig(k=1))
        try:
            with pytest.warns(DeprecationWarning, match=r"stats\(\)"):
                info = db.cache_info()
            assert info == db.stats().as_dict()
        finally:
            db.close()

    def test_legacy_knob_warning_names_the_config_field(self):
        with pytest.warns(DeprecationWarning, match=r"ServiceConfig\.shards"):
            db = GraphDatabase.from_edges(_edges(1, 10, 20), k=1, shards=2)
        db.close()


# -- the coordinator -----------------------------------------------------------


@pytest.fixture(scope="module")
def write_coordinator():
    db = CoordinatorDatabase.from_edges(
        _edges(5), config=ServiceConfig(k=2, shards=3)
    )
    yield db
    db.close()


@pytest.fixture(scope="module")
def write_oracle():
    db = GraphDatabase.from_edges(_edges(5), config=ServiceConfig(k=2, shards=1))
    yield db
    db.close()


class TestCoordinatorWritePath:
    def test_apply_broadcasts_patches(self, write_coordinator, write_oracle):
        batch = MutationBatch.of(
            Mutation.add("n1", "a", "n2"), Mutation.add("n2", "b", "n3")
        )
        result = write_coordinator.apply(batch)
        write_oracle.apply(batch)
        assert result.mode == "patch" and result.patched_shards
        for query in QUERIES:
            want = write_oracle.query(query, use_cache=False).pairs
            assert write_coordinator.query(query, use_cache=False).pairs == want

    def test_restart_resyncs_by_replay_not_transfer(
        self, write_coordinator, write_oracle
    ):
        mutations = _mutations(42, 5)
        for mutation in mutations:
            write_coordinator.apply(mutation)
            write_oracle.apply(mutation)
        index = write_coordinator._index

        index.handles[1].kill()
        index.handles[1].process.join(5)
        assert write_coordinator.ensure_workers() == [1]
        write_coordinator.cache_clear()

        assert index.replayed_mutations > 0
        assert index.full_graph_transfers == 0
        for query in QUERIES:
            want = write_oracle.query(query, use_cache=False).pairs
            assert write_coordinator.query(query, use_cache=False).pairs == want

        # The restarted worker keeps taking writes.
        result = write_coordinator.apply(Mutation.add("n3", "c", "n4"))
        assert result.changed
        write_oracle.apply(Mutation.add("n3", "c", "n4"))
        want = write_oracle.query("a/c", use_cache=False).pairs
        assert write_coordinator.query("a/c", use_cache=False).pairs == want


# -- HTTP, clients, CLI --------------------------------------------------------


class TestHttpApply:
    @pytest.fixture(scope="class")
    def served(self):
        config = ServiceConfig(k=2, shards=2, port=0)
        db = GraphDatabase.from_edges(_edges(12), config=config)
        handle = serve_in_thread(db, config)
        yield db, Client(port=handle.port)
        handle.stop()
        db.close()

    def test_apply_round_trip(self, served):
        db, client = served
        result = client.apply(
            [Mutation.add("n1", "a", "n2"), Mutation.add("n2", "b", "n3")]
        )
        assert isinstance(result, ApplyResult)
        assert result.version == db.graph.version

    def test_client_shims_ride_apply(self, served):
        _, client = served
        version = client.add_edge("n4", "c", "n5")
        assert isinstance(version, int)
        assert client.add_edge("n4", "c", "n5") is None
        removed = client.remove_edge("n4", "c", "n5")
        assert isinstance(removed, int) and removed > version

    def test_legacy_mutate_route_still_works(self, served):
        db, client = served
        from repro.client import decode_mutation, mutate_body

        payload = client._request(
            "POST", "/mutate", mutate_body("add", "n6", "a", "n7")
        )
        assert decode_mutation(payload) == db.graph.version


class TestCliMutate:
    def test_mutate_reads_stdin_delta(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys,
            "stdin",
            io.StringIO("# delta\nadd x a y\n+ y b z\nremove x a y\n"),
        )
        assert cli.main(["mutate", "--synthetic", "small"]) == 0
        err = capsys.readouterr().err
        assert "applied 3" in err and "version" in err

    def test_mutate_rejects_bad_lines(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", io.StringIO("frobnicate x a y\n"))
        assert cli.main(["mutate", "--synthetic", "small"]) == 2
        assert "kind must be" in capsys.readouterr().err
