"""Tests for the RPQ -> Datalog translation (approach 2)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.baselines import datalog_eval
from repro.datalog.engine import seminaive_evaluate
from repro.datalog.translate import graph_to_edb, translate
from repro.graph.examples import figure1_graph
from repro.graph.generators import chain, cycle
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast

from tests.strategies import graphs, rpq_asts


class TestTranslationStructure:
    def test_label_translates_to_edge_rule(self):
        translation = translate(parse("knows"))
        text = str(translation.program)
        assert "edge_knows" in text

    def test_inverse_swaps_edge_arguments(self):
        translation = translate(parse("^knows"))
        answer_rules = translation.program.rules_for(
            translation.answer_predicate
        )
        body_atom = answer_rules[0].body[0]
        head = answer_rules[0].head
        # head (X, Y), body edge(Y, X)
        assert (body_atom.terms[0], body_atom.terms[1]) == (
            head.terms[1], head.terms[0],
        )

    def test_star_produces_recursive_rule(self):
        translation = translate(parse("knows*"))
        answer = translation.answer_predicate
        recursive = [
            rule
            for rule in translation.program.rules_for(answer)
            if any(atom.predicate == answer for atom in rule.body)
        ]
        assert recursive

    def test_bounded_repeat_is_nonrecursive(self):
        translation = translate(parse("knows{1,3}"))
        idb = translation.program.idb_predicates()
        for rule in translation.program.rules:
            for atom in rule.body:
                if atom.predicate == rule.head.predicate:
                    raise AssertionError("bounded recursion should unroll")
        assert translation.answer_predicate in idb

    def test_edb_export(self):
        graph = figure1_graph()
        edb = graph_to_edb(graph)
        assert edb.count("node") == graph.node_count
        assert edb.count("edge_knows") == 9
        assert edb.count("edge_supervisor") == 1


class TestEvaluation:
    def test_simple_concat(self):
        graph = chain(3)
        answer = datalog_eval.evaluate(graph, parse("next/next"))
        assert answer == eval_ast(graph, parse("next/next"))

    def test_star_on_cycle(self):
        graph = cycle(4)
        answer = datalog_eval.evaluate(graph, parse("next*"))
        assert answer == eval_ast(graph, parse("next*"))

    def test_open_repeat(self):
        graph = chain(4)
        answer = datalog_eval.evaluate(graph, parse("next{2,}"))
        assert answer == eval_ast(graph, parse("next{2,}"))

    def test_epsilon(self):
        graph = chain(2)
        answer = datalog_eval.evaluate(graph, parse("<eps>"))
        assert answer == eval_ast(graph, parse("<eps>"))

    def test_union_recursion_paper_query(self):
        graph = figure1_graph()
        query = parse("(supervisor|worksFor|^worksFor){2,3}")
        assert datalog_eval.evaluate(graph, query) == eval_ast(graph, query)

    def test_naive_mode(self):
        graph = chain(3)
        answer = datalog_eval.evaluate(graph, parse("next+"), mode="naive")
        assert answer == eval_ast(graph, parse("next+"))

    def test_unknown_mode_rejected(self):
        import pytest

        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            datalog_eval.evaluate(chain(2), parse("next"), mode="magic")

    def test_stats_returned(self):
        graph = cycle(3)
        _, stats = datalog_eval.evaluate_with_stats(graph, parse("next*"))
        assert stats.rounds >= 2
        assert stats.facts_derived > 0

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_property_matches_reference(self, graph, node):
        assert datalog_eval.evaluate(graph, node) == eval_ast(graph, node)

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_nodes=4, max_edges=8),
           rpq_asts(max_leaves=2, allow_star=True))
    def test_property_matches_reference_with_star(self, graph, node):
        assert datalog_eval.evaluate(graph, node) == eval_ast(graph, node)

    @settings(max_examples=15, deadline=None)
    @given(graphs(max_nodes=4, max_edges=6), rpq_asts(max_leaves=2))
    def test_property_naive_equals_seminaive(self, graph, node):
        translation = translate(node)
        edb = graph_to_edb(graph)
        semi, _ = seminaive_evaluate(translation.program, edb)
        assert datalog_eval.evaluate(graph, node, mode="naive") == {
            pair for pair in semi.relation(translation.answer_predicate)
        }
