"""Tests for the four planning strategies (Section 4)."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.engine.operators import execute
from repro.engine.plan import IndexScanPlan, JoinPlan, UnionPlan
from repro.engine.planner import Planner, Strategy, _compositions
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.rpq.parser import parse
from repro.rpq.rewrite import normalize
from repro.rpq.semantics import eval_ast


@pytest.fixture(scope="module")
def setup():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=3)
    stats = ExactStatistics.from_index(index)
    return graph, index, stats


def _planner(setup, strategy, k=3):
    graph, index, stats = setup
    return Planner(k, stats, graph, strategy)


class TestStrategyParsing:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("naive", Strategy.NAIVE),
            ("semi-naive", Strategy.SEMI_NAIVE),
            ("semi_naive", Strategy.SEMI_NAIVE),
            ("minsupport", Strategy.MIN_SUPPORT),
            ("MIN_SUPPORT", Strategy.MIN_SUPPORT),
            ("minjoin", Strategy.MIN_JOIN),
        ],
    )
    def test_parse(self, name, expected):
        assert Strategy.parse(name) is expected

    def test_parse_unknown(self):
        with pytest.raises(PlanningError):
            Strategy.parse("quantum")


class TestShortPaths:
    def test_path_within_k_is_single_scan(self, setup):
        for strategy in Strategy:
            planner = _planner(setup, strategy)
            costed = planner.plan_path(LabelPath.of("knows", "worksFor"))
            if strategy is Strategy.NAIVE:
                continue  # naive always splits into steps
            assert isinstance(costed.plan, IndexScanPlan)
            assert costed.plan.path == LabelPath.of("knows", "worksFor")

    def test_naive_splits_into_single_steps(self, setup):
        planner = _planner(setup, Strategy.NAIVE)
        costed = planner.plan_path(LabelPath.of("knows", "worksFor", "knows"))
        assert costed.plan.scan_count() == 3
        for scan_path in _scan_paths(costed.plan):
            assert len(scan_path) == 1


class TestSemiNaive:
    def test_paper_example_first_disjunct(self, setup):
        """kkwkww at k=3: merge(inv(kkw), kww) — Section 4's plan."""
        planner = _planner(setup, Strategy.SEMI_NAIVE)
        path = LabelPath.of("knows", "knows", "worksFor",
                            "knows", "worksFor", "worksFor")
        costed = planner.plan_path(path)
        plan = costed.plan
        assert isinstance(plan, JoinPlan)
        assert plan.algorithm == "merge"
        assert isinstance(plan.left, IndexScanPlan)
        assert plan.left.via_inverse  # scanned as w-k-k-
        assert plan.left.path == LabelPath.of("knows", "knows", "worksFor")
        assert plan.right == IndexScanPlan(
            LabelPath.of("knows", "worksFor", "worksFor")
        )

    def test_paper_example_second_disjunct(self, setup):
        """kkwkwkww at k=3: merge then one hash join."""
        planner = _planner(setup, Strategy.SEMI_NAIVE)
        path = LabelPath.of(*(["knows", "knows", "worksFor", "knows",
                               "worksFor", "knows", "worksFor", "worksFor"]))
        costed = planner.plan_path(path)
        assert costed.plan.join_count() == 2
        assert costed.plan.merge_join_count() == 1
        # outer join is hash, inner is merge (left-deep)
        assert costed.plan.algorithm == "hash"
        assert costed.plan.left.algorithm == "merge"

    def test_chunk_sizes_are_k_greedy(self, setup):
        planner = _planner(setup, Strategy.SEMI_NAIVE)
        path = LabelPath.of(*["knows"] * 7)
        costed = planner.plan_path(path)
        sizes = sorted(len(p) for p in _scan_paths(costed.plan))
        assert sizes == [1, 3, 3]


class TestMinSupport:
    def test_short_path_is_scan(self, setup):
        planner = _planner(setup, Strategy.MIN_SUPPORT)
        costed = planner.plan_path(LabelPath.of("knows"))
        assert isinstance(costed.plan, IndexScanPlan)

    def test_pivot_is_most_selective_window(self, setup):
        graph, index, stats = setup
        planner = _planner(setup, Strategy.MIN_SUPPORT)
        # supervisor is rare: windows containing it are most selective
        path = LabelPath.of("knows", "knows", "supervisor", "knows", "knows")
        costed = planner.plan_path(path)
        scans = list(_scan_paths(costed.plan))
        assert any("supervisor" in p.encode() for p in scans)
        # the pivot window (offset 0..2 of length 3) with the smallest
        # count must appear as one scanned piece
        best = min(
            (path.subpath(i, i + 3) for i in range(3)),
            key=lambda window: index.count(window),
        )
        assert any(p in (best, best.inverted()) or p == best for p in scans)

    def test_plans_are_correct(self, setup):
        graph, index, _ = setup
        planner = _planner(setup, Strategy.MIN_SUPPORT)
        for text in [
            "knows/knows/worksFor/knows",
            "knows/worksFor/^knows/^worksFor/knows",
            "supervisor/knows/knows/worksFor",
        ]:
            normal = normalize(parse(text), star_bound_value=8)
            costed = planner.plan(normal)
            assert set(execute(costed.plan, index, graph)) == eval_ast(
                graph, parse(text)
            )


class TestMinJoin:
    def test_minimal_chunk_count(self, setup):
        planner = _planner(setup, Strategy.MIN_JOIN)
        path = LabelPath.of(*["knows"] * 7)  # n=7, k=3 -> 3 chunks, 2 joins
        costed = planner.plan_path(path)
        assert costed.plan.join_count() == 2
        assert costed.plan.scan_count() == 3

    def test_minjoin_never_uses_more_scans_than_seminaive(self, setup):
        semi = _planner(setup, Strategy.SEMI_NAIVE)
        minjoin = _planner(setup, Strategy.MIN_JOIN)
        for length in range(1, 9):
            path = LabelPath.of(*["knows"] * length)
            assert (
                minjoin.plan_path(path).plan.scan_count()
                <= semi.plan_path(path).plan.scan_count()
            )

    def test_plans_are_correct(self, setup):
        graph, index, _ = setup
        planner = _planner(setup, Strategy.MIN_JOIN)
        for text in [
            "knows/knows/worksFor/knows/worksFor",
            "^worksFor/knows/knows/knows",
        ]:
            normal = normalize(parse(text), star_bound_value=8)
            costed = planner.plan(normal)
            assert set(execute(costed.plan, index, graph)) == eval_ast(
                graph, parse(text)
            )

    def test_compositions_enumeration(self):
        assert sorted(tuple(c) for c in _compositions(5, 2, 3)) == [
            (2, 3), (3, 2),
        ]
        assert list(_compositions(3, 1, 3)) == [[3]]
        assert list(_compositions(9, 3, 3)) == [[3, 3, 3]]
        assert list(_compositions(4, 1, 3)) == []


class TestWholeQueries:
    def test_union_of_disjuncts(self, setup):
        graph, index, _ = setup
        planner = _planner(setup, Strategy.MIN_SUPPORT)
        normal = normalize(parse("(knows|worksFor)/knows"), star_bound_value=8)
        costed = planner.plan(normal)
        assert isinstance(costed.plan, UnionPlan)
        assert len(costed.plan.parts) == 2

    def test_epsilon_included(self, setup):
        planner = _planner(setup, Strategy.SEMI_NAIVE)
        normal = normalize(parse("knows{0,1}"), star_bound_value=8)
        costed = planner.plan(normal)
        assert isinstance(costed.plan, UnionPlan)

    def test_empty_query_rejected(self, setup):
        from repro.rpq.rewrite import NormalForm

        planner = _planner(setup, Strategy.SEMI_NAIVE)
        with pytest.raises(PlanningError):
            planner.plan(NormalForm(has_epsilon=False, paths=()))

    def test_k_validated(self, setup):
        graph, _, stats = setup
        with pytest.raises(PlanningError):
            Planner(0, stats, graph, Strategy.NAIVE)

    def test_all_strategies_agree_on_answers(self, setup):
        graph, index, stats = setup
        for text in [
            "knows/knows/worksFor",
            "supervisor/^worksFor",
            "(knows|worksFor){1,2}",
            "knows{2,4}",
            "^knows/worksFor/knows",
        ]:
            normal = normalize(parse(text), star_bound_value=8)
            expected = eval_ast(graph, parse(text))
            for strategy in Strategy:
                planner = Planner(index.k, stats, graph, strategy)
                costed = planner.plan(normal)
                answer = set(execute(costed.plan, index, graph))
                assert answer == expected, (text, strategy)


def _scan_paths(plan):
    if isinstance(plan, IndexScanPlan):
        yield plan.path
    for child in plan.children():
        yield from _scan_paths(child)
