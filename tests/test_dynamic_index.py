"""Tests for incremental k-path index maintenance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PathIndexError
from repro.graph.examples import figure1_graph
from repro.graph.graph import Graph, LabelPath
from repro.indexes.dynamic import DynamicPathIndex, path_targets
from repro.indexes.pathindex import PathIndex


def _assert_equivalent(dynamic: DynamicPathIndex, k: int) -> None:
    """The dynamic index must equal a fresh rebuild over its graph."""
    fresh = PathIndex.build(dynamic.graph, k, prune_empty=False)
    for path in fresh.paths():
        assert dynamic.scan(path) == fresh.scan(path), path.encode()


class TestLookups:
    def test_matches_static_index_initially(self):
        graph = figure1_graph()
        dynamic = DynamicPathIndex(graph, k=2)
        _assert_equivalent(dynamic, 2)

    def test_scan_from_and_contains(self):
        graph = figure1_graph()
        dynamic = DynamicPathIndex(graph, k=2)
        static = PathIndex.build(figure1_graph(), k=2)
        path = LabelPath.of("knows", "worksFor")
        for node in graph.node_ids():
            assert dynamic.scan_from(path, node) == static.scan_from(path, node)
        pairs = static.scan(path)
        if pairs:
            assert dynamic.contains(path, *pairs[0])
        assert not dynamic.contains(path, 10_000, 10_000)

    def test_length_check(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=1)
        with pytest.raises(PathIndexError):
            dynamic.scan(LabelPath.of("knows", "knows"))

    def test_scan_swapped_matches_static_index(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        static = PathIndex.build(figure1_graph(), k=2)
        path = LabelPath.of("knows", "worksFor")
        assert (
            dynamic.scan_swapped(path).pairs()
            == static.scan_swapped(path).pairs()
        )

    def test_scan_swapped_falls_back_when_inverse_path_unindexed(self):
        """Regression: scan_swapped went through scan(path.inverted()),
        which silently returns the empty relation when the indexed path
        set excludes inverse steps — the forward relation must be
        sorted by target instead."""
        from repro.relation import Order

        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        path = LabelPath.of("knows", "worksFor")
        expected = dynamic.scan(path).to_set()
        assert expected
        # Restrict the indexed path set to forward-only paths, the
        # shape a future inverse-free index configuration produces.
        dynamic._relations = {
            encoded: pairs
            for encoded, pairs in dynamic._relations.items()
            if "-" not in encoded
        }
        dynamic._all_paths = [
            p for p in dynamic._all_paths
            if all(not step.inverse for step in p)
        ]
        swapped = dynamic.scan_swapped(path)
        assert swapped.order is Order.BY_TGT
        assert swapped.to_set() == expected
        assert list(swapped) == sorted(
            swapped.to_set(), key=lambda pair: (pair[1], pair[0])
        )


class TestInsert:
    def test_single_insert_matches_rebuild(self):
        graph = figure1_graph()
        dynamic = DynamicPathIndex(graph, k=2)
        assert dynamic.add_edge("ada", "knows", "kim")
        _assert_equivalent(dynamic, 2)

    def test_duplicate_insert_is_noop(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        before = dynamic.entry_count
        assert not dynamic.add_edge("ada", "knows", "zoe")  # exists
        assert dynamic.entry_count == before

    def test_insert_new_node(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert dynamic.add_edge("newbie", "knows", "kim")
        _assert_equivalent(dynamic, 2)

    def test_insert_new_label_triggers_rebuild(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert dynamic.add_edge("ada", "mentors", "zoe")
        assert "mentors" in dynamic.graph.labels()
        _assert_equivalent(dynamic, 2)

    def test_insert_self_loop(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert dynamic.add_edge("kim", "knows", "kim")
        _assert_equivalent(dynamic, 2)

    def test_sequence_of_inserts_k3(self):
        graph = Graph.from_edges([("a", "x", "b")])
        dynamic = DynamicPathIndex(graph, k=3)
        for edge in [("b", "x", "c"), ("c", "y", "a"), ("a", "y", "c"),
                     ("c", "x", "c")]:
            dynamic.add_edge(*edge)
            _assert_equivalent(dynamic, 3)


class TestDelete:
    def test_delete_matches_rebuild(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert dynamic.remove_edge("kim", "supervisor", "liz")
        assert not dynamic.graph.has_edge("kim", "supervisor", "liz")
        _assert_equivalent(dynamic, 2)

    def test_delete_missing_edge(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert not dynamic.remove_edge("kim", "knows", "kim")

    def test_delete_keeps_pairs_with_other_witnesses(self):
        # diamond: s->l->t and s->r->t; removing one leg keeps (s, t).
        graph = Graph.from_edges(
            [("s", "hop", "l"), ("l", "hop", "t"),
             ("s", "hop", "r"), ("r", "hop", "t")]
        )
        dynamic = DynamicPathIndex(graph, k=2)
        path = LabelPath.of("hop", "hop")
        s, t = graph.node_id("s"), graph.node_id("t")
        assert dynamic.contains(path, s, t)
        dynamic.remove_edge("s", "hop", "l")
        assert dynamic.contains(path, s, t)  # witness via r survives
        _assert_equivalent(dynamic, 2)

    def test_deleting_the_last_edge_of_a_label_retires_its_paths(self):
        """Regression: remove_edge never pruned _all_paths when a label
        died — counts_by_path()/entry_count/paths() kept reporting
        paths over labels with no edges left (asymmetric with add_edge,
        which rebuilds on a brand-new label)."""
        graph = Graph.from_edges(
            [("a", "solo", "b"), ("a", "knows", "b"), ("b", "knows", "c")]
        )
        dynamic = DynamicPathIndex(graph, k=2)
        assert any("solo" in path.encode() for path in dynamic.paths())
        assert dynamic.remove_edge("a", "solo", "b")
        assert "solo" not in dynamic.graph.labels()
        assert all("solo" not in path.encode() for path in dynamic.paths())
        assert all(
            "solo" not in encoded for encoded in dynamic.counts_by_path()
        )
        assert dynamic.entry_count == sum(dynamic.counts_by_path().values())
        _assert_equivalent(dynamic, 2)

    def test_label_death_then_rebirth_roundtrip(self):
        """Removing a label's last edge and re-adding it must land back
        on the rebuilt-from-scratch state on both sides."""
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        assert dynamic.remove_edge("kim", "supervisor", "liz")
        _assert_equivalent(dynamic, 2)
        assert dynamic.add_edge("kim", "supervisor", "liz")
        _assert_equivalent(dynamic, 2)

    def test_insert_then_delete_roundtrip(self):
        dynamic = DynamicPathIndex(figure1_graph(), k=2)
        baseline = {
            path.encode(): dynamic.scan(path) for path in dynamic.paths()
        }
        dynamic.add_edge("sam", "worksFor", "ada")
        dynamic.remove_edge("sam", "worksFor", "ada")
        for path in dynamic.paths():
            assert dynamic.scan(path) == baseline[path.encode()]


class TestRandomizedMaintenance:
    EDGE = st.tuples(
        st.sampled_from([f"n{i}" for i in range(5)]),
        st.sampled_from(["a", "b"]),
        st.sampled_from([f"n{i}" for i in range(5)]),
    )

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(EDGE, min_size=1, max_size=8),
        st.lists(st.tuples(st.booleans(), EDGE), max_size=10),
    )
    def test_mutation_stream_matches_rebuild(self, initial, operations):
        graph = Graph()
        for name in [f"n{i}" for i in range(5)]:
            graph.add_node(name)
        for edge in initial:
            graph.add_edge(*edge)
        dynamic = DynamicPathIndex(graph, k=2)
        for is_insert, edge in operations:
            if is_insert:
                dynamic.add_edge(*edge)
            else:
                dynamic.remove_edge(*edge)
        _assert_equivalent(dynamic, 2)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(EDGE, min_size=1, max_size=6),
           st.lists(EDGE, min_size=1, max_size=6))
    def test_mutation_stream_k3(self, initial, inserts):
        graph = Graph()
        for name in [f"n{i}" for i in range(5)]:
            graph.add_node(name)
        for edge in initial:
            graph.add_edge(*edge)
        dynamic = DynamicPathIndex(graph, k=3)
        for edge in inserts:
            dynamic.add_edge(*edge)
        _assert_equivalent(dynamic, 3)


class TestPathTargets:
    def test_matches_reference(self):
        from repro.rpq.semantics import eval_label_path

        graph = figure1_graph()
        path = LabelPath.of("knows", "knows-", "worksFor")
        relation = eval_label_path(graph, path)
        for source in graph.node_ids():
            expected = {b for a, b in relation if a == source}
            assert path_targets(graph, source, path) == expected
