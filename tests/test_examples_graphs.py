"""Tests pinning the reconstructed example graphs to the paper's text."""

from __future__ import annotations

from repro.graph.examples import diamond, figure1_graph, self_loop, two_triangles
from repro.rpq.semantics import eval_query


class TestFigure1Reconstruction:
    """Constraints the running text states about Gex (Section 2)."""

    def test_node_set(self, figure1):
        assert set(figure1.node_names()) == {
            "sue", "liz", "joe", "zoe", "sam", "tim", "kim", "ada", "jan",
        }

    def test_vocabulary(self, figure1):
        assert figure1.labels() == ("knows", "supervisor", "worksFor")

    def test_label_multiset(self, figure1):
        assert figure1.label_edge_count("knows") == 9
        assert figure1.label_edge_count("worksFor") == 6
        assert figure1.label_edge_count("supervisor") == 1

    def test_supervisor_worksfor_inverse_example(self, figure1):
        """supervisor ∘ worksFor⁻ (Gex) = {(kim, sue)} — Section 2.2."""
        assert eval_query(figure1, "supervisor/^worksFor") == {("kim", "sue")}

    def test_selectivity_example_numerator(self, figure1):
        """|supervisor ∘ knows(Gex)| = 1 — the sel example's numerator."""
        assert len(eval_query(figure1, "supervisor/knows")) == 1

    def test_sam_ada_in_paths2_not_paths1(self, figure1):
        """(sam, ada) ∈ paths_2 \\ paths_1, via the two paths through zoe."""
        from repro.graph.stats import paths_k_from

        sam = figure1.node_id("sam")
        ada = figure1.node_id("ada")
        assert ada not in paths_k_from(figure1, sam, 1)
        assert ada in paths_k_from(figure1, sam, 2)
        # the named witnesses: sam ←knows zoe →worksFor ada and
        #                      sam ←knows zoe ←knows ada
        assert ("sam", "ada") in eval_query(figure1, "^knows/worksFor")
        assert ("sam", "ada") in eval_query(figure1, "^knows/^knows")

    def test_no_direct_sam_ada_edge(self, figure1):
        assert not figure1.has_edge("sam", "knows", "ada")
        assert not figure1.has_edge("ada", "knows", "sam")


class TestSmallGraphs:
    def test_two_triangles_composition(self):
        graph = two_triangles()
        assert eval_query(graph, "red/red/red") == {
            ("a", "a"), ("b", "b"), ("c", "c"),
        }

    def test_two_triangles_cross_label(self):
        graph = two_triangles()
        # blue into red through the shared node a
        assert ("y", "b") in eval_query(graph, "blue/red")

    def test_diamond_deduplicates(self):
        graph = diamond()
        answer = eval_query(graph, "hop/hop")
        assert answer == {("s", "t")}

    def test_self_loop_fixpoint(self):
        graph = self_loop()
        assert eval_query(graph, "spin*") == {("o", "o")}
        assert eval_query(graph, "spin{2,5}") == {("o", "o")}

    def test_figure1_graph_fresh_instances(self):
        assert figure1_graph() is not figure1_graph()
        assert list(figure1_graph().edges()) == list(figure1_graph().edges())
