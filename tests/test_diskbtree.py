"""Tests for the page-based disk B+tree."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyOrderError, StorageError
from repro.storage.diskbtree import DiskBPlusTree
from repro.storage.records import encode_key

KEY_BYTES = st.binary(min_size=1, max_size=12)


@pytest.fixture()
def tree(tmp_path):
    with DiskBPlusTree(tmp_path / "t.db", page_size=256, cache_pages=16) as tree:
        yield tree


class TestBasics:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.get(b"missing") is None
        assert list(tree.items()) == []

    def test_insert_get(self, tree):
        assert tree.insert(b"alpha", b"1") is True
        assert tree.insert(b"beta", b"2") is True
        assert tree.get(b"alpha") == b"1"
        assert len(tree) == 2

    def test_overwrite(self, tree):
        tree.insert(b"k", b"old")
        assert tree.insert(b"k", b"new") is False
        assert tree.get(b"k") == b"new"
        assert len(tree) == 1

    def test_contains(self, tree):
        tree.insert(b"k", b"")
        assert b"k" in tree
        assert b"other" not in tree

    def test_many_inserts_cause_splits_and_stay_sorted(self, tree):
        keys = [encode_key((i,)) for i in range(500)]
        for key in reversed(keys):
            tree.insert(key, b"v")
        assert [key for key, _ in tree.items()] == keys
        assert len(tree) == 500

    def test_oversized_entry_rejected(self, tree):
        with pytest.raises(StorageError):
            tree.insert(b"k" * 300, b"v")

    def test_non_bytes_key_rejected(self, tree):
        with pytest.raises(StorageError):
            tree.insert("text", b"")


class TestDelete:
    def test_delete_existing(self, tree):
        for i in range(100):
            tree.insert(encode_key((i,)), b"v")
        assert tree.delete(encode_key((50,))) is True
        assert encode_key((50,)) not in tree
        assert len(tree) == 99

    def test_delete_missing(self, tree):
        assert tree.delete(b"ghost") is False

    def test_delete_all_then_reuse(self, tree):
        keys = [encode_key((i,)) for i in range(150)]
        for key in keys:
            tree.insert(key, b"v")
        for key in keys:
            assert tree.delete(key)
        assert len(tree) == 0
        tree.insert(b"fresh", b"x")
        assert tree.get(b"fresh") == b"x"


class TestScans:
    def test_range_scan(self, tree):
        for i in range(20):
            tree.insert(encode_key((i,)), str(i).encode())
        keys = [key for key, _ in tree.range_scan(encode_key((5,)), encode_key((9,)))]
        assert keys == [encode_key((i,)) for i in range(5, 9)]

    def test_prefix_scan(self, tree):
        for path_id in range(3):
            for src in range(4):
                tree.insert(encode_key((path_id, src)), b"")
        matched = [key for key, _ in tree.prefix_scan(encode_key((1,)))]
        assert matched == [encode_key((1, src)) for src in range(4)]

    def test_prefix_scan_empty(self, tree):
        tree.insert(b"aa", b"")
        assert list(tree.prefix_scan(b"zz")) == []


class TestPersistence:
    def test_reopen(self, tmp_path):
        path = tmp_path / "t.db"
        with DiskBPlusTree(path, page_size=256) as tree:
            for i in range(300):
                tree.insert(encode_key((i,)), str(i).encode())
        with DiskBPlusTree(path, page_size=256) as tree:
            assert len(tree) == 300
            assert tree.get(encode_key((123,))) == b"123"

    def test_reopen_after_deletes(self, tmp_path):
        path = tmp_path / "t.db"
        with DiskBPlusTree(path, page_size=256) as tree:
            for i in range(100):
                tree.insert(encode_key((i,)), b"")
            for i in range(0, 100, 2):
                tree.delete(encode_key((i,)))
        with DiskBPlusTree(path, page_size=256) as tree:
            assert len(tree) == 50
            assert [key for key, _ in tree.items()] == [
                encode_key((i,)) for i in range(1, 100, 2)
            ]


class TestBulkLoad:
    def test_bulk_load_matches_items(self, tmp_path):
        items = [(encode_key((i,)), str(i).encode()) for i in range(1000)]
        with DiskBPlusTree(tmp_path / "b.db", page_size=256) as tree:
            tree.bulk_load(items)
            assert len(tree) == 1000
            assert list(tree.items()) == items
            assert tree.get(encode_key((777,))) == b"777"

    def test_bulk_load_requires_empty(self, tree):
        tree.insert(b"x", b"")
        with pytest.raises(StorageError):
            tree.bulk_load([(b"y", b"")])

    def test_bulk_load_rejects_unsorted(self, tmp_path):
        with DiskBPlusTree(tmp_path / "b.db", page_size=256) as tree:
            with pytest.raises(KeyOrderError):
                tree.bulk_load([(b"b", b""), (b"a", b"")])

    def test_bulk_load_empty_iterable(self, tmp_path):
        with DiskBPlusTree(tmp_path / "b.db", page_size=256) as tree:
            tree.bulk_load([])
            assert len(tree) == 0

    def test_bulk_loaded_tree_supports_mutation(self, tmp_path):
        with DiskBPlusTree(tmp_path / "b.db", page_size=256) as tree:
            tree.bulk_load([(encode_key((i,)), b"") for i in range(200)])
            tree.insert(encode_key((5000,)), b"late")
            assert tree.delete(encode_key((13,)))
            assert tree.get(encode_key((5000,))) == b"late"
            assert len(tree) == 200


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(model=st.dictionaries(KEY_BYTES, st.binary(max_size=8), max_size=60))
    def test_matches_dict(self, model):
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "t.db"
            with DiskBPlusTree(path, page_size=256, cache_pages=8) as tree:
                for key, value in model.items():
                    tree.insert(key, value)
                assert len(tree) == len(model)
                assert list(tree.items()) == sorted(model.items())
                for key, value in model.items():
                    assert tree.get(key) == value

    @settings(max_examples=25, deadline=None)
    @given(
        inserts=st.lists(KEY_BYTES, unique=True, max_size=50),
        deletes=st.lists(KEY_BYTES, max_size=25),
    )
    def test_insert_delete_mixture(self, inserts, deletes):
        model: set = set()
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "t.db"
            with DiskBPlusTree(path, page_size=256, cache_pages=8) as tree:
                for key in inserts:
                    tree.insert(key, b"")
                    model.add(key)
                for key in deletes:
                    assert tree.delete(key) == (key in model)
                    model.discard(key)
                assert [key for key, _ in tree.items()] == sorted(model)
