"""Edge cases across the query engine: empty inputs, degenerate graphs."""

from __future__ import annotations

import pytest

from repro.api import GraphDatabase
from repro.engine.planner import Strategy
from repro.graph.examples import FIGURE1_EDGES
from repro.graph.graph import Graph

ALL_STRATEGIES = ("naive", "semi-naive", "minsupport", "minjoin")


@pytest.fixture(scope="module")
def db():
    return GraphDatabase.from_edges(FIGURE1_EDGES, k=2)


class TestDegenerateGraphs:
    def test_single_node_no_edges(self):
        graph = Graph()
        graph.add_node("only")
        database = GraphDatabase(graph, k=1)
        assert database.query("<eps>").pairs == frozenset({("only", "only")})

    def test_edgeless_graph_label_query(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        database = GraphDatabase(graph, k=2)
        # the vocabulary is empty; any label mentioned is simply absent
        assert database.query("ghost{1,3}").pairs == frozenset()

    def test_self_loop_only(self):
        database = GraphDatabase(Graph.from_edges([("o", "spin", "o")]), k=2)
        for method in ALL_STRATEGIES:
            result = database.query("spin{1,4}", method=method)
            assert result.pairs == frozenset({("o", "o")})

    def test_parallel_labels_same_pair(self):
        database = GraphDatabase(
            Graph.from_edges([("x", "a", "y"), ("x", "b", "y")]), k=2
        )
        assert database.query("a|b").pairs == frozenset({("x", "y")})
        assert database.query("a/^b").pairs == frozenset({("x", "x")})


class TestEmptyAnswers:
    @pytest.mark.parametrize("method", ALL_STRATEGIES)
    def test_unknown_label_every_strategy(self, db, method):
        assert db.query("nonexistent", method=method).pairs == frozenset()

    @pytest.mark.parametrize("method", ALL_STRATEGIES)
    def test_empty_composition(self, db, method):
        # supervisor/supervisor is empty in figure 1
        result = db.query("supervisor/supervisor", method=method)
        assert result.pairs == frozenset()

    def test_empty_base_star_is_identity(self, db):
        result = db.query("nonexistent*")
        expected = frozenset(
            (name, name) for name in db.graph.node_names()
        )
        assert result.pairs == expected

    def test_empty_middle_kills_long_disjunct(self, db):
        result = db.query("knows/supervisor/supervisor/knows")
        assert result.pairs == frozenset()


class TestLongDisjuncts:
    @pytest.mark.parametrize("method", ALL_STRATEGIES)
    def test_disjunct_much_longer_than_k(self, db, method):
        text = "knows/knows/knows/knows/knows/knows/knows"
        reference = db.query(text, method="reference")
        assert db.query(text, method=method).pairs == reference.pairs

    def test_exact_repetition_of_composite(self, db):
        text = "(knows/worksFor){3}"
        reference = db.query(text, method="reference")
        for method in ALL_STRATEGIES:
            assert db.query(text, method=method).pairs == reference.pairs


class TestKExtremes:
    def test_k_larger_than_every_query(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=3)
        result = database.query("knows/worksFor")
        # single scan plan: no joins at all
        assert result.report is not None
        assert result.report.plan is not None
        assert result.report.plan.plan.join_count() == 0

    def test_k1_index_answers_everything(self):
        database = GraphDatabase.from_edges(FIGURE1_EDGES, k=1)
        reference = GraphDatabase.from_edges(FIGURE1_EDGES, k=3)
        for text in ("knows/knows/worksFor", "(knows|worksFor){2,3}"):
            assert (
                database.query(text).pairs == reference.query(text).pairs
            )


class TestPlanShapeInvariants:
    def test_semi_naive_has_at_most_one_merge_join_per_disjunct(self, db):
        normal = db.normal_form("knows/knows/knows/knows/knows")
        from repro.engine.planner import Planner

        planner = Planner(db.k, db.histogram, db.graph, Strategy.SEMI_NAIVE)
        costed = planner.plan(normal)
        assert costed.plan.merge_join_count() <= 1

    def test_naive_scans_are_all_single_steps(self, db):
        from repro.engine.plan import IndexScanPlan
        from repro.engine.planner import Planner

        normal = db.normal_form("knows/worksFor/knows")
        planner = Planner(db.k, db.histogram, db.graph, Strategy.NAIVE)
        costed = planner.plan(normal)

        def scans(plan):
            if isinstance(plan, IndexScanPlan):
                yield plan
            for child in plan.children():
                yield from scans(child)

        assert all(len(scan.path) == 1 for scan in scans(costed.plan))

    def test_minjoin_scan_count_is_ceil_n_over_k(self, db):
        from repro.engine.planner import Planner
        from repro.graph.graph import LabelPath

        planner = Planner(db.k, db.histogram, db.graph, Strategy.MIN_JOIN)
        for length in range(1, 8):
            path = LabelPath.of(*["knows"] * length)
            costed = planner.plan_path(path)
            assert costed.plan.scan_count() == -(-length // db.k)
