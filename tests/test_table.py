"""Tests for the minimal typed relation."""

from __future__ import annotations

import pytest

from repro.errors import StorageError, ValidationError
from repro.storage.table import Column, Table


@pytest.fixture()
def paths_table() -> Table:
    table = Table(
        "paths",
        [Column("path", "str"), Column("k", "int"), Column("count", "int")],
        key_width=2,
    )
    table.insert(("knows", 1, 9))
    table.insert(("knows", 2, 31))
    table.insert(("worksFor", 1, 6))
    return table


class TestSchema:
    def test_rejects_unknown_type(self):
        with pytest.raises(ValidationError):
            Column("x", "blob")

    def test_rejects_empty_schema(self):
        with pytest.raises(ValidationError):
            Table("t", [], key_width=1)

    def test_rejects_bad_key_width(self):
        with pytest.raises(ValidationError):
            Table("t", [Column("a", "int")], key_width=2)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValidationError):
            Table("t", [Column("a", "int"), Column("a", "str")], key_width=1)

    def test_type_checking(self, paths_table):
        with pytest.raises(ValidationError):
            paths_table.insert(("x", "not-an-int", 3))

    def test_bool_is_not_int(self, paths_table):
        with pytest.raises(ValidationError):
            paths_table.insert(("x", True, 3))

    def test_int_promotes_to_float(self):
        table = Table("t", [Column("a", "str"), Column("v", "float")], key_width=1)
        table.insert(("x", 3))
        assert table.get(("x",)) == ("x", 3.0)

    def test_row_arity_checked(self, paths_table):
        with pytest.raises(ValidationError):
            paths_table.insert(("too", 1))


class TestCrud:
    def test_get_full_key(self, paths_table):
        assert paths_table.get(("knows", 2)) == ("knows", 2, 31)
        assert paths_table.get(("knows", 9)) is None

    def test_lookup_prefix(self, paths_table):
        rows = paths_table.lookup(("knows",))
        assert rows == [("knows", 1, 9), ("knows", 2, 31)]

    def test_lookup_prefix_too_wide(self, paths_table):
        with pytest.raises(ValidationError):
            paths_table.lookup(("knows", 1, 9))

    def test_duplicate_key_rejected(self, paths_table):
        with pytest.raises(StorageError):
            paths_table.insert(("knows", 1, 99))

    def test_upsert_overwrites(self, paths_table):
        paths_table.upsert(("knows", 1, 99))
        assert paths_table.get(("knows", 1)) == ("knows", 1, 99)
        assert len(paths_table) == 3

    def test_delete(self, paths_table):
        assert paths_table.delete(("knows", 1)) is True
        assert paths_table.delete(("knows", 1)) is False
        assert len(paths_table) == 2

    def test_scan_order(self, paths_table):
        assert [row[0] for row in paths_table.scan()] == [
            "knows", "knows", "worksFor",
        ]

    def test_where(self, paths_table):
        big = list(paths_table.where(lambda row: row[2] > 10))
        assert big == [("knows", 2, 31)]

    def test_column_index(self, paths_table):
        assert paths_table.column_index("count") == 2
        with pytest.raises(ValidationError):
            paths_table.column_index("missing")


class TestPersistence:
    def test_json_roundtrip(self, paths_table, tmp_path):
        path = tmp_path / "t.json"
        paths_table.save_json(path)
        loaded = Table.load_json(path)
        assert list(loaded.scan()) == list(paths_table.scan())
        assert loaded.key_width == paths_table.key_width
        assert [c.name for c in loaded.columns] == [
            c.name for c in paths_table.columns
        ]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rows": []}')
        with pytest.raises(StorageError):
            Table.load_json(path)
