"""End-to-end integration scenarios across the whole stack."""

from __future__ import annotations

import pytest

from repro.api import GraphDatabase
from repro.graph.examples import FIGURE1_EDGES
from repro.graph.generators import advogato_like, grid
from repro.graph.io import save_edgelist
from repro.graph.graph import Graph
from repro.graph import transform


class TestFileToAnswerPipeline:
    """Load from disk -> index -> query -> witness, like a real user."""

    def test_full_cycle(self, tmp_path):
        graph = Graph.from_edges(FIGURE1_EDGES)
        path = tmp_path / "people.tsv"
        save_edgelist(graph, path)

        with GraphDatabase.from_file(path, k=2) as db:
            result = db.query("supervisor/^worksFor")
            assert result.pairs == frozenset({("kim", "sue")})
            witness = db.witness("kim", "sue", "supervisor/^worksFor")
            assert witness is not None and witness.length == 2

    def test_disk_index_cycle(self, tmp_path):
        graph = Graph.from_edges(FIGURE1_EDGES)
        data = tmp_path / "people.json"
        from repro.graph.io import save_json

        save_json(graph, data)
        with GraphDatabase.from_file(
            data, k=2, backend="disk", index_path=tmp_path / "people.idx"
        ) as db:
            baseline = GraphDatabase(graph, k=2)
            for text in ("knows/knows", "^worksFor/knows", "knows{1,2}"):
                assert db.query(text).pairs == baseline.query(text).pairs


class TestMethodsAgreeAtScale:
    METHODS = ("naive", "semi-naive", "minsupport", "minjoin",
               "automaton", "dfa", "datalog")

    @pytest.fixture(scope="class")
    def db(self):
        return GraphDatabase(advogato_like(nodes=80, edges=480, seed=31), k=2)

    @pytest.mark.parametrize(
        "text",
        [
            "master/journeyer",
            "^apprentice/master",
            "(master|journeyer){1,2}",
            "journeyer{2,3}",
            "master/journeyer/apprentice",
        ],
    )
    def test_seven_way_agreement(self, db, text):
        answers = {
            method: db.query(text, method=method).pairs
            for method in self.METHODS
        }
        reference = db.query(text, method="reference").pairs
        for method, pairs in answers.items():
            assert pairs == reference, method


class TestPreprocessedGraphPipeline:
    """Transform -> index -> query (the data-preparation workflow)."""

    def test_neighborhood_then_query(self):
        graph = advogato_like(nodes=120, edges=700, seed=17)
        center = graph.node_name(0)
        local = transform.neighborhood(graph, center, radius=2)
        db = GraphDatabase(local, k=2)
        result = db.query_from(center, "master{1,2}")
        full_db = GraphDatabase(graph, k=2)
        # targets within the (radius-covering) local view agree
        full = full_db.query_from(center, "master{1,2}")
        assert result <= full

    def test_relabeled_graph_queries(self):
        graph = Graph.from_edges(FIGURE1_EDGES)
        merged = transform.relabel(
            graph, {"knows": "link", "worksFor": "link", "supervisor": "link"}
        )
        db = GraphDatabase(merged, k=2)
        # every pair connected by any 2 steps forward
        result = db.query("link/link")
        reference = db.query("link/link", method="reference")
        assert result.pairs == reference.pairs


class TestGridGroundTruth:
    """A structured graph where answers are hand-computable."""

    def test_lattice_paths(self):
        db = GraphDatabase(grid(4, 4), k=2)
        # exactly one monotone path shape right,right,down from (0,0)
        result = db.query("right/right/down")
        assert ("c0_0", "c2_1") in result.pairs
        # count: sources with x <= 1 and y <= 2: 2 columns * 3 rows? width 4:
        # x in {0,1}, y in {0,1,2} -> 6 answers
        assert len(result.pairs) == 6

    def test_bounded_recursion_on_grid(self):
        db = GraphDatabase(grid(3, 3), k=2)
        result = db.query("(right|down){2}")
        reference = db.query("(right|down){2}", method="reference")
        assert result.pairs == reference.pairs

    def test_single_source_on_grid(self):
        db = GraphDatabase(grid(3, 3), k=2)
        targets = db.query_from("c0_0", "right{1,2}")
        assert targets == frozenset({"c1_0", "c2_0"})


class TestStatisticsConsistency:
    def test_histogram_vs_exact_on_real_workload(self):
        db = GraphDatabase(advogato_like(nodes=100, edges=600, seed=23), k=2)
        for text in ("master/journeyer", "journeyer{1,3}"):
            approx = db.query(text, use_exact_statistics=False)
            exact = db.query(text, use_exact_statistics=True)
            assert approx.pairs == exact.pairs

    def test_selectivity_sums_sanely(self):
        db = GraphDatabase(Graph.from_edges(FIGURE1_EDGES), k=2)
        total = sum(
            db.exact_statistics.selectivity(path)
            for path in db.index.paths()
            if len(path) <= 2
        )
        # Selectivities are fractions of |paths_k|; the sum over all
        # indexed paths can exceed 1 (paths overlap) but must be finite
        # and positive.
        assert total > 0.0
