"""Hypothesis strategies for graphs, label paths and RPQ ASTs.

Kept deliberately small-scale: the cross-validation properties run
several evaluators per example, so examples must stay cheap.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.graph import Graph, LabelPath, Step
from repro.rpq import ast

LABELS = ("a", "b", "c")


@st.composite
def graphs(
    draw,
    max_nodes: int = 8,
    max_edges: int = 16,
    labels: tuple[str, ...] = LABELS,
) -> Graph:
    """A small random edge-labeled digraph."""
    node_count = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [f"n{i}" for i in range(node_count)]
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(nodes),
                st.sampled_from(labels),
                st.sampled_from(nodes),
            ),
            max_size=max_edges,
        )
    )
    graph = Graph()
    for name in nodes:
        graph.add_node(name)
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    return graph


@st.composite
def steps(draw, labels: tuple[str, ...] = LABELS) -> Step:
    return Step(draw(st.sampled_from(labels)), inverse=draw(st.booleans()))


@st.composite
def label_paths(
    draw, max_length: int = 4, labels: tuple[str, ...] = LABELS
) -> LabelPath:
    length = draw(st.integers(min_value=1, max_value=max_length))
    return LabelPath([draw(steps(labels)) for _ in range(length)])


def _leaves(labels: tuple[str, ...]):
    label_nodes = st.sampled_from(labels).map(ast.label)
    inverse_nodes = st.sampled_from(labels).map(ast.inv_label)
    return st.one_of(label_nodes, inverse_nodes, st.just(ast.Epsilon()))


def _repeats(children):
    return st.builds(
        lambda child, low, extra: ast.repeat(child, low, low + extra),
        children,
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    )


def rpq_asts(
    labels: tuple[str, ...] = LABELS,
    max_leaves: int = 5,
    allow_star: bool = False,
):
    """Random RPQ ASTs, bounded-recursion-only by default."""

    def extend(children):
        combinators = [
            st.tuples(children, children).map(lambda pair: ast.concat(*pair)),
            st.tuples(children, children).map(lambda pair: ast.union(*pair)),
            _repeats(children),
            children.map(ast.Inverse),
        ]
        if allow_star:
            combinators.append(children.map(ast.star))
        return st.one_of(combinators)

    return st.recursive(_leaves(labels), extend, max_leaves=max_leaves)
