"""Prepared-query templates and the persistent plan-artifact cache.

The governing property is *transparency with receipts*: for every
binding, ``prepare(t).bind(**p).run()`` must return exactly what
``query()`` returns on the substituted text — across mutations, shard
counts and both kernel paths — while the ``cache_info()`` counters
prove when planning was actually skipped.  Around that sit the
artifact-store contracts: a restarted disk-backed service answers its
first prepared query with zero planning calls, and every stale,
corrupt or tampered artifact fails open to re-planning, never to a
wrong answer.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import relation as rel
from repro.api import GraphDatabase
from repro.engine import prepared as prepared_module
from repro.engine.prepared import PlanArtifactStore, PreparedStatement
from repro.errors import (
    ParseError,
    QueryTimeoutError,
    TransientStorageError,
    ValidationError,
)
from repro.graph.examples import FIGURE1_EDGES, figure1_graph
from repro.rpq import ast
from repro.rpq.parser import parse, parse_template

from tests.strategies import graphs

BOTH_PATHS = pytest.mark.parametrize(
    "pure_python", [False, True], ids=["vectorized", "scalar"]
)


@contextmanager
def forced_path(pure_python: bool):
    """Route kernels through one implementation path for the duration."""
    old_flag, old_min = rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN
    rel._FORCE_PURE_PYTHON = pure_python
    if not pure_python:
        rel._VECTOR_MIN = 0
    try:
        yield
    finally:
        rel._FORCE_PURE_PYTHON, rel._VECTOR_MIN = old_flag, old_min


def prepared_info(database: GraphDatabase) -> dict[str, int]:
    info = database.cache_info()
    return {
        key: info[key]
        for key in (
            "prepared_hits",
            "prepared_misses",
            "prepared_invalidations",
            "artifact_loads",
            "plans_computed",
        )
    }


# -- template syntax ----------------------------------------------------------


class TestTemplateParsing:
    def test_plain_parse_rejects_parameters(self):
        with pytest.raises(ParseError, match="only allowed in templates"):
            parse("knows{1,$n}")

    def test_parameter_not_allowed_as_atom(self):
        with pytest.raises(ParseError, match="not as a path atom"):
            parse_template("knows/$n")

    def test_bound_parameters_collected(self):
        template = parse_template("a{$lo,$hi}/b{2,$hi}")
        assert sorted(template.bound_params) == ["hi", "lo"]
        assert template.params == template.bound_params
        assert not template.anchored

    def test_anchor_parameter(self):
        template = parse_template("from($v): a{1,$n}/b")
        assert template.anchor_param == "v"
        assert template.anchor_name is None
        assert sorted(template.params) == ["n", "v"]
        assert str(template) == "from($v): a{1,$n}/b"

    def test_literal_anchor(self):
        template = parse_template("from(alice): a/b")
        assert template.anchor_name == "alice"
        assert template.anchor_param is None
        assert template.params == frozenset()
        assert template.anchored

    def test_from_is_still_a_legal_label(self):
        # 'from' only means anchoring when followed by '(' — as a bare
        # label (or concat head) it parses like any other identifier.
        template = parse_template("from/knows")
        assert not template.anchored
        assert str(template.node) == "from/knows"

    def test_template_unparse_round_trips(self):
        text = "a{$lo,$hi}/(b|^c){2,$hi}"
        assert str(parse_template(str(parse_template(text).node)).node) == str(
            parse_template(text).node
        )

    def test_substitution_validates_bindings(self):
        node = parse_template("a{$lo,$hi}").node
        assert str(ast.substitute_params(node, {"lo": 1, "hi": 3})) == "a{1,3}"
        with pytest.raises(ValidationError, match="missing value"):
            ast.substitute_params(node, {"lo": 1})
        with pytest.raises(ValidationError, match="integer repetition"):
            ast.substitute_params(node, {"lo": 1, "hi": "three"})
        with pytest.raises(ValidationError, match="integer repetition"):
            ast.substitute_params(node, {"lo": 1, "hi": True})
        with pytest.raises(ValidationError, match=">= 0"):
            ast.substitute_params(node, {"lo": -1, "hi": 3})
        with pytest.raises(ValidationError, match="low <= high"):
            ast.substitute_params(node, {"lo": 5, "hi": 2})
        with pytest.raises(ValidationError, match="exceeds the maximum"):
            ast.substitute_params(node, {"lo": 1, "hi": 99}, max_bound=10)


# -- prepare / bind validation ------------------------------------------------


class TestPrepareBind:
    def test_baselines_cannot_be_prepared(self):
        database = GraphDatabase(figure1_graph(), k=2)
        with pytest.raises(ValidationError, match="no plan to cache"):
            database.prepare("supervisor/^worksFor", method="automaton")

    def test_binding_must_match_parameters_exactly(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("from($v): supervisor{1,$n}")
        with pytest.raises(ValidationError, match="missing \\['n'\\]"):
            statement.bind(v="kim")
        with pytest.raises(ValidationError, match="unexpected \\['x'\\]"):
            statement.bind(v="kim", n=1, x=2)

    def test_anchor_value_must_be_a_node_name(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("from($v): supervisor")
        with pytest.raises(ValidationError, match="must be a node name"):
            statement.bind(v=3)

    def test_template_with_no_parameters_is_legal(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("supervisor/^worksFor")
        first = statement.bind().run()
        second = statement.run()
        expected = database.query("supervisor/^worksFor", use_cache=False)
        assert first.pairs == second.pairs == expected.pairs
        assert prepared_info(database)["prepared_hits"] == 1


# -- equivalence with query() -------------------------------------------------


class TestPreparedEqualsQuery:
    @BOTH_PATHS
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_across_mutations_and_shards(self, pure_python, shards):
        template = "(supervisor|worksFor|^worksFor){1,$n}"
        with forced_path(pure_python):
            database = GraphDatabase.from_edges(
                FIGURE1_EDGES, k=2, shards=shards
            )
            statement = database.prepare(template)

            def check(n: int) -> None:
                bound_text = f"(supervisor|worksFor|^worksFor){{1,{n}}}"
                expected = database.query(bound_text, use_cache=False)
                assert statement.bind(n=n).run().pairs == expected.pairs

            check(1)
            check(2)
            check(2)  # second run of the same binding: plan-cache hit
            assert database.add_edge("kim", "supervisor", "ann") is not None
            check(2)
            assert database.remove_edge("kim", "supervisor", "ann") is not None
            check(2)
            database.build_index()  # same graph, fresh statistics epoch
            check(2)
        info = prepared_info(database)
        assert info["prepared_hits"] >= 1
        assert info["prepared_invalidations"] >= 3  # two mutations + rebuild
        assert info["plans_computed"] == info["prepared_misses"]

    @settings(max_examples=15, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), st.integers(0, 2))
    def test_property_random_graphs(self, graph, n):
        database = GraphDatabase(graph, k=2)
        statement = database.prepare("(a|^b){$lo,$hi}")
        result = statement.bind(lo=0, hi=n).run()
        expected = database.query(f"(a|^b){{0,{n}}}", use_cache=False)
        assert result.pairs == expected.pairs

    def test_anchored_matches_query_from(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("from($v): (supervisor|worksFor){1,$n}")
        for source in ("kim", "sue", "joe"):
            result = statement.bind(v=source, n=2).run()
            expected = database.query_from(
                source, "(supervisor|worksFor){1,2}"
            )
            assert {target for _, target in result.pairs} == expected
            assert all(found == source for found, _ in result.pairs)

    def test_anchor_values_share_one_plan(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("from($v): supervisor/^worksFor")
        statement.bind(v="kim").run()
        statement.bind(v="sue").run()
        info = prepared_info(database)
        assert info["plans_computed"] == 1
        assert info["prepared_hits"] == 1

    def test_prepared_bypasses_result_cache(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("supervisor{1,$n}")
        first = statement.bind(n=2).run()
        second = statement.bind(n=2).run()
        assert not first.cached and not second.cached
        assert second.report is not None  # really executed, not replayed


# -- the per-statement plan cache ---------------------------------------------


class TestStatementPlanCache:
    def test_lru_eviction_is_bounded(self, monkeypatch):
        monkeypatch.setattr(prepared_module, "PLAN_CACHE_MAX", 2)
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("supervisor{1,$n}")
        for n in (1, 2, 3, 4):
            statement.bind(n=n).run()
        assert statement.cached_plan_count() == 2
        statement.bind(n=4).run()  # newest binding survived
        assert prepared_info(database)["prepared_hits"] == 1

    def test_distinct_bindings_plan_separately(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("supervisor{1,$n}")
        statement.bind(n=1).run()
        statement.bind(n=2).run()
        assert statement.cached_plan_count() == 2
        assert prepared_info(database)["plans_computed"] == 2


# -- the persistent artifact store --------------------------------------------


def disk_database(path: Path, shards: int = 1, **kwargs) -> GraphDatabase:
    return GraphDatabase.from_edges(
        FIGURE1_EDGES,
        k=2,
        backend="disk",
        index_path=path / "index.db",
        shards=shards,
        **kwargs,
    )


class TestPlanArtifacts:
    TEMPLATE = "(supervisor|worksFor|^worksFor){2,$n}"

    @pytest.mark.parametrize("shards", [1, 2])
    def test_restart_answers_with_zero_planning(self, tmp_path, shards):
        with disk_database(tmp_path, shards=shards) as database:
            baseline = database.prepare(self.TEMPLATE).bind(n=4).run()
            assert prepared_info(database)["plans_computed"] == 1
        artifact = tmp_path / "index.db.plans.json"
        assert artifact.exists()
        with disk_database(tmp_path, shards=shards) as restarted:
            result = restarted.prepare(self.TEMPLATE).bind(n=4).run()
            info = prepared_info(restarted)
        assert result.pairs == baseline.pairs
        assert info["plans_computed"] == 0, "restart must not plan"
        assert info["artifact_loads"] == 1

    def test_artifact_survives_resharding(self, tmp_path):
        # Plans are shard-layout independent: scatter planning happens
        # at execution time, so re-sharding keeps the artifacts.
        with disk_database(tmp_path, shards=1) as database:
            database.prepare(self.TEMPLATE).bind(n=4).run()
        with disk_database(tmp_path, shards=2) as restarted:
            restarted.prepare(self.TEMPLATE).bind(n=4).run()
            assert prepared_info(restarted)["plans_computed"] == 0

    def test_stale_artifact_rejected_after_graph_change(self, tmp_path):
        with disk_database(tmp_path) as database:
            database.prepare(self.TEMPLATE).bind(n=4).run()
        changed = GraphDatabase.from_edges(
            list(FIGURE1_EDGES) + [("zed", "knows", "kim")],
            k=2,
            backend="disk",
            index_path=tmp_path / "index.db",
        )
        try:
            changed.prepare(self.TEMPLATE).bind(n=4).run()
            info = prepared_info(changed)
        finally:
            changed.close()
        assert info["artifact_loads"] == 0
        assert info["plans_computed"] == 1

    def test_corrupt_artifact_fails_open(self, tmp_path):
        with disk_database(tmp_path) as database:
            expected = database.prepare(self.TEMPLATE).bind(n=4).run()
        artifact = tmp_path / "index.db.plans.json"
        artifact.write_text("{ this is not json", encoding="utf-8")
        with disk_database(tmp_path) as restarted:
            result = restarted.prepare(self.TEMPLATE).bind(n=4).run()
            info = prepared_info(restarted)
        assert result.pairs == expected.pairs
        assert info["plans_computed"] == 1

    def test_tampered_entry_fails_open(self, tmp_path):
        with disk_database(tmp_path) as database:
            expected = database.prepare(self.TEMPLATE).bind(n=4).run()
        artifact = tmp_path / "index.db.plans.json"
        document = json.loads(artifact.read_text(encoding="utf-8"))
        for entry in document["entries"].values():
            entry["query"] = "supervisor"  # plan no longer matches
        artifact.write_text(json.dumps(document), encoding="utf-8")
        with disk_database(tmp_path) as restarted:
            result = restarted.prepare(self.TEMPLATE).bind(n=4).run()
            info = prepared_info(restarted)
        assert result.pairs == expected.pairs
        assert info["artifact_loads"] == 0
        assert info["plans_computed"] == 1

    def test_memory_backend_is_inert(self):
        database = GraphDatabase(figure1_graph(), k=2)
        database.prepare("supervisor{1,$n}").bind(n=2).run()
        assert database.cache_info()["plan_artifacts"] == 0
        assert not database._plan_store.enabled

    def test_store_roundtrip_unit(self, tmp_path):
        path = tmp_path / "plans.json"
        store = PlanArtifactStore(path)
        store.open("fp")
        store.store("key", {"hello": 1})
        fresh = PlanArtifactStore(path)
        assert fresh.open("fp") == 1
        assert fresh.load("key") == {"hello": 1}
        assert fresh.load("other") is None
        # A different fingerprint drops everything.
        assert fresh.open("other-fp") == 0
        assert fresh.load("key") is None


# -- serialization round-trip -------------------------------------------------


class TestArtifactRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            "supervisor",
            "supervisor/^worksFor",
            "(supervisor|worksFor){1,2}",
            "<eps>|supervisor{2,3}",
        ],
    )
    def test_prepared_round_trips_through_json(self, query):
        from repro.engine.executor import prepare_ast
        from repro.engine.prepared import (
            artifact_from_prepared,
            prepared_from_artifact,
        )

        database = GraphDatabase(figure1_graph(), k=2)
        prepared = prepare_ast(
            parse(query),
            database.index,
            database.graph,
            database.histogram,
            database.prepare(query).strategy,
            4096,
        )
        payload = json.loads(json.dumps(artifact_from_prepared(prepared)))
        revived = prepared_from_artifact(payload)
        assert revived is not None
        assert revived.costed is not None and prepared.costed is not None
        assert revived.costed.plan == prepared.costed.plan
        assert revived.costed.cost == prepared.costed.cost
        assert revived.disjunct_paths == prepared.disjunct_paths
        assert str(revived.node) == str(prepared.node)

    def test_statement_repr_mentions_strategy(self):
        database = GraphDatabase(figure1_graph(), k=2)
        statement = database.prepare("supervisor{1,$n}", method="minjoin")
        assert isinstance(statement, PreparedStatement)
        assert "minjoin" in repr(statement)


# -- resilience taxonomy vs fail-open -----------------------------------------


class TestArtifactTaxonomyPropagation:
    """``prepared_from_artifact`` fails open for *defects* only.

    A deadline or retryable-fault exception raised while decoding an
    artifact belongs to the resilience taxonomy and must reach the
    caller — degrading it into silent re-planning would erase the very
    signal the timeout/chaos machinery exists to deliver (regression
    for the broad handler at engine/prepared.py, rule
    ``error-taxonomy``).
    """

    def _payload(self) -> dict:
        from repro.engine.executor import prepare_ast
        from repro.engine.prepared import artifact_from_prepared

        database = GraphDatabase(figure1_graph(), k=2)
        query = "supervisor/^worksFor"
        prepared = prepare_ast(
            parse(query),
            database.index,
            database.graph,
            database.histogram,
            database.prepare(query).strategy,
            4096,
        )
        payload = artifact_from_prepared(prepared)
        assert payload is not None
        return json.loads(json.dumps(payload))

    def test_timeout_during_decode_propagates(self, monkeypatch):
        from repro.engine.prepared import prepared_from_artifact

        payload = self._payload()

        def expired(obj):
            raise QueryTimeoutError("deadline expired during plan decode")

        monkeypatch.setattr(prepared_module, "_plan_from_obj", expired)
        with pytest.raises(QueryTimeoutError):
            prepared_from_artifact(payload)

    def test_transient_fault_during_decode_propagates(self, monkeypatch):
        from repro.engine.prepared import prepared_from_artifact

        payload = self._payload()

        def flaky(obj):
            raise TransientStorageError("injected retryable fault")

        monkeypatch.setattr(prepared_module, "_plan_from_obj", flaky)
        with pytest.raises(TransientStorageError):
            prepared_from_artifact(payload)

    def test_defects_still_fail_open(self):
        from repro.engine.prepared import prepared_from_artifact

        assert prepared_from_artifact({}) is None
        payload = self._payload()
        payload["strategy"] = "no-such-strategy"
        assert prepared_from_artifact(payload) is None
