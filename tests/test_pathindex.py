"""Tests for the k-path index: Example 3.1 lookups, both backends."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import PathIndexError, ValidationError
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.indexes.pathindex import PathIndex
from repro.rpq.semantics import eval_label_path

from tests.strategies import graphs


@pytest.fixture(scope="module")
def fig1_index():
    return PathIndex.build(figure1_graph(), k=3)


class TestScan:
    def test_scan_matches_reference(self, fig1_index):
        graph = fig1_index.graph
        path = LabelPath.of("knows", "knows", "worksFor")
        assert set(fig1_index.scan(path)) == eval_label_path(graph, path)

    def test_scan_is_sorted(self, fig1_index):
        path = LabelPath.of("knows", "knows")
        pairs = fig1_index.scan(path)
        assert pairs == sorted(pairs)

    def test_scan_unknown_path_is_empty(self, fig1_index):
        # supervisor/supervisor is empty (only one supervisor edge)
        assert fig1_index.scan(LabelPath.of("supervisor", "supervisor")) == []

    def test_scan_too_long_raises(self, fig1_index):
        with pytest.raises(PathIndexError):
            fig1_index.scan(LabelPath.of("knows", "knows", "knows", "knows"))

    def test_scan_swapped_is_target_sorted_same_relation(self, fig1_index):
        path = LabelPath.of("knows", "worksFor")
        direct = fig1_index.scan(path)
        swapped = fig1_index.scan_swapped(path)
        assert set(direct) == set(swapped)
        assert swapped == sorted(swapped, key=lambda pair: (pair[1], pair[0]))

    def test_example31_prefix_lookup(self, fig1_index):
        """I(p, a) returns the sorted targets — Example 3.1's shape."""
        graph = fig1_index.graph
        path = LabelPath.of("knows", "knows", "worksFor")
        jan = graph.node_id("jan")
        targets = fig1_index.scan_from(path, jan)
        expected = sorted(
            b for a, b in eval_label_path(graph, path) if a == jan
        )
        assert targets == expected

    def test_example31_membership(self, fig1_index):
        graph = fig1_index.graph
        path = LabelPath.of("knows", "knows", "worksFor")
        relation = eval_label_path(graph, path)
        inside = next(iter(relation))
        assert fig1_index.contains(path, *inside)
        assert not fig1_index.contains(path, graph.node_id("sue"),
                                       graph.node_id("sue")) or (
            (graph.node_id("sue"), graph.node_id("sue")) in relation
        )

    def test_counts_match_relations(self, fig1_index):
        graph = fig1_index.graph
        for path in fig1_index.paths():
            assert fig1_index.count(path) == len(eval_label_path(graph, path))

    def test_entry_count_is_total(self, fig1_index):
        total = sum(
            fig1_index.count(path) for path in fig1_index.paths()
        )
        assert fig1_index.entry_count == total


class TestBuildOptions:
    def test_k_validation(self):
        with pytest.raises(ValidationError):
            PathIndex.build(figure1_graph(), k=0)

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            PathIndex.build(figure1_graph(), k=1, backend="cloud")

    def test_disk_backend_requires_path(self):
        with pytest.raises(ValidationError):
            PathIndex.build(figure1_graph(), k=1, backend="disk")

    def test_repr(self, fig1_index):
        text = repr(fig1_index)
        assert "k=3" in text and "memory" in text


class TestDiskBackend:
    def test_disk_equals_memory(self, tmp_path):
        graph = figure1_graph()
        memory = PathIndex.build(graph, k=2, backend="memory")
        with PathIndex.build(
            graph, k=2, backend="disk", path=tmp_path / "i.db"
        ) as disk:
            assert disk.entry_count == memory.entry_count
            for path in memory.paths():
                assert disk.scan(path) == memory.scan(path)
                assert disk.scan_swapped(path) == memory.scan_swapped(path)

    def test_disk_reopen_via_catalog(self, tmp_path):
        graph = figure1_graph()
        index_path = tmp_path / "i.db"
        catalog_path = tmp_path / "i.catalog.json"
        with PathIndex.build(graph, k=2, backend="disk", path=index_path) as index:
            index.save_catalog(catalog_path)
            expected = index.scan(LabelPath.of("knows", "worksFor"))
        with PathIndex.open_disk(graph, index_path, catalog_path) as reopened:
            assert reopened.k == 2
            assert reopened.scan(LabelPath.of("knows", "worksFor")) == expected

    def test_disk_scan_from(self, tmp_path):
        graph = figure1_graph()
        with PathIndex.build(
            graph, k=2, backend="disk", path=tmp_path / "i.db"
        ) as disk:
            memory = PathIndex.build(graph, k=2)
            path = LabelPath.of("knows", "knows")
            for node in graph.node_ids():
                assert disk.scan_from(path, node) == memory.scan_from(path, node)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12))
    def test_index_agrees_with_reference_on_random_graphs(self, graph):
        index = PathIndex.build(graph, k=2)
        for path in index.paths():
            assert set(index.scan(path)) == eval_label_path(graph, path)

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12))
    def test_swapped_scan_property(self, graph):
        index = PathIndex.build(graph, k=2)
        for path in index.paths():
            assert set(index.scan_swapped(path)) == set(index.scan(path))
