"""The invariant checker: rules, suppression, baseline, driver, CLI.

Every rule gets a violating fixture (it must fire) and a clean fixture
(it must stay quiet) so a refactor of the analyzer cannot silently turn
a rule into a no-op.  On top of that sit the meta-contracts: inline
``# repro: ignore[...]`` suppression on the flagged line or the line
above, baseline entries that must carry justifications and go stale
when their finding disappears, and — the one that makes CI honest — a
fresh run over ``src/`` must match ``analysis-baseline.json`` exactly.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_paths,
    analyze_source,
    apply_baseline,
    default_rules,
    load_baseline,
)
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def findings_for(source: str, relpath: str):
    return analyze_source(textwrap.dedent(source), relpath)


def rule_ids(findings) -> list[str]:
    return [found.rule for found in findings]


class TestFramework:
    def test_every_rule_has_id_and_description(self):
        rules = default_rules()
        assert len(rules) == 6
        for rule in rules:
            assert rule.id and rule.description

    def test_rules_only_apply_inside_the_package(self):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
        """
        assert findings_for(source, "src/repro/example.py")
        assert findings_for(source, "scripts/tool.py") == []

    def test_finding_carries_symbol_and_location(self):
        source = """
            class GraphDatabase:
                def rebuild(self):
                    self._index = None
        """
        (found,) = findings_for(source, "src/repro/api.py")
        assert found.rule == "lock-discipline"
        assert found.file == "src/repro/api.py"
        assert found.symbol == "GraphDatabase.rebuild"
        assert found.line == 4
        assert "src/repro/api.py:4:" in found.format()
        assert found.to_obj()["symbol"] == "GraphDatabase.rebuild"


class TestLockDiscipline:
    def test_unlocked_write_to_guarded_state_fires(self):
        source = """
            class GraphDatabase:
                def rebuild(self):
                    self._index = None
                    self._histogram = None
        """
        findings = findings_for(source, "src/repro/api.py")
        assert rule_ids(findings) == ["lock-discipline", "lock-discipline"]

    def test_unlocked_cache_state_fires(self):
        source = """
            class GraphDatabase:
                def reset(self):
                    self._query_cache = {}
        """
        assert rule_ids(findings_for(source, "src/repro/api.py")) == [
            "lock-discipline"
        ]

    def test_mutation_call_under_read_lock_fires(self):
        source = """
            class GraphDatabase:
                def snapshot(self):
                    with self._lock.read_locked():
                        self.graph.add_edge("a", "knows", "b")
        """
        findings = findings_for(source, "src/repro/api.py")
        assert rule_ids(findings) == ["lock-discipline"]
        assert "read_locked" in findings[0].message

    def test_locked_sections_and_locked_methods_are_clean(self):
        source = """
            class GraphDatabase:
                def __init__(self):
                    self._index = None
                    self._query_cache = {}

                def mutate(self):
                    with self._lock.write_locked():
                        self._index = None

                def _rebuild_shards_locked(self):
                    self._histogram = None

                def reset_cache(self):
                    with self._cache_lock:
                        self._query_cache = {}
        """
        assert findings_for(source, "src/repro/api.py") == []

    def test_other_classes_are_not_governed(self):
        source = """
            class SomethingElse:
                def rebuild(self):
                    self._index = None
        """
        assert findings_for(source, "src/repro/api.py") == []


class TestErrorTaxonomy:
    def test_broad_handler_swallowing_fires(self):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
        """
        findings = findings_for(source, "src/repro/example.py")
        assert rule_ids(findings) == ["error-taxonomy"]
        assert "QueryTimeoutError" in findings[0].message

    def test_bare_except_fires(self):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
        """
        assert rule_ids(findings_for(source, "src/repro/example.py")) == [
            "error-taxonomy"
        ]

    def test_typed_reraise_before_broad_handler_is_clean(self):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except (QueryTimeoutError, TransientError):
                    raise
                except Exception:
                    return None
        """
        assert findings_for(source, "src/repro/example.py") == []

    def test_cleanup_then_bare_raise_is_clean(self):
        source = """
            def close_all(handles):
                try:
                    work(handles)
                except BaseException:
                    for handle in handles:
                        handle.close()
                    raise
        """
        assert findings_for(source, "src/repro/example.py") == []


class TestFaultPoints:
    def test_boundary_without_fire_fires(self):
        source = """
            class ShardedGraph:
                def shard_scan(self, shard, label):
                    return shard.scan(label)
        """
        findings = findings_for(source, "src/repro/sharding.py")
        assert rule_ids(findings) == ["fault-point"]
        assert "shard.scan" in findings[0].message

    def test_boundary_with_fire_or_retry_call_is_clean(self):
        source = """
            class ShardedGraph:
                def shard_scan(self, shard, label):
                    def attempt():
                        fire("shard.scan", shard=shard)
                        return shard.scan(label)

                    return retry_call(attempt)
        """
        assert findings_for(source, "src/repro/sharding.py") == []

    def test_unknown_point_literal_fires(self):
        source = """
            def scan(shard):
                fire("shard.scna")
                return shard.data
        """
        findings = findings_for(source, "src/repro/example.py")
        assert rule_ids(findings) == ["fault-point"]
        assert "unknown injection" in findings[0].message

    def test_computed_point_fires(self):
        source = """
            def scan(shard, point):
                fire(point)
                return shard.data
        """
        findings = findings_for(source, "src/repro/example.py")
        assert rule_ids(findings) == ["fault-point"]
        assert "literal" in findings[0].message

    def test_known_point_literal_is_clean(self):
        source = """
            def scan(shard):
                fire("shard.scan")
                return shard.data
        """
        assert findings_for(source, "src/repro/example.py") == []


class TestOrderContract:
    def test_merge_join_without_order_evidence_fires(self):
        source = """
            def join_all(left, right):
                return merge_join(left, right)
        """
        findings = findings_for(source, "src/repro/engine/operators.py")
        assert rule_ids(findings) == ["order-contract"]

    def test_fresh_unordered_relation_argument_fires(self):
        source = """
            def join_fresh(pairs, right):
                return merge_join(Relation(pairs, 3), right)
        """
        findings = findings_for(source, "src/repro/engine/operators.py")
        # Both halves fire: no visible evidence, and an Order.NONE arg.
        assert rule_ids(findings) == ["order-contract", "order-contract"]

    def test_dedup_sort_to_order_none_fires(self):
        source = """
            def collapse(pairs):
                return dedup_sort(pairs, Order.NONE)
        """
        findings = findings_for(source, "src/repro/engine/operators.py")
        assert rule_ids(findings) == ["order-contract"]

    def test_order_checked_call_site_is_clean(self):
        source = """
            def join_checked(left, right):
                if left.order is not Order.BY_TGT:
                    left = left.sorted_by(Order.BY_TGT)
                return merge_join(left, right)
        """
        assert findings_for(source, "src/repro/engine/operators.py") == []


class TestDeadlineLoop:
    def test_unchecked_while_loop_fires(self):
        source = """
            def saturate(frontier):
                seen = set()
                while frontier:
                    frontier = step(frontier, seen)
                return seen
        """
        findings = findings_for(source, "src/repro/csr.py")
        assert rule_ids(findings) == ["deadline-loop"]

    def test_cooperative_loop_is_clean(self):
        source = """
            def saturate(frontier, deadline):
                seen = set()
                while frontier:
                    deadline.check()
                    frontier = step(frontier, seen)
                return seen
        """
        assert findings_for(source, "src/repro/csr.py") == []

    def test_rule_is_scoped_to_kernel_modules(self):
        source = """
            def saturate(frontier):
                while frontier:
                    frontier = step(frontier)
        """
        assert findings_for(source, "src/repro/graph/io.py") == []


class TestDualPath:
    def test_unguarded_np_call_and_dead_twin_fire(self):
        source = """
            def expand(values):
                return _np_expand(values)

            def _np_expand(values):
                return values

            def _py_dead(values):
                return values
        """
        findings = findings_for(source, "src/repro/relation.py")
        assert rule_ids(findings) == ["dual-path", "dual-path"]
        messages = " ".join(found.message for found in findings)
        assert "_vectorize" in messages
        assert "_py_dead" in messages

    def test_guarded_pairing_is_clean(self):
        source = """
            def expand(values):
                if _vectorize(len(values)):
                    return _np_expand(values)
                return _py_expand(values)

            def _np_expand(values):
                return values

            def _py_expand(values):
                return list(values)
        """
        assert findings_for(source, "src/repro/relation.py") == []

    def test_call_from_inside_np_kernel_is_already_guarded(self):
        source = """
            def run(values):
                if _np() is not None:
                    return _np_outer(values)
                return list(values)

            def _np_outer(values):
                return _np_inner(values)

            def _np_inner(values):
                return values
        """
        assert findings_for(source, "src/repro/csr.py") == []


class TestSuppression:
    VIOLATION = """
        def saturate(frontier):
            while frontier:
                frontier = step(frontier)
    """

    def test_suppression_on_the_flagged_line(self):
        source = """
            def saturate(frontier):
                while frontier:  # repro: ignore[deadline-loop] bounded
                    frontier = step(frontier)
        """
        assert findings_for(source, "src/repro/csr.py") == []

    def test_suppression_on_the_line_above(self):
        source = """
            def saturate(frontier):
                # repro: ignore[deadline-loop] bounded by len(frontier)
                while frontier:
                    frontier = step(frontier)
        """
        assert findings_for(source, "src/repro/csr.py") == []

    def test_wildcard_suppression(self):
        source = """
            def saturate(frontier):
                while frontier:  # repro: ignore[*] exercised in tests
                    frontier = step(frontier)
        """
        assert findings_for(source, "src/repro/csr.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = """
            def saturate(frontier):
                while frontier:  # repro: ignore[order-contract]
                    frontier = step(frontier)
        """
        findings = findings_for(source, "src/repro/csr.py")
        assert rule_ids(findings) == ["deadline-loop"]


class TestBaseline:
    def _finding(self):
        (found,) = findings_for(
            """
            class GraphDatabase:
                def rebuild(self):
                    self._index = None
            """,
            "src/repro/api.py",
        )
        return found

    def _entry(self, **overrides):
        entry = {
            "rule": "lock-discipline",
            "file": "src/repro/api.py",
            "symbol": "GraphDatabase.rebuild",
            "justification": "exercised under an external lock in tests",
        }
        entry.update(overrides)
        return entry

    def test_covered_finding_is_not_new(self):
        new, stale = apply_baseline([self._finding()], [self._entry()])
        assert new == []
        assert stale == []

    def test_uncovered_finding_is_new(self):
        entry = self._entry(symbol="GraphDatabase.other")
        new, stale = apply_baseline([self._finding()], [entry])
        assert rule_ids(new) == ["lock-discipline"]
        assert stale == [entry]

    def test_stale_entry_is_reported_when_finding_disappears(self):
        new, stale = apply_baseline([], [self._entry()])
        assert new == []
        assert stale == [self._entry()]

    def test_baseline_entries_require_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"entries": [self._entry(justification="  ")]}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="justification"):
            load_baseline(path)

    def test_committed_baseline_matches_fresh_run(self):
        findings, errors = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert errors == []
        entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
        new, stale = apply_baseline(findings, entries)
        assert new == [], "\n".join(found.format() for found in new)
        assert stale == [], (
            "baseline entries no finding matches any more — the baseline "
            f"only shrinks, remove them: {stale}"
        )


VIOLATING_MODULE = textwrap.dedent(
    """
    def load(path):
        try:
            return open(path).read()
        except Exception:
            return None
    """
)

CLEAN_MODULE = textwrap.dedent(
    """
    def load(path):
        try:
            return open(path).read()
        except (QueryTimeoutError, TransientError):
            raise
        except Exception:
            return None
    """
)


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    package = tmp_path / "repro"
    package.mkdir(exist_ok=True)
    path = package / name
    path.write_text(source, encoding="utf-8")
    return path


class TestDriver:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_MODULE)
        missing = tmp_path / "missing-baseline.json"
        code = analysis_main([str(target), "--baseline", str(missing)])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_new_finding_exits_one(self, tmp_path, capsys):
        target = write_module(tmp_path, VIOLATING_MODULE)
        missing = tmp_path / "missing-baseline.json"
        code = analysis_main([str(target), "--baseline", str(missing)])
        assert code == 1
        assert "[error-taxonomy]" in capsys.readouterr().out

    def test_stale_baseline_entry_exits_one(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "error-taxonomy",
                            "file": "repro/gone.py",
                            "symbol": "load",
                            "justification": "was fixed; entry left behind",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        code = analysis_main([str(target), "--baseline", str(baseline)])
        assert code == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_unjustified_baseline_exits_two(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "error-taxonomy",
                            "file": "repro/mod.py",
                            "symbol": "load",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        code = analysis_main([str(target), "--baseline", str(baseline)])
        assert code == 2
        assert "bad baseline" in capsys.readouterr().out

    def test_baseline_anchors_relpaths_from_any_cwd(self, tmp_path, capsys):
        # Baseline entries hold repo-root-relative paths; the baseline
        # file's directory is the root, so the gate matches no matter
        # where the driver is invoked from.
        target = write_module(tmp_path, VIOLATING_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "error-taxonomy",
                            "file": "repro/mod.py",
                            "symbol": "load",
                            "justification": "fixture: covered on purpose",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        code = analysis_main([str(target), "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_unparsable_file_exits_one(self, tmp_path, capsys):
        target = write_module(tmp_path, "def broken(:\n")
        code = analysis_main([str(target), "--no-baseline"])
        assert code == 1
        assert "syntax error" in capsys.readouterr().out

    def test_report_artifact_is_written(self, tmp_path):
        target = write_module(tmp_path, VIOLATING_MODULE)
        report_path = tmp_path / "report.json"
        code = analysis_main(
            [str(target), "--no-baseline", "--report", str(report_path)]
        )
        assert code == 1
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert set(report) == {"rules", "findings", "new", "stale_baseline", "errors"}
        assert report["new"] == report["findings"]
        assert [entry["rule"] for entry in report["new"]] == ["error-taxonomy"]
        assert "error-taxonomy" in report["rules"]


class TestCliLint:
    def test_lint_subcommand_reports_new_findings(self, tmp_path, capsys):
        target = write_module(tmp_path, VIOLATING_MODULE)
        missing = tmp_path / "missing-baseline.json"
        code = cli_main(["lint", str(target), "--baseline", str(missing)])
        assert code == 1
        assert "[error-taxonomy]" in capsys.readouterr().out

    def test_lint_subcommand_clean_exits_zero(self, tmp_path):
        target = write_module(tmp_path, CLEAN_MODULE)
        missing = tmp_path / "missing-baseline.json"
        assert cli_main(["lint", str(target), "--baseline", str(missing)]) == 0
