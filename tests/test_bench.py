"""Tests for the benchmark workload, harness and reporting."""

from __future__ import annotations

import pytest

from repro.bench import harness, reporting
from repro.bench.queries import query_by_name, workload
from repro.bench.workloads import SCALES, PreparedWorkload, advogato_workload
from repro.errors import ValidationError
from repro.graph.generators import advogato_like
from repro.rpq.parser import parse


@pytest.fixture(scope="module")
def prepared() -> PreparedWorkload:
    return advogato_workload(scale="small", ks=(1, 2))


class TestWorkloadQueries:
    def test_eight_queries(self):
        queries = workload()
        assert len(queries) == 8
        assert [q.name for q in queries] == [f"Q{i}" for i in range(1, 9)]

    def test_queries_parse(self):
        for query in workload():
            parse(query.text)  # must not raise

    def test_coverage_of_constructs(self):
        texts = " ".join(q.text for q in workload())
        assert "^" in texts  # inverse
        assert "|" in texts  # union
        assert "{" in texts  # bounded recursion
        assert "/" in texts  # concatenation

    def test_custom_labels(self):
        queries = workload(("x", "y", "z"))
        assert "x" in queries[0].text

    def test_label_arity_enforced(self):
        with pytest.raises(ValidationError):
            workload(("a", "b"))

    def test_query_by_name(self):
        assert query_by_name("Q3").name == "Q3"
        with pytest.raises(ValidationError):
            query_by_name("Q99")


class TestWorkloadPreparation:
    def test_scales_exist(self):
        assert {"small", "bench", "medium", "full"} <= set(SCALES)

    def test_prepared_databases(self, prepared):
        assert set(prepared.databases) == {1, 2}
        assert prepared.database(1).k == 1

    def test_lazy_database_build(self, prepared):
        # asking for a new k builds it lazily
        db = prepared.database(2)
        assert db.index.k == 2

    def test_unknown_scale(self):
        with pytest.raises(ValidationError):
            advogato_workload(scale="galactic")


class TestFigure2Harness:
    def test_rows_cover_grid(self, prepared):
        measurements = harness.run_figure2(prepared, ks=(1, 2), repeats=1)
        assert len(measurements) == 8 * 4 * 2  # queries x methods x ks
        keys = {(m.query, m.method, m.k) for m in measurements}
        assert len(keys) == len(measurements)

    def test_answers_consistent_across_methods(self, prepared):
        measurements = harness.run_figure2(prepared, ks=(1, 2), repeats=1)
        by_query_k: dict[tuple[str, int], set[int]] = {}
        for m in measurements:
            by_query_k.setdefault((m.query, m.k), set()).add(m.answer_size)
        for key, sizes in by_query_k.items():
            assert len(sizes) == 1, f"methods disagree on {key}"

    def test_answers_consistent_across_k(self, prepared):
        measurements = harness.run_figure2(prepared, ks=(1, 2), repeats=1)
        by_query: dict[str, set[int]] = {}
        for m in measurements:
            by_query.setdefault(m.query, set()).add(m.answer_size)
        for query, sizes in by_query.items():
            assert len(sizes) == 1, f"k changes the answer of {query}"

    def test_format_figure2(self, prepared):
        measurements = harness.run_figure2(prepared, ks=(1,), repeats=1)
        text = reporting.format_figure2(measurements)
        assert "panel k=1" in text
        assert "Q1" in text and "Q8" in text

    def test_trends_computable(self, prepared):
        measurements = harness.run_figure2(prepared, ks=(1, 2), repeats=1)
        trends = reporting.figure2_trends(measurements)
        assert set(trends) == {"naive_worst", "histogram_helps", "k_improves"}


class TestComparisons:
    def test_datalog_comparison_rows(self, prepared):
        rows = harness.run_datalog_comparison(prepared, k=2)
        assert len(rows) == 8
        for row in rows:
            assert row.index_seconds >= 0.0
            assert row.baseline_seconds >= 0.0
            assert row.speedup >= 0.0

    def test_datalog_report(self, prepared):
        rows = harness.run_datalog_comparison(prepared, k=2)
        text = reporting.format_comparison(rows, "Datalog")
        assert "geomean" in text

    def test_automaton_comparison_rows(self, prepared):
        rows = harness.run_automaton_comparison(prepared, k=2)
        assert len(rows) == 8

    def test_index_is_faster_than_datalog_in_aggregate(self, prepared):
        rows = harness.run_datalog_comparison(prepared, k=2)
        total_index = sum(row.index_seconds for row in rows)
        total_datalog = sum(row.baseline_seconds for row in rows)
        assert total_index < total_datalog


class TestIndexBuildAndHistogram:
    def test_index_build_rows_grow_with_k(self):
        graph = advogato_like(nodes=80, edges=320, seed=9)
        rows = harness.run_index_build(graph, ks=(1, 2))
        assert rows[0].entries < rows[1].entries
        assert rows[0].paths < rows[1].paths

    def test_index_build_disk_backend(self, tmp_path):
        graph = advogato_like(nodes=50, edges=200, seed=9)
        rows = harness.run_index_build(
            graph, ks=(1,), backends=("memory", "disk"), tmp_dir=str(tmp_path)
        )
        by_backend = {row.backend: row for row in rows}
        assert by_backend["memory"].entries == by_backend["disk"].entries

    def test_index_build_report(self):
        graph = advogato_like(nodes=50, edges=200, seed=9)
        rows = harness.run_index_build(graph, ks=(1,))
        assert "entries" in reporting.format_index_build(rows)

    def test_histogram_ablation(self, prepared):
        rows = harness.run_histogram_ablation(
            prepared, k=2, bucket_counts=(2, 64), repeats=1
        )
        assert len(rows) == 2
        # more buckets -> error no worse
        assert rows[1].mean_absolute_error <= rows[0].mean_absolute_error + 1e-9
        assert "buckets" in reporting.format_histogram(rows)
