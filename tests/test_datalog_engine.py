"""Tests for the bottom-up Datalog engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatalogError
from repro.datalog.ast import Const, Program, atom, rule, var
from repro.datalog.engine import Database, naive_evaluate, seminaive_evaluate

X, Y, Z = var("X"), var("Y"), var("Z")

TC_PROGRAM = Program(
    (
        rule(atom("tc", X, Y), atom("edge", X, Y)),
        rule(atom("tc", X, Y), atom("tc", X, Z), atom("edge", Z, Y)),
    )
)

EDGES = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=18
).map(set)


def _closure(edges: set[tuple[int, int]]) -> set[tuple[int, int]]:
    result = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(result):
            for c, d in list(result):
                if b == c and (a, d) not in result:
                    result.add((a, d))
                    changed = True
    return result


class TestTransitiveClosure:
    def test_chain(self):
        edb = Database({"edge": {(0, 1), (1, 2), (2, 3)}})
        database, stats = seminaive_evaluate(TC_PROGRAM, edb)
        assert database.relation("tc") == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        }
        assert stats.rounds >= 2

    def test_cycle_terminates(self):
        edb = Database({"edge": {(0, 1), (1, 2), (2, 0)}})
        database, _ = seminaive_evaluate(TC_PROGRAM, edb)
        assert database.relation("tc") == {
            (i, j) for i in range(3) for j in range(3)
        }

    def test_naive_equals_seminaive(self):
        edb = Database({"edge": {(0, 1), (1, 2), (2, 0), (2, 4)}})
        naive_db, naive_stats = naive_evaluate(TC_PROGRAM, edb)
        semi_db, semi_stats = seminaive_evaluate(TC_PROGRAM, edb)
        assert naive_db.relation("tc") == semi_db.relation("tc")
        # semi-naive applies strictly fewer rule instantiations
        assert semi_stats.rule_applications <= naive_stats.rule_applications

    @settings(max_examples=60, deadline=None)
    @given(EDGES)
    def test_property_matches_brute_force(self, edges):
        edb = Database({"edge": edges})
        semi_db, _ = seminaive_evaluate(TC_PROGRAM, edb)
        assert semi_db.relation("tc") == _closure(edges)

    @settings(max_examples=40, deadline=None)
    @given(EDGES)
    def test_property_naive_equals_seminaive(self, edges):
        edb = Database({"edge": edges})
        assert (
            naive_evaluate(TC_PROGRAM, edb)[0].relation("tc")
            == seminaive_evaluate(TC_PROGRAM, edb)[0].relation("tc")
        )


class TestEngineMechanics:
    def test_facts_in_program(self):
        program = Program(
            (
                rule(atom("base", Const(1), Const(2))),
                rule(atom("copy", X, Y), atom("base", X, Y)),
            )
        )
        database, _ = seminaive_evaluate(program, Database())
        assert database.relation("copy") == {(1, 2)}

    def test_constants_filter(self):
        program = Program(
            (rule(atom("from_zero", Y), atom("edge", Const(0), Y)),)
        )
        edb = Database({"edge": {(0, 1), (2, 3), (0, 4)}})
        database, _ = seminaive_evaluate(program, edb)
        assert database.relation("from_zero") == {(1,), (4,)}

    def test_repeated_variable_join(self):
        program = Program(
            (rule(atom("loop", X), atom("edge", X, X)),)
        )
        edb = Database({"edge": {(1, 1), (1, 2), (3, 3)}})
        database, _ = seminaive_evaluate(program, edb)
        assert database.relation("loop") == {(1,), (3,)}

    def test_multi_atom_join(self):
        program = Program(
            (
                rule(
                    atom("triangle", X, Y, Z),
                    atom("edge", X, Y),
                    atom("edge", Y, Z),
                    atom("edge", Z, X),
                ),
            )
        )
        edb = Database({"edge": {(0, 1), (1, 2), (2, 0)}})
        database, _ = seminaive_evaluate(program, edb)
        assert (0, 1, 2) in database.relation("triangle")

    def test_edb_idb_overlap_rejected(self):
        edb = Database({"tc": {(1, 2)}, "edge": set()})
        with pytest.raises(DatalogError):
            seminaive_evaluate(TC_PROGRAM, edb)
        with pytest.raises(DatalogError):
            naive_evaluate(TC_PROGRAM, edb)

    def test_stats_facts_by_predicate(self):
        edb = Database({"edge": {(0, 1), (1, 2)}})
        _, stats = seminaive_evaluate(TC_PROGRAM, edb)
        assert stats.facts_by_predicate == {"tc": 3}
        assert stats.facts_derived == 3

    def test_empty_edb(self):
        database, stats = seminaive_evaluate(TC_PROGRAM, Database())
        assert database.relation("tc") == set()

    def test_database_copy_isolated(self):
        original = Database({"edge": {(1, 2)}})
        copy = original.copy()
        copy.add("edge", (3, 4))
        assert (3, 4) not in original.relation("edge")
