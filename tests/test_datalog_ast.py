"""Tests for Datalog terms, atoms, rules and programs."""

from __future__ import annotations

import pytest

from repro.errors import DatalogError
from repro.datalog.ast import Atom, Const, Program, atom, rule, var


class TestAtoms:
    def test_arity(self):
        assert atom("edge", var("X"), var("Y")).arity == 2

    def test_variables(self):
        mixed = atom("p", var("X"), Const(3), var("Y"))
        assert list(mixed.variables()) == [var("X"), var("Y")]

    def test_str(self):
        assert str(atom("p", var("X"), Const(3))) == "p(X, 3)"

    def test_empty_predicate_rejected(self):
        with pytest.raises(DatalogError):
            Atom("", (var("X"),))

    def test_non_term_rejected(self):
        with pytest.raises(DatalogError):
            Atom("p", ("X",))  # type: ignore[arg-type]


class TestRules:
    def test_fact(self):
        fact = rule(atom("p", Const(1)))
        assert fact.is_fact
        assert str(fact) == "p(1)."

    def test_rule_str(self):
        tc = rule(
            atom("tc", var("X"), var("Y")),
            atom("tc", var("X"), var("Z")),
            atom("edge", var("Z"), var("Y")),
        )
        assert str(tc) == "tc(X, Y) :- tc(X, Z), edge(Z, Y)."

    def test_range_restriction_enforced(self):
        with pytest.raises(DatalogError):
            rule(atom("p", var("X")), atom("q", var("Y")))

    def test_constants_in_head_allowed(self):
        fact = rule(atom("p", Const("a"), var("X")), atom("q", var("X")))
        assert not fact.is_fact


class TestPrograms:
    def _program(self) -> Program:
        return Program(
            (
                rule(
                    atom("tc", var("X"), var("Y")),
                    atom("edge", var("X"), var("Y")),
                ),
                rule(
                    atom("tc", var("X"), var("Y")),
                    atom("tc", var("X"), var("Z")),
                    atom("edge", var("Z"), var("Y")),
                ),
            )
        )

    def test_idb_edb_split(self):
        program = self._program()
        assert program.idb_predicates() == frozenset({"tc"})
        assert program.edb_predicates() == frozenset({"edge"})

    def test_rules_for(self):
        program = self._program()
        assert len(program.rules_for("tc")) == 2
        assert program.rules_for("edge") == ()

    def test_arity_conflict_rejected(self):
        with pytest.raises(DatalogError):
            Program(
                (
                    rule(atom("p", var("X")), atom("e", var("X"), var("X"))),
                    rule(
                        atom("p", var("X"), var("Y")),
                        atom("e", var("X"), var("Y")),
                    ),
                )
            )

    def test_str_lists_rules(self):
        text = str(self._program())
        assert text.count(":-") == 2
