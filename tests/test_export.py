"""Tests for experiment-result export."""

from __future__ import annotations

import csv

import pytest

from repro.bench.export import read_json, rows_to_dicts, write_csv, write_json
from repro.bench.harness import ComparisonRow, Measurement
from repro.errors import ValidationError


@pytest.fixture()
def measurements() -> list[Measurement]:
    return [
        Measurement("Q1", "naive", 1, 0.004, 42),
        Measurement("Q1", "minjoin", 1, 0.001, 42),
    ]


class TestDicts:
    def test_fields_present(self, measurements):
        dicts = rows_to_dicts(measurements)
        assert dicts[0] == {
            "query": "Q1", "method": "naive", "k": 1,
            "seconds": 0.004, "answer_size": 42,
        }

    def test_properties_included(self):
        rows = [ComparisonRow("Q1", 0.001, 0.1, 7)]
        dicts = rows_to_dicts(rows)
        assert dicts[0]["speedup"] == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            rows_to_dicts([])

    def test_non_dataclass_rejected(self):
        with pytest.raises(ValidationError):
            rows_to_dicts([{"not": "a dataclass"}])

    def test_mixed_types_rejected(self, measurements):
        with pytest.raises(ValidationError):
            rows_to_dicts(measurements + [ComparisonRow("Q1", 1.0, 2.0, 3)])


class TestCsv:
    def test_roundtrip(self, measurements, tmp_path):
        path = tmp_path / "fig2.csv"
        write_csv(measurements, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["query"] == "Q1"
        assert float(rows[1]["seconds"]) == pytest.approx(0.001)


class TestJson:
    def test_roundtrip(self, measurements, tmp_path):
        path = tmp_path / "fig2.json"
        write_json(measurements, path, experiment="figure2")
        payload = read_json(path)
        assert payload["experiment"] == "figure2"
        assert payload["row_type"] == "Measurement"
        assert payload["rows"][0]["method"] == "naive"

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValidationError):
            read_json(path)

    def test_export_real_harness_rows(self, tmp_path):
        from repro.bench.harness import run_index_build
        from repro.graph.generators import advogato_like

        rows = run_index_build(advogato_like(60, 240, seed=5), ks=(1,))
        write_json(rows, tmp_path / "build.json", experiment="index-build")
        payload = read_json(tmp_path / "build.json")
        assert payload["rows"][0]["k"] == 1
        assert payload["rows"][0]["entries"] > 0
