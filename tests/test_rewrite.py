"""Tests for the rewrite pipeline (Section 4, steps 1-2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import RewriteError
from repro.graph.graph import LabelPath, Step
from repro.rpq import ast
from repro.rpq.parser import parse
from repro.rpq.rewrite import (
    bound_star,
    expand_recursion,
    normalize,
    pull_up_unions,
    push_inverse,
)

from tests.strategies import rpq_asts


class TestPushInverse:
    def test_label(self):
        assert push_inverse(parse("^a")) == ast.inv_label("a")

    def test_double_inverse_cancels(self):
        assert push_inverse(parse("^^a")) == ast.label("a")

    def test_concat_reverses(self):
        assert push_inverse(parse("^(a/b)")) == ast.concat(
            ast.inv_label("b"), ast.inv_label("a")
        )

    def test_union_distributes(self):
        assert push_inverse(parse("^(a|b)")) == ast.union(
            ast.inv_label("a"), ast.inv_label("b")
        )

    def test_repeat_passes_through(self):
        assert push_inverse(parse("^(a{2,3})")) == ast.repeat(
            ast.inv_label("a"), 2, 3
        )

    def test_epsilon_self_inverse(self):
        assert push_inverse(parse("^<eps>")) == ast.Epsilon()

    def test_no_inverse_is_identity(self):
        node = parse("a/b{1,2}|c")
        assert push_inverse(node) == node

    @settings(max_examples=100, deadline=None)
    @given(rpq_asts(allow_star=True))
    def test_output_has_no_inverse_nodes(self, node):
        rewritten = push_inverse(node)
        assert not any(isinstance(n, ast.Inverse) for n in rewritten.walk())

    @settings(max_examples=60, deadline=None)
    @given(rpq_asts(allow_star=True))
    def test_preserves_semantics(self, node):
        from repro.graph.examples import two_triangles
        from repro.rpq.semantics import eval_ast

        graph = two_triangles()
        assert eval_ast(graph, push_inverse(node)) == eval_ast(graph, node)


class TestBoundStar:
    def test_star_becomes_bounded(self):
        assert bound_star(parse("a*"), 5) == ast.repeat(ast.label("a"), 0, 5)

    def test_open_repeat_becomes_bounded(self):
        assert bound_star(parse("a{2,}"), 5) == ast.repeat(ast.label("a"), 2, 5)

    def test_open_repeat_with_low_above_bound(self):
        assert bound_star(parse("a{7,}"), 5) == ast.repeat(ast.label("a"), 7, 7)

    def test_nested(self):
        node = bound_star(parse("(a*/b)|c"), 3)
        assert node == ast.union(
            ast.concat(ast.repeat(ast.label("a"), 0, 3), ast.label("b")),
            ast.label("c"),
        )

    def test_negative_bound_rejected(self):
        with pytest.raises(RewriteError):
            bound_star(parse("a*"), -1)

    @settings(max_examples=60, deadline=None)
    @given(rpq_asts(allow_star=True))
    def test_output_is_star_free(self, node):
        bounded = bound_star(node, 4)
        for sub in bounded.walk():
            assert not isinstance(sub, ast.Star)
            if isinstance(sub, ast.Repeat):
                assert sub.high is not None


class TestExpandRecursion:
    def test_bounded_repeat_expands_to_powers(self):
        expanded = expand_recursion(parse("a{1,3}"))
        assert expanded == ast.union(
            ast.label("a"),
            ast.concat(ast.label("a"), ast.label("a")),
            ast.concat(ast.label("a"), ast.label("a"), ast.label("a")),
        )

    def test_zero_power_is_epsilon(self):
        expanded = expand_recursion(parse("a{0,1}"))
        assert expanded == ast.union(ast.Epsilon(), ast.label("a"))

    def test_exact_power(self):
        expanded = expand_recursion(parse("a{2}"))
        assert expanded == ast.concat(ast.label("a"), ast.label("a"))

    def test_unbounded_rejected(self):
        with pytest.raises(RewriteError):
            expand_recursion(parse("a{2,}"))

    def test_star_rejected(self):
        with pytest.raises(RewriteError):
            expand_recursion(parse("a*"))

    def test_inverse_rejected(self):
        with pytest.raises(RewriteError):
            expand_recursion(parse("^(a/b)"))

    def test_expansion_limit(self):
        with pytest.raises(RewriteError):
            expand_recursion(parse("a{0,5}"), max_disjuncts=3)


class TestPullUpUnions:
    def _steps(self, *specs: str) -> tuple[Step, ...]:
        return tuple(Step.decode(spec) for spec in specs)

    def test_single_path(self):
        node = expand_recursion(push_inverse(parse("a/^b")))
        assert pull_up_unions(node) == [self._steps("a", "b-")]

    def test_distributes_concat_over_union(self):
        node = push_inverse(parse("(a|b)/c"))
        assert pull_up_unions(node) == [
            self._steps("a", "c"),
            self._steps("b", "c"),
        ]

    def test_cross_product(self):
        node = push_inverse(parse("(a|b)/(c|d)"))
        assert pull_up_unions(node) == [
            self._steps("a", "c"),
            self._steps("a", "d"),
            self._steps("b", "c"),
            self._steps("b", "d"),
        ]

    def test_epsilon_disjunct(self):
        node = expand_recursion(parse("a{0,1}"))
        assert pull_up_unions(node) == [(), self._steps("a")]

    def test_deduplicates(self):
        node = push_inverse(parse("a|a"))
        assert pull_up_unions(node) == [self._steps("a")]

    def test_limit_enforced(self):
        node = push_inverse(parse("(a|b)/(a|b)/(a|b)"))
        with pytest.raises(RewriteError):
            pull_up_unions(node, max_disjuncts=4)


class TestSection4Example:
    """The worked rewrite of Section 4: R = k(kw){2,4}w."""

    def test_normal_form(self):
        normal = normalize(parse("k/(k/w){2,4}/w"), star_bound_value=10)
        assert not normal.has_epsilon
        expected = [
            "k.k.w.k.w.w",
            "k.k.w.k.w.k.w.w",
            "k.k.w.k.w.k.w.k.w.w",
        ]
        assert [path.encode() for path in normal.paths] == expected

    def test_disjunct_lengths(self):
        normal = normalize(parse("k/(k/w){2,4}/w"), star_bound_value=10)
        assert [len(path) for path in normal.paths] == [6, 8, 10]
        assert normal.max_length() == 10
        assert normal.disjunct_count == 3


class TestNormalize:
    def test_epsilon_only(self):
        normal = normalize(parse("<eps>"), star_bound_value=3)
        assert normal.has_epsilon
        assert normal.paths == ()
        assert normal.max_length() == 0

    def test_star_uses_bound(self):
        normal = normalize(parse("a*"), star_bound_value=2)
        assert normal.has_epsilon
        assert [path.encode() for path in normal.paths] == ["a", "a.a"]

    def test_inverse_handled(self):
        normal = normalize(parse("^(a/b)"), star_bound_value=2)
        assert [path.encode() for path in normal.paths] == ["b-.a-"]

    def test_paper_union_recursion(self):
        normal = normalize(
            parse("(supervisor|worksFor|^worksFor){4,5}"), star_bound_value=9
        )
        # 3^4 + 3^5 step sequences, all distinct
        assert normal.disjunct_count == 3**4 + 3**5
        assert all(
            isinstance(path, LabelPath) and len(path) in (4, 5)
            for path in normal.paths
        )

    def test_str_rendering(self):
        normal = normalize(parse("a{0,1}"), star_bound_value=2)
        assert str(normal) == "<eps> | a"

    @settings(max_examples=60, deadline=None)
    @given(rpq_asts())
    def test_normal_form_preserves_semantics(self, node):
        """Steps 1-2 of the paper preserve the answer set."""
        from repro.graph.examples import two_triangles
        from repro.rpq.semantics import (
            eval_ast,
            eval_label_path,
            identity_relation,
        )

        graph = two_triangles()
        # Generous budgets: this test is about semantics preservation,
        # not the (separately tested) expansion guards.
        normal = normalize(
            node, star_bound_value=6,
            max_disjuncts=200_000, max_total_steps=2_000_000,
        )
        rebuilt: set = set()
        if normal.has_epsilon:
            rebuilt |= identity_relation(graph)
        for path in normal.paths:
            rebuilt |= eval_label_path(graph, path)
        assert rebuilt == eval_ast(graph, node)
