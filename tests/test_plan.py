"""Tests for physical plan nodes and rendering."""

from __future__ import annotations

import pytest

from repro.graph.graph import LabelPath
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    Order,
    UnionPlan,
    render,
)


class TestOrders:
    def test_direct_scan_is_source_sorted(self):
        plan = IndexScanPlan(LabelPath.of("a"))
        assert plan.order is Order.BY_SRC

    def test_inverse_scan_is_target_sorted(self):
        plan = IndexScanPlan(LabelPath.of("a"), via_inverse=True)
        assert plan.order is Order.BY_TGT

    def test_join_output_unordered(self):
        left = IndexScanPlan(LabelPath.of("a"), via_inverse=True)
        right = IndexScanPlan(LabelPath.of("b"))
        assert JoinPlan(left, right, "merge").order is Order.NONE

    def test_identity_source_sorted(self):
        assert IdentityPlan().order is Order.BY_SRC

    def test_union_unordered(self):
        assert UnionPlan((IdentityPlan(),)).order is Order.NONE


class TestCounts:
    def _example(self):
        scan_a = IndexScanPlan(LabelPath.of("a"), via_inverse=True)
        scan_b = IndexScanPlan(LabelPath.of("b"))
        scan_c = IndexScanPlan(LabelPath.of("c"))
        return JoinPlan(JoinPlan(scan_a, scan_b, "merge"), scan_c, "hash")

    def test_scan_count(self):
        assert self._example().scan_count() == 3

    def test_join_count(self):
        assert self._example().join_count() == 2

    def test_merge_join_count(self):
        assert self._example().merge_join_count() == 1

    def test_algorithm_validated(self):
        with pytest.raises(ValueError):
            JoinPlan(IdentityPlan(), IdentityPlan(), "nested-loop")


class TestRender:
    def test_scan_line(self):
        assert render(IndexScanPlan(LabelPath.of("a"))) == "IndexScan[a]"

    def test_inverse_scan_mentions_swap(self):
        text = render(IndexScanPlan(LabelPath.of("a", "b"), via_inverse=True))
        assert "swapped" in text
        assert "^b/^a" in text

    def test_tree_shape(self):
        plan = JoinPlan(
            IndexScanPlan(LabelPath.of("a"), via_inverse=True),
            IndexScanPlan(LabelPath.of("b")),
            "merge",
        )
        text = render(plan)
        lines = text.split("\n")
        assert lines[0] == "merge-join"
        assert lines[1].startswith("├─ ")
        assert lines[2].startswith("└─ ")

    def test_nested_tree_render(self):
        plan = UnionPlan(
            (
                JoinPlan(
                    IndexScanPlan(LabelPath.of("a"), via_inverse=True),
                    IndexScanPlan(LabelPath.of("b")),
                    "merge",
                ),
                IdentityPlan(),
            )
        )
        text = render(plan)
        assert text.count("IndexScan") == 2
        assert "Union[2]" in text
        assert "Identity" in text
