"""Failure injection for the storage engine: corruption, truncation."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.diskbtree import DiskBPlusTree
from repro.storage.pager import Pager
from repro.storage.records import encode_key


class TestPagerCorruption:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.db"
        path.write_bytes(b"\x01\x02\x03")
        with pytest.raises(StorageError):
            Pager(path, page_size=256)

    def test_corrupted_magic(self, tmp_path):
        path = tmp_path / "t.db"
        Pager(path, page_size=256).close()
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="magic"):
            Pager(path, page_size=256)

    def test_geometry_mismatch_detected(self, tmp_path):
        path = tmp_path / "t.db"
        Pager(path, page_size=512).close()
        with pytest.raises(StorageError, match="page_size"):
            Pager(path, page_size=256)


class TestDiskTreeCorruption:
    def _build(self, path, entries=200):
        with DiskBPlusTree(path, page_size=256) as tree:
            for i in range(entries):
                tree.insert(encode_key((i,)), str(i).encode())

    def test_unknown_node_type_detected(self, tmp_path):
        path = tmp_path / "t.db"
        self._build(path)
        raw = bytearray(path.read_bytes())
        # page 1 onward are tree nodes; zap a node-type byte to garbage.
        page_size = 256
        raw[2 * page_size] = 0x77
        path.write_bytes(bytes(raw))
        tree = DiskBPlusTree(path, page_size=256)
        with pytest.raises(StorageError):
            list(tree.items())

    def test_reopen_missing_file_creates_empty(self, tmp_path):
        tree = DiskBPlusTree(tmp_path / "fresh.db", page_size=256)
        assert len(tree) == 0
        tree.close()

    def test_flush_makes_state_durable_before_close(self, tmp_path):
        path = tmp_path / "t.db"
        tree = DiskBPlusTree(path, page_size=256)
        tree.insert(b"key", b"value")
        tree.flush()
        # A second handle sees the flushed state even though the first
        # is still open (single-writer usage, as the index builder does).
        reader = DiskBPlusTree(path, page_size=256)
        assert reader.get(b"key") == b"value"
        reader.close()
        tree.close()


class TestResourceDiscipline:
    def test_double_close_is_safe(self, tmp_path):
        tree = DiskBPlusTree(tmp_path / "t.db", page_size=256)
        tree.close()
        tree.close()

    def test_use_after_close_raises(self, tmp_path):
        tree = DiskBPlusTree(tmp_path / "t.db", page_size=256)
        tree.insert(b"a", b"1")
        tree.close()
        with pytest.raises(StorageError):
            tree.get(b"a")

    def test_context_manager_closes(self, tmp_path):
        with DiskBPlusTree(tmp_path / "t.db", page_size=256) as tree:
            tree.insert(b"a", b"1")
        with pytest.raises(StorageError):
            tree.insert(b"b", b"2")

    def test_many_handles_sequentially(self, tmp_path):
        path = tmp_path / "t.db"
        for round_number in range(5):
            with DiskBPlusTree(path, page_size=256) as tree:
                tree.insert(encode_key((round_number,)), b"x")
        with DiskBPlusTree(path, page_size=256) as tree:
            assert len(tree) == 5
