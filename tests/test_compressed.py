"""Tests for the compressed (delta+varint) index backend."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.graph.examples import figure1_graph
from repro.graph.generators import advogato_like
from repro.indexes.compressed import (
    CompressedBackend,
    PostingList,
    compression_ratio,
    decode_varint,
    encode_varint,
)
from repro.indexes.pathindex import PathIndex

PAIRS = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 200)),
    max_size=80,
).map(lambda pairs: sorted(set(pairs)))


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip_examples(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_property_roundtrip(self, value):
        decoded, _ = decode_varint(encode_varint(value), 0)
        assert decoded == value

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(StorageError):
            decode_varint(encode_varint(300)[:-1], 0)

    def test_small_values_one_byte(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2


class TestPostingList:
    def test_roundtrip(self):
        pairs = [(1, 2), (1, 5), (3, 0), (3, 7), (9, 9)]
        postings = PostingList.from_pairs(pairs)
        assert list(postings.pairs()) == pairs
        assert postings.count == 5

    def test_empty(self):
        postings = PostingList.from_pairs([])
        assert list(postings.pairs()) == []
        assert postings.targets_of(1) == []

    def test_targets_of(self):
        pairs = [(1, 2), (1, 5), (3, 0), (9, 9)]
        postings = PostingList.from_pairs(pairs)
        assert postings.targets_of(1) == [2, 5]
        assert postings.targets_of(3) == [0]
        assert postings.targets_of(9) == [9]
        assert postings.targets_of(2) == []
        assert postings.targets_of(0) == []
        assert postings.targets_of(10) == []

    def test_skip_list_on_many_groups(self):
        pairs = [(src, src + 1) for src in range(0, 500, 2)]
        postings = PostingList.from_pairs(pairs)
        assert len(postings.skips) > 1
        for src in range(0, 500, 2):
            assert postings.targets_of(src) == [src + 1]
        assert postings.targets_of(1) == []

    @settings(max_examples=80, deadline=None)
    @given(PAIRS)
    def test_property_roundtrip(self, pairs):
        postings = PostingList.from_pairs(pairs)
        assert list(postings.pairs()) == pairs

    @settings(max_examples=80, deadline=None)
    @given(PAIRS, st.integers(0, 200))
    def test_property_targets_of(self, pairs, wanted):
        postings = PostingList.from_pairs(pairs)
        expected = [tgt for src, tgt in pairs if src == wanted]
        assert postings.targets_of(wanted) == expected


class TestBackend:
    def test_prefix_widths(self):
        backend = CompressedBackend()
        backend.bulk_load([(0, 1, 2), (0, 1, 3), (1, 4, 5)])
        assert list(backend.prefix((0,))) == [(0, 1, 2), (0, 1, 3)]
        assert list(backend.prefix((0, 1))) == [(0, 1, 2), (0, 1, 3)]
        assert list(backend.prefix((5,))) == []
        with pytest.raises(StorageError):
            list(backend.prefix((0, 1, 2)))
        with pytest.raises(StorageError):
            list(backend.prefix(()))

    def test_contains(self):
        backend = CompressedBackend()
        backend.bulk_load([(0, 1, 2)])
        assert backend.contains((0, 1, 2))
        assert not backend.contains((0, 1, 3))
        assert not backend.contains((9, 1, 2))

    def test_len(self):
        backend = CompressedBackend()
        backend.bulk_load([(0, 1, 2), (0, 1, 3), (2, 0, 0)])
        assert len(backend) == 3


class TestPathIndexIntegration:
    def test_compressed_equals_memory(self):
        graph = figure1_graph()
        memory = PathIndex.build(graph, k=2)
        compressed = PathIndex.build(graph, k=2, backend="compressed")
        assert compressed.entry_count == memory.entry_count
        for path in memory.paths():
            assert compressed.scan(path) == memory.scan(path)
            assert compressed.scan_swapped(path) == memory.scan_swapped(path)
            for node in graph.node_ids():
                assert compressed.scan_from(path, node) == memory.scan_from(
                    path, node
                )

    def test_queries_through_compressed_index(self):
        from repro.api import GraphDatabase

        graph = figure1_graph()
        db = GraphDatabase(graph, k=2, backend="compressed")
        reference = GraphDatabase(graph, k=2)
        for text in ["knows/knows/worksFor", "supervisor/^worksFor",
                     "(knows|worksFor){1,2}"]:
            assert db.query(text).pairs == reference.query(text).pairs

    def test_compression_actually_compresses(self):
        graph = advogato_like(nodes=150, edges=900, seed=3)
        index = PathIndex.build(graph, k=2, backend="compressed")
        ratio = compression_ratio(index._backend)
        # raw 3x int64 triples are 24 bytes; postings should be far under
        assert 0.0 < ratio < 0.25

    def test_backend_name(self):
        index = PathIndex.build(figure1_graph(), k=1, backend="compressed")
        assert index.backend_name == "compressed"
