"""Tests for label-path enumeration and relation materialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.graph.examples import figure1_graph
from repro.graph.generators import chain
from repro.graph.graph import Graph
from repro.indexes import builder
from repro.rpq.semantics import eval_label_path

from tests.strategies import graphs


class TestEnumeration:
    def test_count_formula(self):
        assert builder.count_label_paths(3, 1) == 6
        assert builder.count_label_paths(3, 2) == 6 + 36
        assert builder.count_label_paths(3, 3) == 6 + 36 + 216

    def test_enumerate_matches_formula(self):
        paths = builder.enumerate_label_paths(("a", "b"), 2)
        assert len(paths) == builder.count_label_paths(2, 2)

    def test_enumeration_includes_inverses(self):
        paths = {p.encode() for p in builder.enumerate_label_paths(("a",), 2)}
        assert paths == {"a", "a-", "a.a", "a.a-", "a-.a", "a-.a-"}

    def test_enumeration_is_dfs_prefix_order(self):
        paths = builder.enumerate_label_paths(("a", "b"), 2)
        encoded = [p.encode() for p in paths]
        # every non-length-1 path appears directly under its prefix subtree
        for position, path in enumerate(paths):
            if len(path) > 1:
                prefix = path.prefix(len(path) - 1)
                assert encoded.index(prefix.encode()) < position

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            builder.enumerate_label_paths(("a",), 0)


class TestRelations:
    def test_relations_match_reference(self):
        graph = figure1_graph()
        for path, pairs in builder.path_relations(graph, 2):
            assert set(pairs) == eval_label_path(graph, path)
            assert pairs == sorted(pairs)

    def test_prune_empty_skips_subtrees(self):
        graph = Graph.from_edges([("x", "a", "y")])
        # 'b' never appears; with a 2-label vocabulary only label 'a'
        # exists, so enumeration covers only (a, a-) and combinations.
        pruned = dict(
            (path.encode(), pairs)
            for path, pairs in builder.path_relations(graph, 2, prune_empty=True)
        )
        unpruned = dict(
            (path.encode(), pairs)
            for path, pairs in builder.path_relations(graph, 2, prune_empty=False)
        )
        assert set(pruned) <= set(unpruned)
        # a.a is empty (chain of length 1): present with [] but its
        # extensions are only visited without pruning.
        assert pruned["a.a"] == []

    def test_pruned_paths_are_provably_empty(self):
        graph = chain(2, label="a")
        reported = {p.encode() for p, _ in builder.path_relations(graph, 3)}
        everything = {
            p.encode() for p in builder.enumerate_label_paths(graph.labels(), 3)
        }
        for missing in everything - reported:
            from repro.graph.graph import LabelPath

            assert eval_label_path(graph, LabelPath.decode(missing)) == set()

    def test_estimate_index_entries(self):
        graph = chain(3, label="a")
        # k=1: a has 3 pairs, a- has 3 pairs -> 6
        assert builder.estimate_index_entries(graph, 1) == 6

    def test_path_counts(self):
        graph = figure1_graph()
        counts = builder.path_counts(graph, 1)
        assert counts["knows"] == 9
        assert counts["knows-"] == 9
        assert counts["supervisor"] == 1

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_property_relations_match_reference(self, graph):
        for path, pairs in builder.path_relations(graph, 2):
            assert set(pairs) == eval_label_path(graph, path)

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=6, max_edges=10))
    def test_inverse_paths_are_swapped_relations(self, graph):
        relations = {
            path.encode(): set(pairs)
            for path, pairs in builder.path_relations(graph, 2, prune_empty=False)
        }
        for encoded, relation in relations.items():
            from repro.graph.graph import LabelPath

            inverse = LabelPath.decode(encoded).inverted().encode()
            assert relations[inverse] == {(b, a) for a, b in relation}
