"""Tests for the package surface: exports, errors, version."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestPublicExports:
    def test_version(self):
        assert repro.__version__ == "1.3.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_facade_importable_from_top_level(self):
        from repro import Graph, GraphDatabase, LabelPath, Step, Strategy

        assert GraphDatabase is not None
        assert {Graph, LabelPath, Step, Strategy} is not None

    def test_subpackage_all_exports(self):
        import repro.bench as bench
        import repro.datalog as datalog
        import repro.engine as engine
        import repro.graph as graph
        import repro.indexes as indexes
        import repro.rpq as rpq
        import repro.storage as storage

        for module in (bench, datalog, engine, graph, indexes, rpq, storage):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.GraphError,
        errors.UnknownNodeError,
        errors.ParseError,
        errors.RewriteError,
        errors.PlanningError,
        errors.ExecutionError,
        errors.PathIndexError,
        errors.StorageError,
        errors.KeyOrderError,
        errors.DatalogError,
        errors.UnsupportedQueryError,
        errors.ValidationError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_unknown_node_is_graph_error(self):
        assert issubclass(errors.UnknownNodeError, errors.GraphError)

    def test_key_order_is_storage_error(self):
        assert issubclass(errors.KeyOrderError, errors.StorageError)

    def test_parse_error_position(self):
        error = errors.ParseError("bad", position=7)
        assert error.position == 7
        assert errors.ParseError("bad").position is None

    def test_one_base_class_catches_everything(self):
        """The documented API contract: catch ReproError at boundaries."""
        from repro.api import GraphDatabase
        from repro.graph.graph import Graph

        db = GraphDatabase(Graph.from_edges([("x", "a", "y")]), k=1)
        failures = 0
        for bad_call in (
            lambda: db.query("a//b"),
            lambda: db.query("a", method="warp"),
            lambda: db.query_from("ghost", "a"),
            lambda: db.selectivity("a|b"),
        ):
            try:
                bad_call()
            except errors.ReproError:
                failures += 1
        assert failures == 4


class TestDoctests:
    def test_api_module_doctest(self):
        import doctest

        import repro.api

        results = doctest.testmod(repro.api)
        assert results.failed == 0
        assert results.attempted >= 1

    def test_semantics_doctest(self):
        import doctest

        import repro.rpq.semantics

        results = doctest.testmod(repro.rpq.semantics)
        assert results.failed == 0

    def test_parser_doctest(self):
        import doctest

        import repro.rpq.parser

        results = doctest.testmod(repro.rpq.parser)
        assert results.failed == 0

    def test_graph_doctest(self):
        import doctest

        import repro.graph.graph

        results = doctest.testmod(repro.graph.graph)
        assert results.failed == 0

    def test_plan_doctest(self):
        import doctest

        import repro.engine.plan

        results = doctest.testmod(repro.engine.plan)
        assert results.failed == 0
