"""Tests for the SCC-based reachability index (approach 3 substrate)."""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings

from repro.baselines import reachability_eval
from repro.errors import UnsupportedQueryError
from repro.graph.generators import chain, cycle
from repro.graph.graph import Graph, Step
from repro.indexes.reachability import (
    LabelReachabilityIndex,
    strongly_connected_components,
)
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast

from tests.strategies import graphs


def _bfs_reachable(edges: set[tuple[int, int]], source: int) -> set[int]:
    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    seen: set[int] = set()
    queue = deque(adjacency.get(source, ()))
    while queue:
        node = queue.popleft()
        if node not in seen:
            seen.add(node)
            queue.extend(adjacency.get(node, ()))
    return seen


class TestScc:
    def test_chain_is_all_singletons(self):
        components = strongly_connected_components(4, [(0, 1), (1, 2), (2, 3)])
        assert len(set(components)) == 4

    def test_cycle_is_one_component(self):
        components = strongly_connected_components(3, [(0, 1), (1, 2), (2, 0)])
        assert len(set(components)) == 1

    def test_two_cycles_bridge(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        components = strongly_connected_components(4, edges)
        assert components[0] == components[1]
        assert components[2] == components[3]
        assert components[0] != components[2]
        # Tarjan ids are reverse topological: the downstream component
        # (2,3) gets the smaller id.
        assert components[2] < components[0]

    def test_empty_graph(self):
        assert strongly_connected_components(0, []) == []

    def test_isolated_nodes(self):
        components = strongly_connected_components(3, [])
        assert len(set(components)) == 3


class TestReachability:
    def test_chain_reachability(self):
        graph = chain(4)
        index = LabelReachabilityIndex(graph, Step("next"))
        assert index.reachable(0, 4, reflexive=False)
        assert not index.reachable(4, 0, reflexive=False)
        assert index.reachable(2, 2, reflexive=True)
        assert not index.reachable(2, 2, reflexive=False)

    def test_cycle_reaches_itself_without_reflexivity(self):
        graph = cycle(3)
        index = LabelReachabilityIndex(graph, Step("next"))
        assert index.reachable(0, 0, reflexive=False)

    def test_self_loop(self):
        graph = Graph.from_edges([("o", "spin", "o")])
        index = LabelReachabilityIndex(graph, Step("spin"))
        assert index.reachable(0, 0, reflexive=False)

    def test_inverse_step(self):
        graph = chain(3)
        index = LabelReachabilityIndex(graph, Step("next", inverse=True))
        assert index.reachable(3, 0, reflexive=False)
        assert not index.reachable(0, 3, reflexive=False)

    def test_all_pairs_equals_star_semantics(self):
        graph = cycle(4)
        index = LabelReachabilityIndex(graph, Step("next"))
        assert set(index.all_pairs(reflexive=True)) == eval_ast(
            graph, parse("next*")
        )

    @settings(max_examples=60, deadline=None)
    @given(graphs(max_nodes=8, max_edges=16, labels=("a",)))
    def test_matches_bfs_brute_force(self, graph):
        step = Step("a")
        edges = graph.step_relation(step)
        index = LabelReachabilityIndex(graph, step)
        for source in graph.node_ids():
            expected = _bfs_reachable(edges, source)
            assert index.reachable_set(source, reflexive=False) == expected
            assert index.reachable_set(source, reflexive=True) == (
                expected | {source}
            )

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=7, max_edges=14, labels=("a",)))
    def test_matches_star_and_plus_semantics(self, graph):
        index = LabelReachabilityIndex(graph, Step("a"))
        assert set(index.all_pairs(reflexive=True)) == eval_ast(
            graph, parse("a*")
        )
        assert set(index.all_pairs(reflexive=False)) == eval_ast(
            graph, parse("a+")
        )


class TestBaselineFrontend:
    def test_supported_star(self):
        graph = chain(3)
        assert reachability_eval.evaluate(graph, parse("next*")) == eval_ast(
            graph, parse("next*")
        )

    def test_supported_plus(self):
        graph = chain(3)
        assert reachability_eval.evaluate(graph, parse("next+")) == eval_ast(
            graph, parse("next+")
        )

    def test_supported_inverse_star(self):
        graph = chain(3)
        assert reachability_eval.evaluate(graph, parse("(^next)*")) == eval_ast(
            graph, parse("(^next)*")
        )

    @pytest.mark.parametrize(
        "query",
        ["a/b", "(a/b)*", "a{2,}", "a{1,3}", "a|b", "a*/b"],
    )
    def test_unsupported_shapes_raise(self, query):
        """The restriction the paper contrasts against (approach 3)."""
        graph = chain(3)
        with pytest.raises(UnsupportedQueryError):
            reachability_eval.evaluate(graph, parse(query))

    def test_shape_detection(self):
        assert reachability_eval.supported_shape(parse("a*")) == (Step("a"), True)
        assert reachability_eval.supported_shape(parse("a+")) == (Step("a"), False)
        assert reachability_eval.supported_shape(parse("a/b")) is None
