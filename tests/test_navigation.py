"""Tests for single-source and boolean query evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.engine.navigation import (
    breadth_first_targets,
    evaluate_from,
    evaluate_pair,
    targets_of_path,
)
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.indexes.pathindex import PathIndex
from repro.indexes.statistics import ExactStatistics
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast

from tests.strategies import graphs, rpq_asts


@pytest.fixture(scope="module")
def setup():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=2)
    stats = ExactStatistics.from_index(index)
    return graph, index, stats


class TestTargetsOfPath:
    def test_short_path(self, setup):
        graph, index, _ = setup
        path = LabelPath.of("knows", "worksFor")
        for source in graph.node_ids():
            expected = {
                b for a, b in eval_ast(graph, parse("knows/worksFor"))
                if a == source
            }
            assert targets_of_path(index, path, source) == expected

    def test_long_path_chunked(self, setup):
        graph, index, _ = setup
        path = LabelPath.of("knows", "knows", "worksFor", "knows")
        relation = eval_ast(graph, parse("knows/knows/worksFor/knows"))
        for source in graph.node_ids():
            expected = {b for a, b in relation if a == source}
            assert targets_of_path(index, path, source) == expected


class TestEvaluateFrom:
    QUERIES = [
        "knows",
        "knows/knows/worksFor",
        "supervisor/^worksFor",
        "(knows|worksFor){1,2}",
        "knows{0,2}",
        "knows*",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_reference_restriction(self, setup, text):
        graph, index, stats = setup
        node = parse(text)
        relation = eval_ast(graph, node)
        for source in graph.node_ids():
            expected = {b for a, b in relation if a == source}
            assert evaluate_from(node, source, index, graph, stats) == expected

    def test_epsilon_includes_source(self, setup):
        graph, index, stats = setup
        node = parse("<eps>")
        source = graph.node_id("kim")
        assert evaluate_from(node, source, index, graph, stats) == {source}

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_property_matches_reference(self, graph, node):
        index = PathIndex.build(graph, k=2)
        stats = ExactStatistics.from_index(index)
        relation = eval_ast(graph, node)
        for source in graph.node_ids():
            expected = {b for a, b in relation if a == source}
            assert evaluate_from(node, source, index, graph, stats) == expected


class TestEvaluatePair:
    def test_short_disjunct_membership(self, setup):
        graph, index, stats = setup
        node = parse("supervisor/^worksFor")
        kim, sue = graph.node_id("kim"), graph.node_id("sue")
        assert evaluate_pair(node, kim, sue, index, graph, stats)
        assert not evaluate_pair(node, sue, kim, index, graph, stats)

    def test_epsilon_pair(self, setup):
        graph, index, stats = setup
        node = parse("knows{0,1}")
        kim = graph.node_id("kim")
        assert evaluate_pair(node, kim, kim, index, graph, stats)

    def test_long_disjunct_frontier(self, setup):
        graph, index, stats = setup
        node = parse("knows/knows/worksFor/knows")
        relation = eval_ast(graph, node)
        some_pair = next(iter(relation))
        assert evaluate_pair(node, *some_pair, index, graph, stats)

    @settings(max_examples=25, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_property_matches_reference(self, graph, node):
        index = PathIndex.build(graph, k=2)
        stats = ExactStatistics.from_index(index)
        relation = eval_ast(graph, node)
        nodes = list(graph.node_ids())
        for source in nodes[:3]:
            for target in nodes[:3]:
                expected = (source, target) in relation
                assert (
                    evaluate_pair(node, source, target, index, graph, stats)
                    == expected
                )


class TestBfsTargets:
    def test_simple(self):
        from repro.graph.generators import chain

        graph = chain(3)
        base = {(0, 1), (1, 2), (2, 3)}
        assert breadth_first_targets(graph, base, 0, reflexive=False) == {1, 2, 3}
        assert breadth_first_targets(graph, base, 0, reflexive=True) == {0, 1, 2, 3}


class TestApiSurface:
    def test_query_from(self, figure1_db):
        targets = figure1_db.query_from("kim", "knows/worksFor")
        relation = figure1_db.query("knows/worksFor").pairs
        assert targets == frozenset(
            b for a, b in relation if a == "kim"
        )

    def test_query_from_star(self, figure1_db):
        targets = figure1_db.query_from("ada", "knows*")
        relation = figure1_db.query("knows*", method="reference").pairs
        assert targets == frozenset(b for a, b in relation if a == "ada")

    def test_query_pair(self, figure1_db):
        assert figure1_db.query_pair("kim", "sue", "supervisor/^worksFor")
        assert not figure1_db.query_pair("sue", "kim", "supervisor/^worksFor")

    def test_unknown_source_raises(self, figure1_db):
        from repro.errors import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            figure1_db.query_from("ghost", "knows")
