"""Shared fixtures for the test suite.

The ``REPRO_DEFAULT_SHARDS`` knob (read by
:func:`repro.api.default_shard_count`) reroutes every database the
suite builds without an explicit ``shards=`` through the sharded
engine — CI's ``sharded-stress`` step runs the whole tier-1 suite
under ``REPRO_DEFAULT_SHARDS=4`` so the scatter-gather path is
exercised by every test, not just ``test_sharding.py``.  Tests that
deliberately poke unsharded internals pin ``shards=1`` at their call
site; oracles in transparency tests do the same.
"""

from __future__ import annotations

import os

import pytest

from repro.api import GraphDatabase, default_shard_count
from repro.graph.examples import diamond, figure1_graph, two_triangles
from repro.graph.generators import advogato_like, erdos_renyi
from repro.graph.graph import Graph


def pytest_report_header(config) -> str:
    """Make the sharded-stress mode visible in every pytest run header."""
    shards = default_shard_count()
    if shards > 1:
        return (
            f"repro: REPRO_DEFAULT_SHARDS={os.environ['REPRO_DEFAULT_SHARDS']}"
            f" — default-configured databases run the sharded engine"
        )
    return "repro: unsharded default engine (set REPRO_DEFAULT_SHARDS to stress)"


@pytest.fixture(scope="session")
def default_shards() -> int:
    """The shard count default-configured databases resolve to."""
    return default_shard_count()


@pytest.fixture(scope="session")
def figure1() -> Graph:
    """The paper's Figure-1 example graph (reconstruction)."""
    return figure1_graph()


@pytest.fixture(scope="session")
def figure1_db(figure1: Graph) -> GraphDatabase:
    """Figure-1 graph indexed at k=2."""
    return GraphDatabase(figure1, k=2)


@pytest.fixture(scope="session")
def figure1_db_k3(figure1: Graph) -> GraphDatabase:
    """Figure-1 graph indexed at k=3."""
    return GraphDatabase(figure1, k=3)


@pytest.fixture(scope="session")
def small_social() -> Graph:
    """A small Advogato-like graph for engine tests."""
    return advogato_like(nodes=60, edges=240, seed=11)


@pytest.fixture(scope="session")
def small_social_db(small_social: Graph) -> GraphDatabase:
    return GraphDatabase(small_social, k=2)


@pytest.fixture(scope="session")
def random_two_label() -> Graph:
    """A seeded two-label random graph."""
    return erdos_renyi(nodes=25, edges=80, labels=("a", "b"), seed=3)


@pytest.fixture()
def diamond_graph() -> Graph:
    return diamond()


@pytest.fixture()
def triangles_graph() -> Graph:
    return two_triangles()
