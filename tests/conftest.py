"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.api import GraphDatabase
from repro.graph.examples import diamond, figure1_graph, two_triangles
from repro.graph.generators import advogato_like, erdos_renyi
from repro.graph.graph import Graph


@pytest.fixture(scope="session")
def figure1() -> Graph:
    """The paper's Figure-1 example graph (reconstruction)."""
    return figure1_graph()


@pytest.fixture(scope="session")
def figure1_db(figure1: Graph) -> GraphDatabase:
    """Figure-1 graph indexed at k=2."""
    return GraphDatabase(figure1, k=2)


@pytest.fixture(scope="session")
def figure1_db_k3(figure1: Graph) -> GraphDatabase:
    """Figure-1 graph indexed at k=3."""
    return GraphDatabase(figure1, k=3)


@pytest.fixture(scope="session")
def small_social() -> Graph:
    """A small Advogato-like graph for engine tests."""
    return advogato_like(nodes=60, edges=240, seed=11)


@pytest.fixture(scope="session")
def small_social_db(small_social: Graph) -> GraphDatabase:
    return GraphDatabase(small_social, k=2)


@pytest.fixture(scope="session")
def random_two_label() -> Graph:
    """A seeded two-label random graph."""
    return erdos_renyi(nodes=25, edges=80, labels=("a", "b"), seed=3)


@pytest.fixture()
def diamond_graph() -> Graph:
    return diamond()


@pytest.fixture()
def triangles_graph() -> Graph:
    return two_triangles()
