"""Tests for the equi-depth k-path histogram (Section 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graph.examples import figure1_graph
from repro.graph.graph import LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex


@pytest.fixture(scope="module")
def fig1_setup():
    graph = figure1_graph()
    index = PathIndex.build(graph, k=2)
    histogram = EquiDepthHistogram.from_index(index, graph, buckets=8)
    return graph, index, histogram


class TestConstruction:
    def test_bucket_count_bounded(self, fig1_setup):
        _, _, histogram = fig1_setup
        assert 1 <= histogram.bucket_count <= 8

    def test_single_bucket(self, fig1_setup):
        graph, index, _ = fig1_setup
        histogram = EquiDepthHistogram.from_index(index, graph, buckets=1)
        assert histogram.bucket_count == 1

    def test_empty_counts(self):
        histogram = EquiDepthHistogram.from_counts({}, k=2, total_paths_k=10)
        assert histogram.bucket_count == 0
        assert histogram.estimated_count(LabelPath.of("a")) == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ValidationError):
            EquiDepthHistogram.from_counts({"a": 1}, k=2, total_paths_k=5, buckets=0)

    def test_parallel_arrays_validated(self):
        with pytest.raises(ValidationError):
            EquiDepthHistogram(["a"], [1, 2], [3], k=1, total_paths_k=1)

    def test_equi_depth_property(self):
        """With many buckets available, bucket depths are balanced."""
        counts = {f"p{i:02d}": 10 for i in range(16)}
        histogram = EquiDepthHistogram.from_counts(
            counts, k=1, total_paths_k=160, buckets=4
        )
        totals = histogram._bucket_totals
        assert all(total == pytest.approx(40, rel=0.5) for total in totals)


class TestEstimation:
    def test_estimates_within_bucket_bounds(self, fig1_setup):
        graph, index, histogram = fig1_setup
        counts = index.counts_by_path()
        for encoded, truth in counts.items():
            estimate = histogram.estimated_count(LabelPath.decode(encoded))
            assert estimate >= 0.0
            # the estimate is a bucket average, so it cannot exceed the
            # bucket's total, which is at most the grand total
            assert estimate <= sum(counts.values())

    def test_exact_when_buckets_exceed_paths(self, fig1_setup):
        graph, index, _ = fig1_setup
        counts = index.counts_by_path()
        histogram = EquiDepthHistogram.from_counts(
            counts,
            k=2,
            total_paths_k=count_paths_k(graph, 2),
            buckets=10 * len(counts),
        )
        # one path per bucket -> estimates are nearly exact except where
        # zero-count paths share a bucket with the next path
        for encoded, truth in counts.items():
            if truth > 0:
                estimate = histogram.estimated_count(LabelPath.decode(encoded))
                assert estimate == pytest.approx(truth, rel=1.0)

    def test_unknown_path_estimates_zero_or_bucket(self, fig1_setup):
        _, _, histogram = fig1_setup
        # A path lexicographically before every boundary -> 0.0
        assert histogram.estimated_count(LabelPath.of("aaa")) == 0.0

    def test_too_long_path_rejected(self, fig1_setup):
        _, _, histogram = fig1_setup
        with pytest.raises(ValidationError):
            histogram.estimated_count(LabelPath.of("a", "a", "a"))

    def test_selectivity_is_normalized_count(self, fig1_setup):
        graph, _, histogram = fig1_setup
        path = LabelPath.of("knows")
        expected = histogram.estimated_count(path) / count_paths_k(graph, 2)
        assert histogram.selectivity(path) == pytest.approx(expected)

    def test_paper_selectivity_example_shape(self, fig1_setup):
        """sel(supervisor ∘ knows) is |...|/|paths_2| — tiny but positive."""
        graph, index, _ = fig1_setup
        path = LabelPath.of("supervisor", "knows")
        exact_selectivity = index.count(path) / count_paths_k(graph, 2)
        assert 0.0 < exact_selectivity < 0.05

    def test_mean_absolute_error_zero_for_uniform_counts(self):
        counts = {f"p{i}": 7 for i in range(8)}
        histogram = EquiDepthHistogram.from_counts(
            counts, k=1, total_paths_k=56, buckets=4
        )
        assert histogram.mean_absolute_error(counts) == pytest.approx(0.0)

    def test_more_buckets_do_not_hurt_accuracy(self, fig1_setup):
        graph, index, _ = fig1_setup
        counts = index.counts_by_path()
        total = count_paths_k(graph, 2)
        coarse = EquiDepthHistogram.from_counts(counts, 2, total, buckets=2)
        fine = EquiDepthHistogram.from_counts(counts, 2, total, buckets=64)
        assert fine.mean_absolute_error(counts) <= coarse.mean_absolute_error(
            counts
        ) + 1e-9


class TestPersistence:
    def test_table_roundtrip(self, fig1_setup):
        graph, index, histogram = fig1_setup
        table = histogram.to_table()
        rebuilt = EquiDepthHistogram.from_table(
            table, k=histogram.k, total_paths_k=histogram.total_paths_k
        )
        for encoded in index.counts_by_path():
            path = LabelPath.decode(encoded)
            assert rebuilt.estimated_count(path) == histogram.estimated_count(path)

    def test_table_has_histogram_schema(self, fig1_setup):
        _, _, histogram = fig1_setup
        table = histogram.to_table()
        assert [column.name for column in table.columns] == [
            "bucket", "first_path", "paths", "total",
        ]
        assert len(table) == histogram.bucket_count


class TestRandomized:
    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.from_regex(r"[a-c](\.[a-c]){0,1}", fullmatch=True),
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_total_depth_preserved(self, counts, buckets):
        histogram = EquiDepthHistogram.from_counts(
            counts, k=2, total_paths_k=max(sum(counts.values()), 1),
            buckets=buckets,
        )
        assert sum(histogram._bucket_totals) == sum(counts.values())
        assert sum(histogram._bucket_paths) == len(counts)

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.from_regex(r"[a-c]", fullmatch=True),
            st.integers(min_value=0, max_value=50),
            min_size=1,
        )
    )
    def test_estimates_nonnegative(self, counts):
        histogram = EquiDepthHistogram.from_counts(
            counts, k=1, total_paths_k=max(sum(counts.values()), 1), buckets=4
        )
        for encoded in counts:
            assert histogram.estimated_count(LabelPath.decode(encoded)) >= 0.0
