"""Tests for witness-path extraction."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph.examples import diamond, figure1_graph
from repro.graph.generators import chain
from repro.graph.graph import Step
from repro.rpq.parser import parse
from repro.rpq.semantics import eval_ast
from repro.rpq.witness import Witness, all_witness_words, find_witness

from tests.strategies import graphs, rpq_asts


class TestFindWitness:
    def test_single_edge(self):
        graph = figure1_graph()
        witness = find_witness(graph, parse("supervisor"), "kim", "liz")
        assert witness is not None
        assert witness.hops == (("kim", Step("supervisor"), "liz"),)

    def test_no_witness(self):
        graph = figure1_graph()
        assert find_witness(graph, parse("supervisor"), "liz", "kim") is None

    def test_empty_word_witness(self):
        graph = figure1_graph()
        witness = find_witness(graph, parse("knows*"), "kim", "kim")
        assert witness is not None
        assert witness.hops == ()
        assert "empty word" in str(witness)

    def test_inverse_steps_in_witness(self):
        graph = figure1_graph()
        witness = find_witness(graph, parse("supervisor/^worksFor"), "kim", "sue")
        assert witness is not None
        assert witness.word() == (
            Step("supervisor"), Step("worksFor", inverse=True),
        )
        assert witness.hops[1] == ("liz", Step("worksFor", inverse=True), "sue")

    def test_witness_is_shortest(self):
        graph = chain(6)
        witness = find_witness(graph, parse("next{2,5}"), "n0", "n2")
        assert witness is not None
        assert witness.length == 2

    def test_diamond_any_route(self):
        graph = diamond()
        witness = find_witness(graph, parse("hop/hop"), "s", "t")
        assert witness is not None
        assert witness.length == 2
        assert witness.hops[0][0] == "s"
        assert witness.hops[1][2] == "t"

    def test_str_rendering(self):
        graph = figure1_graph()
        witness = find_witness(graph, parse("knows/worksFor"), "ada", "sam")
        if witness is not None:
            text = str(witness)
            assert text.startswith("ada")
            assert "->" in text

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_nodes=6, max_edges=12), rpq_asts(max_leaves=3))
    def test_witness_exists_iff_pair_in_answer(self, graph, node):
        answer = eval_ast(graph, node)
        names = graph.node_names()
        for source_id in list(graph.node_ids())[:3]:
            for target_id in list(graph.node_ids())[:3]:
                witness = find_witness(
                    graph, node, names[source_id], names[target_id]
                )
                expected = (source_id, target_id) in answer
                assert (witness is not None) == expected

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_nodes=5, max_edges=10), rpq_asts(max_leaves=3))
    def test_witness_hops_are_real_edges(self, graph, node):
        names = graph.node_names()
        answer = eval_ast(graph, node)
        for source_id, target_id in list(answer)[:5]:
            witness = find_witness(graph, node, names[source_id], names[target_id])
            assert witness is not None
            for from_name, step, to_name in witness.hops:
                if step.inverse:
                    assert graph.has_edge(to_name, step.label, from_name)
                else:
                    assert graph.has_edge(from_name, step.label, to_name)

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_nodes=5, max_edges=8), rpq_asts(max_leaves=2))
    def test_witness_is_minimal_length(self, graph, node):
        names = graph.node_names()
        answer = eval_ast(graph, node)
        for source_id, target_id in list(answer)[:3]:
            witness = find_witness(graph, node, names[source_id], names[target_id])
            assert witness is not None
            words = all_witness_words(
                graph, node, names[source_id], names[target_id], max_length=6
            )
            if words:
                assert witness.length <= min(len(word) for word in words)


class TestWitnessValue:
    def test_word_and_length(self):
        witness = Witness(
            source="a",
            target="c",
            hops=(("a", Step("x"), "b"), ("b", Step("y", inverse=True), "c")),
        )
        assert witness.length == 2
        assert witness.word() == (Step("x"), Step("y", inverse=True))
        assert str(witness) == "a -x-> b -^y-> c"
