"""Trust analysis over an Advogato-like social network.

The paper's intro motivates RPQs with social-network scenarios; its
evaluation uses Advogato, a trust network whose edges carry one of
three certification levels (master / journeyer / apprentice).  This
example runs the kinds of trust queries the dataset was collected for:

* direct and transitive endorsement,
* "trust laundering" (weakly certified users reachable only through
  apprentice edges),
* co-certification (users endorsed by the same master),
* bounded-hop trust neighborhoods.

Run:  python examples/social_network_analysis.py
"""

from repro import GraphDatabase
from repro.graph.generators import advogato_like
from repro.graph.stats import summarize

SEED = 42


def main() -> None:
    graph = advogato_like(nodes=400, edges=2800, seed=SEED)
    print(summarize(graph).format())
    print()

    db = GraphDatabase(graph, k=2)
    print("index:", db.index)
    print()

    def show(title: str, query: str, method: str = "minsupport", limit: int = 5):
        result = db.query(query, method=method)
        print(f"{title}\n  query:  {query}")
        print(f"  answer: {len(result)} pairs "
              f"({result.seconds * 1000:.2f} ms, {result.method})")
        for pair in sorted(result.pairs)[:limit]:
            print(f"    {pair[0]} -> {pair[1]}")
        if len(result) > limit:
            print(f"    ... and {len(result) - limit} more")
        print()

    # Who is certified at master level by someone certified at master level?
    show("Two-step master endorsement", "master/master")

    # Endorsement at any level, two hops.
    show(
        "Any certification, exactly two hops",
        "(master|journeyer|apprentice){2}",
    )

    # Co-certification: pairs endorsed by the same master-level certifier.
    show("Endorsed by the same master (co-certification)", "^master/master")

    # Chains that *downgrade*: master endorsement followed by apprentice.
    show("Trust downgrade chains", "master/apprentice")

    # Bounded transitive trust: who can reach whom through 1-3 journeyer
    # certifications (the paper's bounded-recursion workhorse)?
    show("Journeyer trust within 3 hops", "journeyer{1,3}")

    # Full transitive closure of master trust via the fixpoint fallback.
    show("Unbounded master reachability", "master+")

    # Compare evaluation methods on one query.
    query = "master/journeyer/apprentice"
    print(f"method comparison on {query!r}:")
    for method in ("naive", "semi-naive", "minsupport", "minjoin", "automaton"):
        result = db.query(query, method=method)
        print(f"  {method:<12} {result.seconds * 1000:8.2f} ms  "
              f"({len(result)} pairs)")


if __name__ == "__main__":
    main()
