"""Quickstart: load a graph, build a k-path index, run RPQs.

Run:  python examples/quickstart.py
"""

from repro import GraphDatabase

# The paper's running example (Figure 1): people connected by
# `knows`, `worksFor` and `supervisor` edges.
EDGES = [
    ("ada", "knows", "zoe"), ("zoe", "knows", "sam"),
    ("sue", "knows", "zoe"), ("kim", "knows", "sue"),
    ("liz", "knows", "joe"), ("jan", "knows", "joe"),
    ("joe", "knows", "tim"), ("tim", "knows", "jan"),
    ("sam", "knows", "tim"),
    ("sue", "worksFor", "liz"), ("zoe", "worksFor", "ada"),
    ("jan", "worksFor", "kim"), ("tim", "worksFor", "kim"),
    ("joe", "worksFor", "ada"), ("sam", "worksFor", "kim"),
    ("kim", "supervisor", "liz"),
]


def main() -> None:
    # Build the database with a 2-path index (all label paths of
    # length <= 2 are materialized in a B+tree).
    db = GraphDatabase.from_edges(EDGES, k=2)

    print("graph:", db.graph)
    print("index:", db.index)
    print()

    # A plain concatenation: who reaches whom by knows . knows . worksFor?
    result = db.query("knows/knows/worksFor")
    print(f"knows/knows/worksFor -> {len(result)} pairs "
          f"in {result.seconds * 1000:.2f} ms")
    for source, target in sorted(result.pairs):
        print(f"  {source} -> {target}")
    print()

    # Inverse steps: supervisors of one's colleagues (paper, Section 2.2).
    print("supervisor/^worksFor ->", sorted(db.query("supervisor/^worksFor").pairs))
    print()

    # Bounded recursion, the paper's replacement for Kleene star.
    recursive = db.query("(supervisor|worksFor|^worksFor){4,5}")
    print(f"(supervisor|worksFor|^worksFor){{4,5}} -> {len(recursive)} pairs")
    print()

    # The optimizer at work: inspect the physical plan.
    print(db.explain("knows/knows/worksFor/knows", method="minsupport"))
    print()

    # The selectivity histogram behind the optimizer (Section 3.2).
    for path in ("knows", "supervisor/knows"):
        print(f"sel({path}) ~= {db.selectivity(path):.4f}")


if __name__ == "__main__":
    main()
