"""Building, persisting and re-opening a disk-backed k-path index.

The paper's prototype stores ``I_{G,k}`` in PostgreSQL tables backed by
B+trees.  This repo ships an equivalent page-based disk B+tree; this
example shows the full persistence cycle:

1. build the index on disk (4 KiB pages, LRU buffer pool),
2. persist the path catalog next to it,
3. re-open both in a fresh session and answer queries,
4. inspect buffer-pool behaviour (hits / misses / evictions).

Run:  python examples/disk_index_persistence.py
"""

import tempfile
from pathlib import Path

from repro.graph.generators import advogato_like
from repro.graph.graph import LabelPath
from repro.indexes.pathindex import PathIndex


def main() -> None:
    graph = advogato_like(nodes=250, edges=1500, seed=13)
    workdir = Path(tempfile.mkdtemp(prefix="rpq_index_"))
    index_path = workdir / "advogato_k2.db"
    catalog_path = workdir / "advogato_k2.catalog.json"

    print(f"building disk index at {index_path} ...")
    index = PathIndex.build(graph, k=2, backend="disk", path=index_path)
    index.save_catalog(catalog_path)
    entries = index.entry_count
    paths = index.path_count
    index.close()
    size_kib = index_path.stat().st_size / 1024
    print(f"  {entries} entries over {paths} label paths, "
          f"{size_kib:.0f} KiB on disk")
    print()

    print("re-opening in a fresh session ...")
    with PathIndex.open_disk(graph, index_path, catalog_path) as reopened:
        sample = LabelPath.of("master", "journeyer")
        pairs = reopened.scan(sample)
        print(f"  scan({sample}) -> {len(pairs)} pairs")

        some_source = pairs[0][0] if pairs else 0
        targets = reopened.scan_from(sample, some_source)
        print(f"  scan_from({sample}, node {some_source}) -> "
              f"{len(targets)} targets")

        swapped = reopened.scan_swapped(sample)
        print(f"  scan_swapped({sample}) -> {len(swapped)} pairs "
              f"(target-sorted, for merge joins)")

        stats = reopened._backend._tree.pager_stats
        print()
        print("buffer pool after the scans:")
        print(f"  hits={stats.hits} misses={stats.misses} "
              f"evictions={stats.evictions} "
              f"hit-ratio={stats.hit_ratio():.2%}")


if __name__ == "__main__":
    main()
