"""Extensions beyond the demo paper: updates, witnesses, compression.

Three features the paper leaves as future work or delegates to the
companion study, shown working together:

1. **Incremental index maintenance** — edges are inserted and deleted
   while ``I_{G,k}`` stays consistent (no rebuild);
2. **Witness extraction** — every answer pair can be justified by a
   concrete shortest path;
3. **Compressed index backend** — delta+varint postings, with the
   measured compression ratio.

Run:  python examples/dynamic_and_explainable.py
"""

from repro.api import GraphDatabase
from repro.graph.examples import FIGURE1_EDGES, figure1_graph
from repro.graph.graph import LabelPath
from repro.indexes.compressed import compression_ratio
from repro.indexes.dynamic import DynamicPathIndex
from repro.indexes.pathindex import PathIndex


def incremental_updates() -> None:
    print("=" * 64)
    print("1. INCREMENTAL INDEX MAINTENANCE")
    print("=" * 64)
    index = DynamicPathIndex(figure1_graph(), k=2)
    path = LabelPath.of("knows", "worksFor")
    print(f"initially: |{path}| = {index.count(path)} pairs, "
          f"{index.entry_count} total entries")

    print("\ninsert liz -knows-> zoe  (new 2-paths through the edge appear)")
    index.add_edge("liz", "knows", "zoe")
    print(f"now:       |{path}| = {index.count(path)} pairs, "
          f"{index.entry_count} total entries")

    print("\ndelete it again")
    index.remove_edge("liz", "knows", "zoe")
    print(f"back to:   |{path}| = {index.count(path)} pairs, "
          f"{index.entry_count} total entries")

    fresh = PathIndex.build(index.graph, 2)
    consistent = all(
        index.scan(p) == fresh.scan(p) for p in fresh.paths()
    )
    print(f"\nconsistency vs full rebuild: {'OK' if consistent else 'BROKEN'}")
    print()


def witnesses() -> None:
    print("=" * 64)
    print("2. WITNESS EXTRACTION")
    print("=" * 64)
    db = GraphDatabase.from_edges(FIGURE1_EDGES, k=2)
    query = "knows/knows/worksFor"
    result = db.query(query)
    print(f"{query}: {len(result)} answer pairs")
    for source, target in sorted(result.pairs)[:4]:
        witness = db.witness(source, target, query)
        print(f"  ({source}, {target}) because  {witness}")
    print()


def compression() -> None:
    print("=" * 64)
    print("3. COMPRESSED INDEX BACKEND")
    print("=" * 64)
    from repro.graph.generators import advogato_like

    graph = advogato_like(nodes=300, edges=2000, seed=5)
    compressed = PathIndex.build(graph, k=2, backend="compressed")
    ratio = compression_ratio(compressed._backend)
    raw_bytes = 24 * compressed.entry_count
    actual = compressed._backend.byte_size()
    print(f"entries:          {compressed.entry_count}")
    print(f"raw 3x int64:     {raw_bytes / 1024:.0f} KiB")
    print(f"delta+varint:     {actual / 1024:.0f} KiB "
          f"({ratio:.1%} of raw)")

    db = GraphDatabase(graph, k=2, backend="compressed")
    result = db.query("master/journeyer")
    print(f"query through compressed index: master/journeyer -> "
          f"{len(result)} pairs in {result.seconds * 1000:.2f} ms")


if __name__ == "__main__":
    incremental_updates()
    witnesses()
    compression()
