"""Reproduce the paper's empirical artifacts (Figure 2 + comparisons).

Regenerates, on the synthetic Advogato stand-in:

* Figure 2 — the three panels of per-query run-times (8 queries x
  4 evaluation methods x k in {1,2,3});
* the Section 6 Datalog comparison (per-query speedups + geomean);
* the Section 3.1 traversal comparison (vs the automaton baseline);
* the index build table (size/time vs k).

Run:  python examples/figure2_experiment.py [scale]
where scale is small | bench (default) | medium | full.
"""

import sys

from repro.bench.harness import (
    run_automaton_comparison,
    run_datalog_comparison,
    run_figure2,
    run_index_build,
)
from repro.bench.plots import figure2_charts
from repro.bench.reporting import (
    figure2_trends,
    format_comparison,
    format_figure2,
    format_index_build,
)
from repro.bench.workloads import advogato_workload


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "bench"
    print(f"# Advogato-like workload, scale={scale!r}")
    prepared = advogato_workload(scale=scale, ks=(1, 2, 3))
    graph = prepared.graph
    print(f"# graph: {graph.node_count} nodes, {graph.edge_count} edges, "
          f"labels {list(graph.labels())}")
    print()

    print("## Figure 2 — query execution times")
    measurements = run_figure2(prepared, ks=(1, 2, 3), repeats=5)
    print(format_figure2(measurements))
    trends = figure2_trends(measurements)
    for claim, holds in trends.items():
        print(f"trend {claim}: {'holds' if holds else 'VIOLATED'}")
    print()

    print("## Figure 2 — as bar charts (the paper's visual form)")
    print(figure2_charts(measurements))
    print()

    print("## Section 6 — Datalog comparison")
    datalog_rows = run_datalog_comparison(prepared, k=3, repeats=3)
    print(format_comparison(datalog_rows, "Datalog"))
    print()

    print("## Section 3.1 — traversal (automaton) comparison")
    automaton_rows = run_automaton_comparison(prepared, k=3, repeats=3)
    print(format_comparison(automaton_rows, "automaton"))
    print()

    print("## Index build — size and time vs k")
    build_rows = run_index_build(graph, ks=(1, 2, 3))
    print(format_index_build(build_rows))


if __name__ == "__main__":
    main()
