"""The life of a regular path query — the paper's demo walkthrough.

Section 6 of the paper demonstrates "the life of a regular path query,
from its submission to our system, through parsing and optimization, to
execution".  This script narrates exactly that pipeline for the
Section 4 worked example  R = knows . (knows . worksFor){2,4} . worksFor.

The final stages show the same query as a *prepared template*
(`prepare` / `bind` / `run`: plan once, sweep the repetition bound),
the persisted plan artifact that lets a restarted disk-backed database
answer its first prepared query with zero planning, and what happens
when things go wrong: a deadline that expires mid-query, a shard that
keeps failing, and the degraded (subset) answer the engine can still
give.

The later stages serve the same engine as a multi-process service:
forked shard workers behind an HTTP front door, queried through the
`repro.client` API — including what a killed worker looks like from
the outside (a degraded subset, then supervision restores exactness).

The final stage is the write path: one `apply()` entry point takes a
batch of edge mutations through the group-committed write-ahead log
and per-shard delta patching, and a "crashed" engine reopened on the
same log replays itself back to exactly the acknowledged state.

Run:  python examples/life_of_a_query.py
"""

import tempfile
import time
from pathlib import Path

from repro import Client, GraphDatabase, ServiceConfig
from repro.engine.executor import evaluate_normal_form
from repro.errors import QueryTimeoutError, ShardUnavailableError
from repro.faults import FaultPlan, FaultRule, armed
from repro.engine.plan import render
from repro.engine.planner import Planner, Strategy
from repro.graph.examples import FIGURE1_EDGES
from repro.rpq.parser import parse, tokenize
from repro.rpq.rewrite import bound_star, expand_recursion, push_inverse

QUERY = "knows/(knows/worksFor){2,4}/worksFor"


def main() -> None:
    db = GraphDatabase.from_edges(FIGURE1_EDGES, k=3)
    graph = db.graph

    print("=" * 72)
    print("1. SUBMISSION")
    print("=" * 72)
    print("query text:", QUERY)
    print()

    print("=" * 72)
    print("2. PARSING")
    print("=" * 72)
    tokens = tokenize(QUERY)
    print("tokens:", " ".join(token.text for token in tokens))
    node = parse(QUERY)
    print("AST (unparsed):", node)
    print()

    print("=" * 72)
    print("3. REWRITING (Section 4, steps 1-2)")
    print("=" * 72)
    prepared = bound_star(push_inverse(node), bound=graph.node_count - 1)
    expanded = expand_recursion(prepared)
    print("after recursion expansion: a union of",
          len(getattr(expanded, "parts", [expanded])), "power terms")
    normal = db.normal_form(QUERY)
    print("normal form (union of label paths):")
    for path in normal.paths:
        print(f"  {path}    (length {len(path)})")
    print()

    print("=" * 72)
    print("4. PLANNING (Section 4, step 3)")
    print("=" * 72)
    for strategy in (Strategy.SEMI_NAIVE, Strategy.MIN_SUPPORT, Strategy.MIN_JOIN):
        planner = Planner(db.k, db.histogram, graph, strategy)
        costed = planner.plan(normal)
        print(f"--- {strategy.value} "
              f"(est. cost {costed.cost:.1f}, est. rows {costed.cardinality:.1f})")
        print(render(costed.plan))
        print()

    print("=" * 72)
    print("5. EXECUTION")
    print("=" * 72)
    for strategy in Strategy:
        report = evaluate_normal_form(
            normal, db.index, graph, db.histogram, strategy
        )
        print(
            f"{strategy.value:<12} {len(report.pairs):>4} pairs   "
            f"plan {report.planning_seconds * 1000:6.2f} ms   "
            f"exec {report.execution_seconds * 1000:6.2f} ms"
        )
    answer = db.query(QUERY)
    print()
    print("answer:", sorted(answer.pairs))
    print()

    print("=" * 72)
    print("6. PREPARED TEMPLATES (plan once, bind many)")
    print("=" * 72)
    template = "knows/(knows/worksFor){2,$n}/worksFor"
    print("template:", template)
    statement = db.prepare(template)
    for n in (2, 3, 4):
        result = statement.bind(n=n).run()
        print(f"  n={n}: {len(result.pairs):>3} pairs "
              f"({result.seconds * 1000:.2f} ms)")
    assert statement.bind(n=4).run().pairs == answer.pairs
    info = db.stats().as_dict()
    print(f"plans computed: {info['plans_computed']}, "
          f"plan-cache hits: {info['prepared_hits']}")
    anchored = db.prepare("from($v): knows{1,$n}")
    sue = anchored.run(v="sue", n=2)
    print(f"anchored 'from($v): knows{{1,$n}}' at v=sue, n=2: "
          f"{sorted(sue.pairs)}")
    print()

    print("=" * 72)
    print("7. THE RESTART STORY (persisted plan artifacts)")
    print("=" * 72)
    with tempfile.TemporaryDirectory() as scratch:
        index_path = Path(scratch) / "figure1.db"
        service = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=3, backend="disk", index_path=index_path
        )
        service.prepare(template).run(n=4)
        print("first process : planned once, artifact written next to",
              index_path.name)
        service.close()

        revived = GraphDatabase.from_edges(
            FIGURE1_EDGES, k=3, backend="disk", index_path=index_path
        )
        restarted = revived.prepare(template).run(n=4)
        info = revived.stats().as_dict()
        print(f"after restart : plans computed {info['plans_computed']}, "
              f"artifacts loaded {info['artifact_loads']}")
        assert info["plans_computed"] == 0, "restart should not re-plan"
        assert restarted.pairs == answer.pairs
        print("the revived service answered its first prepared query "
              "with ZERO planning")
        revived.close()
    print()

    print("=" * 72)
    print("8. WHEN THINGS GO WRONG (deadlines & degraded answers)")
    print("=" * 72)
    sharded = GraphDatabase.from_edges(FIGURE1_EDGES, k=3, shards=2)
    demo = "knows{1,3}"
    full = sharded.query(demo, use_cache=False)
    print(f"query {demo!r} on shards=2: {len(full.pairs)} pairs")
    try:
        sharded.query(demo, timeout_ms=1e-6, use_cache=False)
    except QueryTimeoutError as exc:
        print(f"timeout_ms=1e-6  -> {type(exc).__name__}: {exc}")
    # Arm a fault plan under which shard 0's scans *always* fail: the
    # retries exhaust, so strict queries surface a typed error while
    # degraded queries drop the dead slice and still answer.
    outage = FaultPlan([FaultRule("shard.scan", "transient", shard=0)], seed=3)
    with armed(outage):
        try:
            sharded.query(demo, use_cache=False)
        except ShardUnavailableError as exc:
            print(f"strict query     -> {type(exc).__name__} "
                  f"(shard {exc.shard} down)")
        partial = sharded.query(demo, degraded=True, use_cache=False)
    print(f"degraded query   -> {len(partial.pairs)} of "
          f"{len(full.pairs)} pairs, "
          f"partial={partial.report.partial}, "
          f"shards_failed={partial.report.shards_failed}")
    assert partial.report.partial
    assert set(partial.pairs) <= set(full.pairs)
    print("a degraded answer is a labelled SUBSET of the true answer —")
    print("every operator is monotone, so a dropped slice can only")
    print("remove pairs, never invent them")
    sharded.close()
    print()

    print("=" * 72)
    print("9. SERVING (worker processes behind an HTTP front door)")
    print("=" * 72)
    from repro.serve import CoordinatorDatabase
    from repro.serve.server import serve_in_thread

    database = CoordinatorDatabase.from_edges(
        FIGURE1_EDGES, config=ServiceConfig(k=3, shards=2)
    )
    handle = serve_in_thread(database, supervise_interval=0.1)
    client = Client(port=handle.port)
    try:
        health = client.health()
        print(f"serving on port {handle.port}: "
              f"{health['shards']} shard workers, backend "
              f"{health['backend']}")
        remote = client.query(demo)
        assert remote.pairs == frozenset(full.pairs)
        print(f"remote query     -> {demo!r}: {len(remote.pairs)} pairs, "
              f"identical to the embedded answer")
        # Kill a worker process outright — harsher than stage 8's fault
        # plan, but the contract is the same: typed error or labelled
        # subset, never a silently wrong answer.
        database._index.handles[0].kill()
        partial = client.query(demo, degraded=True, use_cache=False)
        if partial.partial:
            print(f"worker killed    -> degraded answer "
                  f"{len(partial.pairs)} of {len(full.pairs)} pairs "
                  f"(shards_failed={partial.shards_failed})")
            assert partial.pairs <= frozenset(full.pairs)
        # Supervision notices the corpse and forks a replacement; poll
        # until the answer is exact again.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            revived = client.query(demo, degraded=True, use_cache=False)
            if not revived.partial:
                break
            time.sleep(0.1)
        assert revived.pairs == frozenset(full.pairs)
        print("supervision      -> worker restarted, answers exact again")
    finally:
        handle.stop()
        database.close()
    print()

    print("=" * 72)
    print("10. THE WRITE PATH (one apply(), a WAL, delta patches)")
    print("=" * 72)
    from repro import Mutation, MutationBatch

    with tempfile.TemporaryDirectory() as scratch:
        config = ServiceConfig(
            k=3, shards=2, mutation_log_path=str(Path(scratch) / "wal.log")
        )
        store = GraphDatabase.from_edges(FIGURE1_EDGES, config=config)
        before = len(store.query(demo, use_cache=False).pairs)
        batch = MutationBatch.of(
            Mutation.add("sue", "knows", "bob"),
            Mutation.add("bob", "knows", "ann"),
            Mutation.remove("sue", "knows", "bob"),
        )
        result = store.apply(batch)
        print(f"apply(3 mutations) -> applied={result.applied} "
              f"noops={result.noops} mode={result.mode!r} "
              f"patched_shards={list(result.patched_shards)}")
        after = store.query(demo, use_cache=False).pairs
        print(f"answer moved: {before} -> {len(after)} pairs "
              f"(visible the moment apply() returns)")
        write = store.stats().write
        print(f"write stats  : groups={write.groups} "
              f"patched={write.patched} log_records={write.log_records}")
        store.close()

        # "Crash" and reopen on the same log: the journal suffix
        # replays and the answer is exactly where we left it.
        revived = GraphDatabase.from_edges(FIGURE1_EDGES, config=config)
        replayed = revived.stats().write.replayed
        assert revived.query(demo, use_cache=False).pairs == after
        print(f"after reopen : {replayed} batch(es) replayed from the "
              f"log, answers identical — no mutation lost, none doubled")
        revived.close()


if __name__ == "__main__":
    main()
