"""repro — regular path query evaluation using k-path indexes.

A from-scratch reproduction of Fletcher, Peters, Poulovassilis,
*Efficient regular path query evaluation using path indexes*
(EDBT 2016): an edge-labeled graph store, a B+tree-backed k-path index
with an equi-depth selectivity histogram, four plan-generation
strategies (naive, semi-naive, minSupport, minJoin), and the three
literature baselines (automaton search, Datalog, reachability index).

Quickstart::

    from repro import GraphDatabase, ServiceConfig

    db = GraphDatabase.from_edges(
        [("ada", "knows", "zoe"), ("zoe", "worksFor", "ada")],
        config=ServiceConfig(k=2),
    )
    print(db.query("knows/worksFor").pairs)

The namespace is deliberately curated: the embedded engine
(:class:`GraphDatabase` and its value types), its deployment config
(:class:`ServiceConfig`), the grouped counters (:class:`EngineStats`),
the service clients (:class:`Client` / :class:`AsyncClient` /
:class:`RemoteResult`), the unified write-path value types
(:class:`Mutation` / :class:`MutationBatch` / :class:`ApplyResult`),
and the one exception base callers should catch at boundaries
(:class:`ReproError`).  Serving-side machinery
lives in :mod:`repro.serve`; the full error taxonomy in
:mod:`repro.errors`.
"""

from repro.api import GraphDatabase, QueryResult
from repro.client import AsyncClient, Client, RemoteResult
from repro.config import ServiceConfig
from repro.engine.planner import Strategy
from repro.engine.prepared import BoundStatement, PreparedStatement
from repro.errors import ReproError
from repro.graph.graph import Graph, LabelPath, Step
from repro.relation import Order, Relation
from repro.rpq.parser import Template
from repro.stats import EngineStats
from repro.write import ApplyResult, Mutation, MutationBatch

__version__ = "1.3.0"

__all__ = [
    "ApplyResult",
    "AsyncClient",
    "BoundStatement",
    "Client",
    "EngineStats",
    "Graph",
    "GraphDatabase",
    "LabelPath",
    "Mutation",
    "MutationBatch",
    "Order",
    "PreparedStatement",
    "QueryResult",
    "Relation",
    "RemoteResult",
    "ReproError",
    "ServiceConfig",
    "Step",
    "Strategy",
    "Template",
    "__version__",
]
