"""repro — regular path query evaluation using k-path indexes.

A from-scratch reproduction of Fletcher, Peters, Poulovassilis,
*Efficient regular path query evaluation using path indexes*
(EDBT 2016): an edge-labeled graph store, a B+tree-backed k-path index
with an equi-depth selectivity histogram, four plan-generation
strategies (naive, semi-naive, minSupport, minJoin), and the three
literature baselines (automaton search, Datalog, reachability index).

Quickstart::

    from repro import GraphDatabase

    db = GraphDatabase.from_edges(
        [("ada", "knows", "zoe"), ("zoe", "worksFor", "ada")], k=2
    )
    print(db.query("knows/worksFor").pairs)
"""

from repro.api import GraphDatabase, QueryResult
from repro.engine.planner import Strategy
from repro.graph.graph import Graph, LabelPath, Step
from repro.relation import Order, Relation

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "GraphDatabase",
    "LabelPath",
    "Order",
    "QueryResult",
    "Relation",
    "Step",
    "Strategy",
    "__version__",
]
