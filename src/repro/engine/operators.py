"""Physical operators: executing plan trees against the k-path index.

Relations are columnar :class:`repro.relation.Relation` values — twin
int64 arrays plus a tracked sort order.  Index scans come back
duplicate-free and sorted by the B+tree (``BY_SRC`` direct, ``BY_TGT``
via an inverse scan); joins deduplicate their output through packed
integer keys (RPQ answers are sets — a pair may have many witness
paths, e.g. both routes through a diamond).

The merge join is the classic two-pointer group join over the sorted
inputs; the hash join builds on its smaller input.  Both produce the
*composition* ``left ∘ right``, matching ``left.target = right.source``.
Sort orders are validated twice: statically against the plan's declared
:class:`~repro.relation.Order` and dynamically against the order each
child relation actually carries, so a mis-planned merge join fails loud
instead of returning garbage.

:func:`execute` optionally threads a :class:`ScanMemo` — a
per-execution memo table over plan subtrees.  Normalized queries
routinely share work between union disjuncts (``R{1,3}`` plans the
``R`` scan three times; ``(a|b)*``-style expansions repeat whole join
subtrees), and plan nodes are immutable, hashable value objects, so
each distinct subtree is scanned/joined once per execution and every
repeat is a dictionary hit.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor

from repro import relation as rel
from repro.errors import (
    ExecutionError,
    ShardUnavailableError,
    StorageError,
    TransientError,
)
from repro.faults import RunContext, fire, retry_call
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    Order,
    PlanNode,
    UnionPlan,
)
from repro.graph.graph import Graph
from repro.indexes.pathindex import PathIndex
from repro.relation import Relation
from repro.sharding import DECISION_CACHE_MAX  # noqa: F401  (re-export)

#: The resilience contract applied when the caller sets nothing up:
#: default retries, no deadline, strict (non-degraded) answers.
_DEFAULT_CONTEXT = RunContext()


def merge_join(left, right) -> Relation:
    """Compose ``left`` (sorted by target) with ``right`` (sorted by source).

    Preconditions are the paper's physical sort orders: the left input
    comes from an inverse-path scan (target-major), the right from a
    direct scan (source-major).  Plain pair sequences are accepted for
    convenience and trusted to satisfy those orders.  Output is
    deduplicated, unordered.
    """
    left = Relation.coerce(left, Order.BY_TGT)
    right = Relation.coerce(right, Order.BY_SRC)
    return rel.merge_join(left, right)


def hash_join(left, right) -> Relation:
    """Compose ``left ∘ right`` with a hash table on the smaller input."""
    return rel.hash_join(Relation.coerce(left), Relation.coerce(right))


class ScanMemo:
    """Per-execution memo over plan subtrees (and hybrid AST subtrees).

    ``plans`` maps each executed :class:`PlanNode` to its result
    relation; ``asts`` does the same for AST nodes the hybrid fallback
    evaluates structurally.  Stored relations are *frozen*
    (:meth:`repro.relation.Relation.freeze`): a memoized result is
    handed to every consumer without copying, and every hit re-asserts
    the frozen invariant so a mutated shared relation fails loudly.

    ``hits`` counts results served from the memo; ``misses`` counts
    distinct subproblems actually computed.  Both are surfaced on
    :class:`repro.engine.executor.ExecutionReport` and aggregated by
    :meth:`repro.api.GraphDatabase.cache_info`.

    Access goes through :meth:`lookup_plan` / :meth:`store_plan` (and
    the ``_ast`` twins) so :class:`SharedScanMemo` can interpose a lock
    without the single-threaded path paying for one.
    """

    __slots__ = ("plans", "asts", "hits", "misses")

    def __init__(self) -> None:
        # Keys are PlanNodes for global executions and (PlanNode, shard)
        # tuples for shard-restricted slices (scatter-gather execution);
        # both are immutable hashable value objects.
        self.plans: dict = {}
        self.asts: dict = {}
        self.hits = 0
        self.misses = 0

    # -- plan subtrees ---------------------------------------------------

    def lookup_plan(self, plan: PlanNode) -> Relation | None:
        """The memoized result of ``plan``, counting the hit/miss."""
        cached = self.plans.get(plan)
        if cached is not None:
            self.hits += 1
            return cached.check_frozen()
        self.misses += 1
        return None

    def store_plan(self, plan: PlanNode, result: Relation) -> Relation:
        self.plans[plan] = result.freeze()
        return result

    # -- hybrid AST subtrees ----------------------------------------------

    def lookup_ast(self, node) -> Relation | None:
        cached = self.asts.get(node)
        if cached is not None:
            self.hits += 1
            return cached.check_frozen()
        self.misses += 1
        return None

    def store_ast(self, node, result: Relation) -> Relation:
        self.asts[node] = result.freeze()
        return result

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"(entries={len(self.plans) + len(self.asts)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class SharedScanMemo(ScanMemo):
    """A :class:`ScanMemo` safe to share across executor threads.

    :meth:`repro.api.GraphDatabase.query_batch` fans independent plans
    out over a thread pool with *one* memo, so identical scans across
    the batch run once.  Every lookup/store (and its counter update)
    happens under a lock; the worst concurrent interleaving is two
    threads computing the same subtree before either stores it — both
    results are equal and frozen, so last-store-wins is harmless.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def lookup_plan(self, plan: PlanNode) -> Relation | None:
        with self._lock:
            return super().lookup_plan(plan)

    def store_plan(self, plan: PlanNode, result: Relation) -> Relation:
        with self._lock:
            return super().store_plan(plan, result)

    def lookup_ast(self, node) -> Relation | None:
        with self._lock:
            return super().lookup_ast(node)

    def store_ast(self, node, result: Relation) -> Relation:
        with self._lock:
            return super().store_ast(node, result)


def execute(
    plan: PlanNode,
    index: PathIndex,
    graph: Graph,
    memo: ScanMemo | None = None,
    deadline=None,
) -> Relation:
    """Run a plan tree, returning the (deduplicated) result relation.

    With a ``memo``, every subtree result — index scans first among
    them — is computed at most once per execution (or per batch, when
    the memo is a :class:`SharedScanMemo` spanning one).

    ``deadline`` (a :class:`repro.faults.Deadline`) is checked once per
    plan node — operator granularity, the cooperative-timeout contract.
    """
    if deadline is not None:
        deadline.check()
    if memo is not None:
        cached = memo.lookup_plan(plan)
        if cached is not None:
            return cached
    result = _run(plan, index, graph, memo, deadline)
    if memo is not None:
        memo.store_plan(plan, result)
    return result


def _run(
    plan: PlanNode,
    index: PathIndex,
    graph: Graph,
    memo: ScanMemo | None,
    deadline=None,
) -> Relation:
    if isinstance(plan, IndexScanPlan):
        if plan.via_inverse:
            return _checked(plan, index.scan_swapped(plan.path))
        return _checked(plan, index.scan(plan.path))
    if isinstance(plan, IdentityPlan):
        return _checked(plan, rel.identity(graph.node_ids()))
    if isinstance(plan, JoinPlan):
        left = execute(plan.left, index, graph, memo, deadline)
        right = execute(plan.right, index, graph, memo, deadline)
        if plan.algorithm == "merge":
            _check_merge_inputs(plan)
            return rel.merge_join(left, right)
        return rel.hash_join(left, right)
    if isinstance(plan, UnionPlan):
        return rel.union(
            execute(part, index, graph, memo, deadline) for part in plan.parts
        )
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


class ScatterCounters:
    """Mutable tally of scatter-planning decisions for one execution.

    One instance spans a whole query execution (every
    :func:`execute_scattered` call the hybrid fallback makes shares
    it), and its totals land on
    :class:`repro.engine.executor.ExecutionReport` — the observable
    that makes shard pruning auditable instead of silent.
    """

    __slots__ = ("scanned", "pruned", "disjuncts_pruned", "replanned", "failed")

    def __init__(self) -> None:
        #: Shard executions that actually ran.
        self.scanned = 0
        #: Shard executions skipped outright (whole slice provably empty).
        self.pruned = 0
        #: Individual disjunct slices skipped (a skipped shard counts
        #: all of its disjuncts) — the finer-grained signal: a union
        #: query can prune most of its work in every shard without any
        #: shard being skipped whole.
        self.disjuncts_pruned = 0
        #: Disjunct join spines re-planned against a shard's statistics.
        self.replanned = 0
        #: Shard slices dropped because the shard stayed down through
        #: retries and the execution ran ``degraded`` — nonzero exactly
        #: when the answer is partial.
        self.failed = 0

    def __repr__(self) -> str:
        return (
            f"ScatterCounters(scanned={self.scanned}, "
            f"pruned={self.pruned}, "
            f"disjuncts_pruned={self.disjuncts_pruned}, "
            f"replanned={self.replanned}, "
            f"failed={self.failed})"
        )




class ScatterPolicy:
    """Per-shard planning decisions for scatter-gather execution.

    Built by the executor from the sharded engine's per-shard
    statistics (:meth:`repro.sharding.ShardedGraph.shard_statistics`)
    and consulted once per (plan, shard) before the slice runs:

    * **shard pruning** — a slice whose leftmost leaf has per-shard
      *exact* count zero is skipped.  Sound, not heuristic: the
      leftmost leaf pinned to the shard is exactly the shard's slice
      of that path, and composition/union with an empty leftmost
      input restricted to the shard produces nothing.  Union plans
      prune per disjunct; a shard with no live disjunct is skipped
      entirely.
    * **per-shard re-planning** — when a shard's *estimate* for some
      length-k window of a disjunct diverges from its uniform share
      of the global estimate beyond
      :attr:`~repro.sharding.ShardedGraph.replan_divergence`, the
      disjunct's join spine is re-costed against the shard's own
      statistics (``replan`` callback, supplied by the executor so
      this module stays planner-agnostic).  Any plan for the disjunct
      executes to the same shard slice, so re-planning is a pure
      performance decision — the shards=1 oracle pins that.

    Per-shard statistics only change on rebuild, so the whole
    (plan, shard) decision — result plan plus counter deltas — is
    cached on the index (:attr:`ShardedGraph.replan_cache`, dropped by
    ``rebuild_shards``): repeated queries pay one dictionary hit per
    shard instead of re-walking every disjunct.  ``cache_tag`` carries
    everything else the decision depends on (strategy, statistics
    flavor, the pruning/divergence knobs).  Decisions are made
    serially (before any thread fan-out), so the counters need no
    lock; concurrent readers racing to fill a cache key store equal
    values.
    """

    __slots__ = (
        "_sharded",
        "_statistics",
        "_disjunct_paths",
        "_replan",
        "_tag",
        "counters",
    )

    def __init__(
        self,
        sharded,
        statistics,
        disjunct_paths: dict[PlanNode, object] | None = None,
        replan=None,
        counters: ScatterCounters | None = None,
        cache_tag: tuple = (),
    ) -> None:
        self._sharded = sharded
        self._statistics = statistics
        self._disjunct_paths = disjunct_paths or {}
        self._replan = replan
        self._tag = cache_tag + (
            sharded.scatter_pruning,
            sharded.replan_divergence,
        )
        self.counters = counters if counters is not None else ScatterCounters()

    def shard_plan(self, shard: int, plan: PlanNode) -> PlanNode | None:
        """The plan this shard should execute, or ``None`` to skip it."""
        cache = self._sharded.replan_cache
        key = (shard, self._tag, plan)
        decided = cache.get(key)
        if decided is None:
            decided = self._decide(shard, plan)
            # The cache bounds itself (BoundedCache evicts FIFO), so a
            # template-heavy workload cannot grow it without limit.
            cache[key] = decided
        result, scanned, pruned, disjuncts_pruned, replanned = decided
        self.counters.scanned += scanned
        self.counters.pruned += pruned
        self.counters.disjuncts_pruned += disjuncts_pruned
        self.counters.replanned += replanned
        return result

    def _decide(
        self, shard: int, plan: PlanNode
    ) -> tuple[PlanNode | None, int, int, int, int]:
        """Uncached decision: (plan or None, counter deltas)."""
        statistics = self._sharded.shard_statistics(shard)
        pruning = self._sharded.scatter_pruning
        if isinstance(plan, UnionPlan):
            kept: list[PlanNode] = []
            disjuncts_pruned = 0
            replanned = 0
            for part in plan.parts:
                if pruning and self._slice_empty(part, shard, statistics):
                    disjuncts_pruned += 1
                    continue
                replacement, changed = self._maybe_replan(part, shard, statistics)
                replanned += changed
                kept.append(replacement)
            if not kept:
                return None, 0, 1, disjuncts_pruned, replanned
            if tuple(kept) == plan.parts:
                return plan, 1, 0, disjuncts_pruned, replanned
            return UnionPlan(tuple(kept)), 1, 0, disjuncts_pruned, replanned
        if pruning and self._slice_empty(plan, shard, statistics):
            return None, 0, 1, 1, 0
        replacement, changed = self._maybe_replan(plan, shard, statistics)
        return replacement, 1, 0, 0, changed

    # -- pruning ---------------------------------------------------------

    def _slice_empty(self, plan: PlanNode, shard: int, statistics) -> bool:
        """Is this shard's slice of ``plan`` provably empty?

        Only the leftmost leaf is consulted — it is the one input the
        scatter executor pins to the shard, and its exact per-shard
        count is ground truth, not an estimate.
        """
        if isinstance(plan, JoinPlan):
            return self._slice_empty(plan.left, shard, statistics)
        if isinstance(plan, UnionPlan):
            return all(
                self._slice_empty(part, shard, statistics) for part in plan.parts
            )
        if isinstance(plan, IndexScanPlan):
            # Direct and inverse scans both read the shard's slice of
            # plan.path itself (the inverse trick re-sorts, it does not
            # change which pairs the slice holds).
            return statistics.exact_count(plan.path) == 0
        if isinstance(plan, IdentityPlan):
            return not self._sharded.owned_ids(shard)
        return False  # unknown node: never prune what we cannot prove

    # -- re-planning -----------------------------------------------------

    def _maybe_replan(
        self, plan: PlanNode, shard: int, statistics
    ) -> tuple[PlanNode, int]:
        """``(plan to run, 1 if it was re-planned else 0)``."""
        divergence = self._sharded.replan_divergence
        if divergence is None or self._replan is None:
            return plan, 0
        path = self._disjunct_paths.get(plan)
        if path is None or len(path) <= self._sharded.k:
            # Unknown provenance, or a single-scan disjunct: there is
            # no join spine to reorder.
            return plan, 0
        if not self._diverges(path, statistics, divergence):
            return plan, 0
        replanned = self._replan(shard, path, statistics.provider(self._statistics))
        if replanned == plan:
            return plan, 0
        return replanned, 1

    def _diverges(self, path, statistics, divergence: float) -> bool:
        """Does the shard's distribution of ``path`` defy uniform 1/N?

        Compares, window by length-k window (the units every strategy
        costs with), the shard estimate against the global estimate's
        uniform share.  Additive-one smoothing keeps empty windows from
        dividing by zero and tiny counts from screaming skew.
        """
        k = self._sharded.k
        share = 1.0 / self._sharded.shard_count
        for offset in range(len(path) - k + 1):
            window = path.subpath(offset, offset + k)
            expected = self._statistics.estimated_count(window) * share
            observed = statistics.estimated_count(window)
            ratio = (observed + 1.0) / (expected + 1.0)
            if ratio > divergence or ratio < 1.0 / divergence:
                return True
        return False


def execute_scattered(
    plan: PlanNode,
    sharded,
    graph: Graph,
    memo: ScanMemo | None = None,
    workers: int = 1,
    policy: ScatterPolicy | None = None,
    context=None,
) -> Relation:
    """Run a plan against every shard and merge the slices.

    ``sharded`` is a :class:`repro.sharding.ShardedGraph`.  The plan is
    executed once per shard with its *output-source position* pinned to
    the shard: the leftmost leaf of every join chain (whose source
    column becomes the answer's source column) reads the shard-local
    slice, while every other subtree is executed globally through
    :func:`execute` — and therefore lands in the shared ``memo``, so
    the gather side of an inner scan is computed once and reused by
    all N shard executions.  Because the shard slices partition every
    relation by start owner, the final union is exact: it equals the
    unsharded execution of the same plan.

    ``policy`` (a :class:`ScatterPolicy`) makes the scatter skew-aware:
    provably-empty shard slices are skipped and skewed disjuncts are
    re-planned per shard — answers are unchanged either way.

    ``workers > 1`` fans the per-shard executions out over threads;
    this requires a :class:`SharedScanMemo` (the per-shard traversals
    populate the memo concurrently) and silently stays serial
    otherwise.

    The gather is the fused kernel
    :func:`repro.relation.union_into` with ``disjoint=True``: every
    slice's sources are owned by the producing shard (the leftmost
    leaf is pinned to the shard, and a subtree's output sources come
    from its leftmost input), owner sets partition the vertices, and
    each slice is individually duplicate-free — so the merge can skip
    duplicate elimination entirely.

    ``context`` (a :class:`repro.faults.RunContext`) adds the
    resilience semantics: per-slice retry with backoff, degraded
    (partial) answers, and cooperative deadline checks.  The gather
    itself is pure over already-collected slices, so a transient fault
    at its injection point is simply retried.
    """
    parts = scattered_parts(plan, sharded, graph, memo, workers, policy, context)
    deadline = context.deadline if context is not None else None
    retry = context.retry if context is not None else None

    def merge() -> Relation:
        fire("gather.merge", shards=len(parts))
        return rel.union_into(parts, disjoint=True)

    return retry_call(merge, policy=retry, deadline=deadline)


def scattered_parts(
    plan: PlanNode,
    sharded,
    graph: Graph,
    memo: ScanMemo | None = None,
    workers: int = 1,
    policy: ScatterPolicy | None = None,
    context=None,
) -> list[Relation]:
    """The per-shard slices of a plan's result, unmerged.

    What the recursive operators want: the slices of a ``Star``
    operand go straight into the *global* closure
    (:func:`repro.csr.partitioned_closure`), whose packed-key merge
    subsumes the union this module would otherwise perform.  Pruned
    shards contribute no slice at all (an empty list is a legal
    closure operand).  Thread fan-out follows the same rule as
    :func:`execute_scattered`: ``workers > 1`` requires a
    :class:`SharedScanMemo`; policy decisions are always taken
    serially first, so the policy counters stay unsynchronized.

    With a ``context``, each slice retries transient failures with
    capped backoff; a slice still failing is a *permanent* shard
    outage — :class:`ShardUnavailableError` in strict mode, a dropped
    slice (counted on ``policy.counters.failed``) in degraded mode.
    Dropping a slice is sound for *subset* semantics because every
    operator downstream (join, union, closure) is monotone: an answer
    computed from fewer slices is always a subset of the full answer,
    never a wrong pair.
    """
    if memo is None:
        memo = ScanMemo()
    deadline = context.deadline if context is not None else None
    if deadline is not None:
        deadline.check()
    if policy is None:
        live = [(shard, plan) for shard in range(sharded.shard_count)]
    else:
        live = []
        for shard in range(sharded.shard_count):
            shard_plan = policy.shard_plan(shard, plan)
            if shard_plan is not None:
                live.append((shard, shard_plan))
    if workers > 1 and len(live) > 1 and isinstance(memo, SharedScanMemo):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(workers, len(live))) as pool:
            parts = list(
                pool.map(
                    lambda pair: _guarded_slice(
                        pair[1], sharded, pair[0], graph, memo, context
                    ),
                    live,
                )
            )
    else:
        parts = [
            _guarded_slice(shard_plan, sharded, shard, graph, memo, context)
            for shard, shard_plan in live
        ]
    if context is not None and context.degraded:
        # Dropped slices are counted serially here rather than racing
        # increments inside the thread fan-out above.
        failed = parts.count(None)
        if failed:
            if policy is not None:
                policy.counters.failed += failed
            parts = [part for part in parts if part is not None]
    return parts


def _guarded_slice(
    plan: PlanNode,
    sharded,
    shard: int,
    graph: Graph,
    memo: ScanMemo,
    context,
) -> Relation | None:
    """One shard slice under the execution's resilience contract.

    Transient faults retry with backoff (deadline-clipped); what
    survives the retries is permanent *for this execution*.  Strict
    mode converts it to a typed :class:`ShardUnavailableError` naming
    the shard; degraded mode returns ``None`` (the caller drops and
    counts the slice).  Timeouts are never degraded away — a deadline
    is a promise to the caller, not a shard failure.

    ``context=None`` (a query with no explicit deadline or degraded
    opt-in) still retries: transient-fault recovery is engine default
    behavior, not something a caller must ask for.
    """
    if context is None:
        context = _DEFAULT_CONTEXT
    try:
        return retry_call(
            lambda: _run_on_shard(
                plan, sharded, shard, graph, memo, context.deadline
            ),
            policy=context.retry,
            deadline=context.deadline,
        )
    except (BrokenExecutor, TransientError) as error:
        if context.degraded:
            return None
        raise ShardUnavailableError(
            f"shard {shard} unavailable after retries: {error}", shard=shard
        ) from error
    except StorageError:
        # Permanent storage failure (corrupt page, bad magic): the
        # shard's backing file is unusable, which degraded mode treats
        # as one more downed shard; strict mode reports the storage
        # fault itself — it names the real problem.
        if context.degraded:
            return None
        raise


def _run_on_shard(
    plan: PlanNode,
    sharded,
    shard: int,
    graph: Graph,
    memo: ScanMemo,
    deadline=None,
) -> Relation:
    """One shard's slice of a plan: restrict along the leftmost spine.

    A composition's output sources come from its left input, so
    restricting the leftmost leaf to the shard's owned start vertices
    restricts the whole subtree's result to pairs the shard owns —
    every other input must stay global or cross-shard joins would be
    dropped.  Union nodes restrict every disjunct (a union's output
    sources come from all parts).

    Shard-restricted subtrees are memoized under ``(plan, shard)`` keys
    (global subtrees under the plan itself, via :func:`execute`), so a
    left-spine prefix shared by several disjuncts — ``R{1,3}`` repeats
    the ``R`` slice and the ``R·R`` join under every power — runs once
    per shard, exactly as the unsharded path runs it once.
    """
    if deadline is not None:
        deadline.check()
    cached = memo.lookup_plan((plan, shard))
    if cached is not None:
        return cached
    return memo.store_plan(
        (plan, shard),
        _run_on_shard_uncached(plan, sharded, shard, graph, memo, deadline),
    )


def _run_on_shard_uncached(
    plan: PlanNode,
    sharded,
    shard: int,
    graph: Graph,
    memo: ScanMemo,
    deadline=None,
) -> Relation:
    if isinstance(plan, IndexScanPlan):
        # The deadline travels into the scan call itself: the in-process
        # engine clips its retry backoff with it, and the RPC-backed
        # coordinator forwards it in every request header so a worker
        # stops computing a slice nobody will wait for.
        if plan.via_inverse:
            return sharded.shard_scan_swapped(shard, plan.path, deadline=deadline)
        return sharded.shard_scan(shard, plan.path, deadline=deadline)
    if isinstance(plan, IdentityPlan):
        return sharded.shard_identity(shard)
    if isinstance(plan, JoinPlan):
        left = _run_on_shard(plan.left, sharded, shard, graph, memo, deadline)
        right = execute(plan.right, sharded, graph, memo, deadline)
        if plan.algorithm == "merge":
            _check_merge_inputs(plan)
            return rel.merge_join(left.sorted_by(Order.BY_TGT), right)
        return rel.hash_join(left, right)
    if isinstance(plan, UnionPlan):
        return rel.union(
            _run_on_shard(part, sharded, shard, graph, memo, deadline)
            for part in plan.parts
        )
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _checked(plan: PlanNode, produced: Relation) -> Relation:
    """Validate that a leaf delivered the sort order its plan declares."""
    declared = plan.order
    if declared is not Order.NONE and produced.order is not declared:
        raise ExecutionError(
            f"{plan} declared {declared.value} but produced a relation "
            f"ordered {produced.order.value}"
        )
    return produced


def _check_merge_inputs(plan: JoinPlan) -> None:
    """Defensive check: a merge join requires compatible sort orders."""
    if plan.left.order is not Order.BY_TGT or plan.right.order is not Order.BY_SRC:
        raise ExecutionError(
            "merge join requires left sorted by target and right by source; "
            f"got {plan.left.order.value} / {plan.right.order.value}"
        )
