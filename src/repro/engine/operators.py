"""Physical operators: executing plan trees against the k-path index.

Relations are columnar :class:`repro.relation.Relation` values — twin
int64 arrays plus a tracked sort order.  Index scans come back
duplicate-free and sorted by the B+tree (``BY_SRC`` direct, ``BY_TGT``
via an inverse scan); joins deduplicate their output through packed
integer keys (RPQ answers are sets — a pair may have many witness
paths, e.g. both routes through a diamond).

The merge join is the classic two-pointer group join over the sorted
inputs; the hash join builds on its smaller input.  Both produce the
*composition* ``left ∘ right``, matching ``left.target = right.source``.
Sort orders are validated twice: statically against the plan's declared
:class:`~repro.relation.Order` and dynamically against the order each
child relation actually carries, so a mis-planned merge join fails loud
instead of returning garbage.

:func:`execute` optionally threads a :class:`ScanMemo` — a
per-execution memo table over plan subtrees.  Normalized queries
routinely share work between union disjuncts (``R{1,3}`` plans the
``R`` scan three times; ``(a|b)*``-style expansions repeat whole join
subtrees), and plan nodes are immutable, hashable value objects, so
each distinct subtree is scanned/joined once per execution and every
repeat is a dictionary hit.
"""

from __future__ import annotations

import threading

from repro import relation as rel
from repro.errors import ExecutionError
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    Order,
    PlanNode,
    UnionPlan,
)
from repro.graph.graph import Graph
from repro.indexes.pathindex import PathIndex
from repro.relation import Relation


def merge_join(left, right) -> Relation:
    """Compose ``left`` (sorted by target) with ``right`` (sorted by source).

    Preconditions are the paper's physical sort orders: the left input
    comes from an inverse-path scan (target-major), the right from a
    direct scan (source-major).  Plain pair sequences are accepted for
    convenience and trusted to satisfy those orders.  Output is
    deduplicated, unordered.
    """
    left = Relation.coerce(left, Order.BY_TGT)
    right = Relation.coerce(right, Order.BY_SRC)
    return rel.merge_join(left, right)


def hash_join(left, right) -> Relation:
    """Compose ``left ∘ right`` with a hash table on the smaller input."""
    return rel.hash_join(Relation.coerce(left), Relation.coerce(right))


class ScanMemo:
    """Per-execution memo over plan subtrees (and hybrid AST subtrees).

    ``plans`` maps each executed :class:`PlanNode` to its result
    relation; ``asts`` does the same for AST nodes the hybrid fallback
    evaluates structurally.  Stored relations are *frozen*
    (:meth:`repro.relation.Relation.freeze`): a memoized result is
    handed to every consumer without copying, and every hit re-asserts
    the frozen invariant so a mutated shared relation fails loudly.

    ``hits`` counts results served from the memo; ``misses`` counts
    distinct subproblems actually computed.  Both are surfaced on
    :class:`repro.engine.executor.ExecutionReport` and aggregated by
    :meth:`repro.api.GraphDatabase.cache_info`.

    Access goes through :meth:`lookup_plan` / :meth:`store_plan` (and
    the ``_ast`` twins) so :class:`SharedScanMemo` can interpose a lock
    without the single-threaded path paying for one.
    """

    __slots__ = ("plans", "asts", "hits", "misses")

    def __init__(self) -> None:
        # Keys are PlanNodes for global executions and (PlanNode, shard)
        # tuples for shard-restricted slices (scatter-gather execution);
        # both are immutable hashable value objects.
        self.plans: dict = {}
        self.asts: dict = {}
        self.hits = 0
        self.misses = 0

    # -- plan subtrees ---------------------------------------------------

    def lookup_plan(self, plan: PlanNode) -> Relation | None:
        """The memoized result of ``plan``, counting the hit/miss."""
        cached = self.plans.get(plan)
        if cached is not None:
            self.hits += 1
            return cached.check_frozen()
        self.misses += 1
        return None

    def store_plan(self, plan: PlanNode, result: Relation) -> Relation:
        self.plans[plan] = result.freeze()
        return result

    # -- hybrid AST subtrees ----------------------------------------------

    def lookup_ast(self, node) -> Relation | None:
        cached = self.asts.get(node)
        if cached is not None:
            self.hits += 1
            return cached.check_frozen()
        self.misses += 1
        return None

    def store_ast(self, node, result: Relation) -> Relation:
        self.asts[node] = result.freeze()
        return result

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"(entries={len(self.plans) + len(self.asts)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class SharedScanMemo(ScanMemo):
    """A :class:`ScanMemo` safe to share across executor threads.

    :meth:`repro.api.GraphDatabase.query_batch` fans independent plans
    out over a thread pool with *one* memo, so identical scans across
    the batch run once.  Every lookup/store (and its counter update)
    happens under a lock; the worst concurrent interleaving is two
    threads computing the same subtree before either stores it — both
    results are equal and frozen, so last-store-wins is harmless.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def lookup_plan(self, plan: PlanNode) -> Relation | None:
        with self._lock:
            return super().lookup_plan(plan)

    def store_plan(self, plan: PlanNode, result: Relation) -> Relation:
        with self._lock:
            return super().store_plan(plan, result)

    def lookup_ast(self, node) -> Relation | None:
        with self._lock:
            return super().lookup_ast(node)

    def store_ast(self, node, result: Relation) -> Relation:
        with self._lock:
            return super().store_ast(node, result)


def execute(
    plan: PlanNode,
    index: PathIndex,
    graph: Graph,
    memo: ScanMemo | None = None,
) -> Relation:
    """Run a plan tree, returning the (deduplicated) result relation.

    With a ``memo``, every subtree result — index scans first among
    them — is computed at most once per execution (or per batch, when
    the memo is a :class:`SharedScanMemo` spanning one).
    """
    if memo is not None:
        cached = memo.lookup_plan(plan)
        if cached is not None:
            return cached
    result = _run(plan, index, graph, memo)
    if memo is not None:
        memo.store_plan(plan, result)
    return result


def _run(
    plan: PlanNode, index: PathIndex, graph: Graph, memo: ScanMemo | None
) -> Relation:
    if isinstance(plan, IndexScanPlan):
        if plan.via_inverse:
            return _checked(plan, index.scan_swapped(plan.path))
        return _checked(plan, index.scan(plan.path))
    if isinstance(plan, IdentityPlan):
        return _checked(plan, rel.identity(graph.node_ids()))
    if isinstance(plan, JoinPlan):
        left = execute(plan.left, index, graph, memo)
        right = execute(plan.right, index, graph, memo)
        if plan.algorithm == "merge":
            _check_merge_inputs(plan)
            return rel.merge_join(left, right)
        return rel.hash_join(left, right)
    if isinstance(plan, UnionPlan):
        return rel.union(execute(part, index, graph, memo) for part in plan.parts)
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def execute_scattered(
    plan: PlanNode,
    sharded,
    graph: Graph,
    memo: ScanMemo | None = None,
    workers: int = 1,
) -> Relation:
    """Run a plan against every shard and merge the slices.

    ``sharded`` is a :class:`repro.sharding.ShardedGraph`.  The plan is
    executed once per shard with its *output-source position* pinned to
    the shard: the leftmost leaf of every join chain (whose source
    column becomes the answer's source column) reads the shard-local
    slice, while every other subtree is executed globally through
    :func:`execute` — and therefore lands in the shared ``memo``, so
    the gather side of an inner scan is computed once and reused by
    all N shard executions.  Because the shard slices partition every
    relation by start owner, the final union is exact: it equals the
    unsharded execution of the same plan.

    ``workers > 1`` fans the per-shard executions out over threads;
    this requires a :class:`SharedScanMemo` (the per-shard traversals
    populate the memo concurrently) and silently stays serial
    otherwise.
    """
    return rel.union(scattered_parts(plan, sharded, graph, memo, workers))


def scattered_parts(
    plan: PlanNode,
    sharded,
    graph: Graph,
    memo: ScanMemo | None = None,
    workers: int = 1,
) -> list[Relation]:
    """The per-shard slices of a plan's result, unmerged.

    What the recursive operators want: the slices of a ``Star``
    operand go straight into the *global* closure
    (:func:`repro.csr.partitioned_closure`), whose packed-key merge
    subsumes the union this module would otherwise perform.  Thread
    fan-out follows the same rule as :func:`execute_scattered`:
    ``workers > 1`` requires a :class:`SharedScanMemo`.
    """
    if memo is None:
        memo = ScanMemo()
    shard_ids = range(sharded.shard_count)
    if workers > 1 and sharded.shard_count > 1 and isinstance(memo, SharedScanMemo):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(workers, sharded.shard_count)
        ) as pool:
            return list(
                pool.map(
                    lambda shard: _run_on_shard(plan, sharded, shard, graph, memo),
                    shard_ids,
                )
            )
    return [
        _run_on_shard(plan, sharded, shard, graph, memo)
        for shard in shard_ids
    ]


def _run_on_shard(
    plan: PlanNode, sharded, shard: int, graph: Graph, memo: ScanMemo
) -> Relation:
    """One shard's slice of a plan: restrict along the leftmost spine.

    A composition's output sources come from its left input, so
    restricting the leftmost leaf to the shard's owned start vertices
    restricts the whole subtree's result to pairs the shard owns —
    every other input must stay global or cross-shard joins would be
    dropped.  Union nodes restrict every disjunct (a union's output
    sources come from all parts).

    Shard-restricted subtrees are memoized under ``(plan, shard)`` keys
    (global subtrees under the plan itself, via :func:`execute`), so a
    left-spine prefix shared by several disjuncts — ``R{1,3}`` repeats
    the ``R`` slice and the ``R·R`` join under every power — runs once
    per shard, exactly as the unsharded path runs it once.
    """
    cached = memo.lookup_plan((plan, shard))
    if cached is not None:
        return cached
    return memo.store_plan(
        (plan, shard), _run_on_shard_uncached(plan, sharded, shard, graph, memo)
    )


def _run_on_shard_uncached(
    plan: PlanNode, sharded, shard: int, graph: Graph, memo: ScanMemo
) -> Relation:
    if isinstance(plan, IndexScanPlan):
        if plan.via_inverse:
            return sharded.shard_scan_swapped(shard, plan.path)
        return sharded.shard_scan(shard, plan.path)
    if isinstance(plan, IdentityPlan):
        return sharded.shard_identity(shard)
    if isinstance(plan, JoinPlan):
        left = _run_on_shard(plan.left, sharded, shard, graph, memo)
        right = execute(plan.right, sharded, graph, memo)
        if plan.algorithm == "merge":
            _check_merge_inputs(plan)
            return rel.merge_join(left.sorted_by(Order.BY_TGT), right)
        return rel.hash_join(left, right)
    if isinstance(plan, UnionPlan):
        return rel.union(
            _run_on_shard(part, sharded, shard, graph, memo)
            for part in plan.parts
        )
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _checked(plan: PlanNode, produced: Relation) -> Relation:
    """Validate that a leaf delivered the sort order its plan declares."""
    declared = plan.order
    if declared is not Order.NONE and produced.order is not declared:
        raise ExecutionError(
            f"{plan} declared {declared.value} but produced a relation "
            f"ordered {produced.order.value}"
        )
    return produced


def _check_merge_inputs(plan: JoinPlan) -> None:
    """Defensive check: a merge join requires compatible sort orders."""
    if plan.left.order is not Order.BY_TGT or plan.right.order is not Order.BY_SRC:
        raise ExecutionError(
            "merge join requires left sorted by target and right by source; "
            f"got {plan.left.order.value} / {plan.right.order.value}"
        )
