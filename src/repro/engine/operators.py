"""Physical operators: executing plan trees against the k-path index.

Relations are materialized lists of ``(source, target)`` id pairs.
Index scans are duplicate-free and sorted by the B+tree; joins
deduplicate their output (RPQ answers are sets — a pair may have many
witness paths, e.g. both routes through a diamond).

The merge join is the classic two-pointer group join over the sorted
inputs; the hash join builds on its smaller input.  Both produce the
*composition* ``left ∘ right``, matching ``left.target = right.source``.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    PlanNode,
    UnionPlan,
)
from repro.graph.graph import Graph
from repro.indexes.pathindex import PathIndex

Pair = tuple[int, int]


def merge_join(left: list[Pair], right: list[Pair]) -> list[Pair]:
    """Compose ``left`` (sorted by target) with ``right`` (sorted by source).

    Preconditions are the paper's physical sort orders: the left input
    comes from an inverse-path scan (target-major), the right from a
    direct scan (source-major).  Output is deduplicated, unordered.
    """
    result: set[Pair] = set()
    i = j = 0
    left_len, right_len = len(left), len(right)
    while i < left_len and j < right_len:
        key_left = left[i][1]
        key_right = right[j][0]
        if key_left < key_right:
            i += 1
        elif key_left > key_right:
            j += 1
        else:
            i_end = i
            while i_end < left_len and left[i_end][1] == key_left:
                i_end += 1
            j_end = j
            while j_end < right_len and right[j_end][0] == key_right:
                j_end += 1
            for source, _ in left[i:i_end]:
                for _, target in right[j:j_end]:
                    result.add((source, target))
            i, j = i_end, j_end
    return list(result)


def hash_join(left: list[Pair], right: list[Pair]) -> list[Pair]:
    """Compose ``left ∘ right`` with a hash table on the smaller input."""
    result: set[Pair] = set()
    if len(left) <= len(right):
        by_target: dict[int, list[int]] = {}
        for source, target in left:
            by_target.setdefault(target, []).append(source)
        for mid, target in right:
            sources = by_target.get(mid)
            if sources:
                for source in sources:
                    result.add((source, target))
    else:
        by_source: dict[int, list[int]] = {}
        for source, target in right:
            by_source.setdefault(source, []).append(target)
        for source, mid in left:
            targets = by_source.get(mid)
            if targets:
                for target in targets:
                    result.add((source, target))
    return list(result)


def execute(plan: PlanNode, index: PathIndex, graph: Graph) -> list[Pair]:
    """Run a plan tree, returning the (deduplicated) result pairs."""
    if isinstance(plan, IndexScanPlan):
        if plan.via_inverse:
            return index.scan_swapped(plan.path)
        return index.scan(plan.path)
    if isinstance(plan, IdentityPlan):
        return [(node, node) for node in graph.node_ids()]
    if isinstance(plan, JoinPlan):
        left = execute(plan.left, index, graph)
        right = execute(plan.right, index, graph)
        if plan.algorithm == "merge":
            _check_merge_inputs(plan)
            return merge_join(left, right)
        return hash_join(left, right)
    if isinstance(plan, UnionPlan):
        result: set[Pair] = set()
        for part in plan.parts:
            result.update(execute(part, index, graph))
        return list(result)
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _check_merge_inputs(plan: JoinPlan) -> None:
    """Defensive check: a merge join requires compatible sort orders."""
    from repro.engine.plan import Order

    if plan.left.order is not Order.BY_TGT or plan.right.order is not Order.BY_SRC:
        raise ExecutionError(
            "merge join requires left sorted by target and right by source; "
            f"got {plan.left.order.value} / {plan.right.order.value}"
        )
