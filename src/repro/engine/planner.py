"""The four plan-generation strategies of the paper (Sections 4-5).

Every strategy receives a query in normal form (a union of label
paths, produced by :mod:`repro.rpq.rewrite`) and plans each disjunct:

* **naive** — k is treated as 1: the disjunct is split into single
  steps, planned left to right.  The first join can still be a merge
  join (scan the first step via its inverse); the rest are hash joins.
  This corresponds to automaton-style stepping (approach 1).
* **semi-naive** — the disjunct is split greedily left-to-right into
  chunks of length k; the leading chunk is scanned via its inverse so
  the first join is a merge join, later joins are hash joins.  This is
  exactly the worked example of Section 4.
* **minSupport** — recursive: find the most selective length-k subpath
  ``D'`` (smallest histogram estimate), split ``D = Dleft ∘ D' ∘ Dright``,
  recur on the sides, and cost the paper's four alternatives
  (two associativities × scanning ``D'`` directly or via its inverse),
  keeping the cheapest.
* **minJoin** — like minSupport but constrained to the *minimum number
  of joins*: the disjunct is split into ``ceil(n/k)`` chunks (the
  cheapest such chunking by estimated scan volume), then the best join
  tree over those chunks is found by interval dynamic programming with
  sort orders as interesting properties.

All strategies share the convention that a subpath of length <= k has
two scan candidates: the direct scan (sorted by source) and the
inverse-path scan (sorted by target), which is what makes merge joins
available at all (System-R-style interesting orders).
"""

from __future__ import annotations

import enum
import math

from repro.errors import PlanningError
from repro.graph.graph import Graph, LabelPath
from repro.engine.cost import CostModel, CostedPlan
from repro.engine.plan import PlanNode, UnionPlan
from repro.rpq.rewrite import NormalForm


class Strategy(enum.Enum):
    """Evaluation strategies compared in the paper's Figure 2."""

    NAIVE = "naive"
    SEMI_NAIVE = "semi-naive"
    MIN_SUPPORT = "minsupport"
    MIN_JOIN = "minjoin"

    @classmethod
    def parse(cls, name: str) -> "Strategy":
        normalized = name.strip().lower().replace("_", "-")
        for strategy in cls:
            aliases = (strategy.value, strategy.name.lower().replace("_", "-"))
            if normalized in aliases:
                return strategy
        raise PlanningError(
            f"unknown strategy {name!r}; expected one of "
            f"{[strategy.value for strategy in cls]}"
        )


class Planner:
    """Plans normal-form queries against a k-path index."""

    def __init__(
        self,
        k: int,
        statistics,
        graph: Graph,
        strategy: Strategy = Strategy.MIN_SUPPORT,
    ):
        if k < 1:
            raise PlanningError(f"k must be >= 1, got {k}")
        self.k = k
        self.strategy = strategy
        self._graph = graph
        self._cost_model = CostModel(statistics, graph)
        self._statistics = statistics

    def with_statistics(self, statistics) -> "Planner":
        """This planner re-anchored on another statistics provider.

        The scatter executor re-plans a disjunct against one shard's
        statistics slice this way: same k, same strategy, same graph —
        only the estimates change.
        """
        return Planner(self.k, statistics, self._graph, self.strategy)

    # -- entry points ----------------------------------------------------------

    def plan(self, normal_form: NormalForm) -> CostedPlan:
        """Plan a whole query: a union over per-disjunct plans."""
        return self.assemble(self.disjunct_plans(normal_form))

    def disjunct_plans(
        self, normal_form: NormalForm
    ) -> list[tuple[LabelPath | None, CostedPlan]]:
        """Per-disjunct plans, each tagged with its source label path.

        The epsilon disjunct carries ``None``.  The tagging is what the
        scatter executor needs to re-plan one disjunct against a
        shard's statistics without re-deriving which path a plan
        subtree came from.
        """
        parts: list[tuple[LabelPath | None, CostedPlan]] = []
        if normal_form.has_epsilon:
            parts.append((None, self._cost_model.identity()))
        for path in normal_form.paths:
            parts.append((path, self.plan_path(path)))
        if not parts:
            raise PlanningError("cannot plan an empty query")
        return parts

    @staticmethod
    def assemble(
        parts: list[tuple[LabelPath | None, CostedPlan]],
    ) -> CostedPlan:
        """Fold tagged disjunct plans into the whole-query plan."""
        costed = [part for _, part in parts]
        if len(costed) == 1:
            return costed[0]
        union = UnionPlan(tuple(part.plan for part in costed))
        return CostedPlan(
            plan=union,
            cardinality=sum(part.cardinality for part in costed),
            cost=sum(part.cost for part in costed),
        )

    def plan_path(self, path: LabelPath) -> CostedPlan:
        """Plan one label-path disjunct with the configured strategy."""
        if self.strategy is Strategy.NAIVE:
            return self._left_to_right(path, chunk_size=1)
        if self.strategy is Strategy.SEMI_NAIVE:
            return self._left_to_right(path, chunk_size=self.k)
        if self.strategy is Strategy.MIN_SUPPORT:
            return self._cheapest(self._min_support(path))
        if self.strategy is Strategy.MIN_JOIN:
            return self._min_join(path)
        raise PlanningError(f"unhandled strategy {self.strategy}")

    # -- naive / semi-naive ---------------------------------------------------------

    def _left_to_right(self, path: LabelPath, chunk_size: int) -> CostedPlan:
        """Greedy left-to-right chunking (paper's semi-naive; naive at 1).

        The leading chunk is scanned via its inverse so the first join
        is a merge join; every later join input is an unordered join
        result, hence hash joins — exactly the Section 4 example.
        """
        chunks = _chunk(path, chunk_size)
        if len(chunks) == 1:
            return self._cost_model.scan(chunks[0])
        current = self._cost_model.scan(chunks[0], via_inverse=True)
        for chunk in chunks[1:]:
            current = self._cost_model.join(current, self._cost_model.scan(chunk))
        return current

    # -- minSupport --------------------------------------------------------------------

    def _min_support(self, path: LabelPath) -> dict[object, CostedPlan]:
        """Best candidate plans per sort order for ``path``."""
        if len(path) <= self.k:
            direct = self._cost_model.scan(path)
            swapped = self._cost_model.scan(path, via_inverse=True)
            return {direct.order: direct, swapped.order: swapped}

        window = self._most_selective_window(path)
        left_part = path.subpath(0, window) if window > 0 else None
        right_start = window + self.k
        right_part = (
            path.subpath(right_start, len(path)) if right_start < len(path) else None
        )
        pivot = path.subpath(window, window + self.k)
        pivot_candidates = [
            self._cost_model.scan(pivot),
            self._cost_model.scan(pivot, via_inverse=True),
        ]

        alternatives: list[CostedPlan] = []
        left_candidates = (
            list(self._min_support(left_part).values()) if left_part else []
        )
        right_candidates = (
            list(self._min_support(right_part).values()) if right_part else []
        )

        if left_part and right_part:
            for left in left_candidates:
                for pivot_plan in pivot_candidates:
                    for right in right_candidates:
                        # [LEFT ⋈ D'] ⋈ RIGHT
                        alternatives.append(
                            self._cost_model.join(
                                self._cost_model.join(left, pivot_plan), right
                            )
                        )
                        # LEFT ⋈ [D' ⋈ RIGHT]
                        alternatives.append(
                            self._cost_model.join(
                                left, self._cost_model.join(pivot_plan, right)
                            )
                        )
        elif left_part:
            for left in left_candidates:
                for pivot_plan in pivot_candidates:
                    alternatives.append(self._cost_model.join(left, pivot_plan))
        else:
            for pivot_plan in pivot_candidates:
                for right in right_candidates:
                    alternatives.append(self._cost_model.join(pivot_plan, right))

        best = self._cost_model.cheapest(alternatives)
        return {best.order: best}

    def _most_selective_window(self, path: LabelPath) -> int:
        """Start offset of the length-k subpath with the smallest estimate."""
        best_offset = 0
        best_estimate = math.inf
        for offset in range(len(path) - self.k + 1):
            window = path.subpath(offset, offset + self.k)
            estimate = self._statistics.estimated_count(window)
            if estimate < best_estimate:
                best_estimate = estimate
                best_offset = offset
        return best_offset

    # -- minJoin -----------------------------------------------------------------------

    def _min_join(self, path: LabelPath) -> CostedPlan:
        """Minimal-join planning: cheapest ⌈n/k⌉-chunking + join-order DP."""
        if len(path) <= self.k:
            return self._cost_model.scan(path)
        chunks = self._cheapest_minimal_chunking(path)
        return self._join_order_dp(chunks)

    def _cheapest_minimal_chunking(self, path: LabelPath) -> list[LabelPath]:
        """Split into ``ceil(n/k)`` chunks minimizing estimated scan volume."""
        length = len(path)
        chunk_count = math.ceil(length / self.k)
        best: tuple[float, list[LabelPath]] | None = None
        for split in _compositions(length, chunk_count, self.k):
            chunks: list[LabelPath] = []
            offset = 0
            for size in split:
                chunks.append(path.subpath(offset, offset + size))
                offset += size
            volume = sum(self._statistics.estimated_count(chunk) for chunk in chunks)
            if best is None or volume < best[0]:
                best = (volume, chunks)
        assert best is not None
        return best[1]

    def _join_order_dp(self, chunks: list[LabelPath]) -> CostedPlan:
        """Interval DP over the chunk chain, tracking interesting orders."""
        count = len(chunks)
        table: dict[tuple[int, int], dict[object, CostedPlan]] = {}
        for index, chunk in enumerate(chunks):
            direct = self._cost_model.scan(chunk)
            swapped = self._cost_model.scan(chunk, via_inverse=True)
            table[(index, index)] = {direct.order: direct, swapped.order: swapped}
        for span in range(2, count + 1):
            for start in range(0, count - span + 1):
                end = start + span - 1
                candidates: list[CostedPlan] = []
                for split in range(start, end):
                    for left in table[(start, split)].values():
                        for right in table[(split + 1, end)].values():
                            candidates.append(self._cost_model.join(left, right))
                best = self._cost_model.cheapest(candidates)
                table[(start, end)] = {best.order: best}
        return self._cheapest(table[(0, count - 1)])

    # -- shared helpers ----------------------------------------------------------------

    def _cheapest(self, candidates: dict[object, CostedPlan]) -> CostedPlan:
        return self._cost_model.cheapest(list(candidates.values()))


def _chunk(path: LabelPath, size: int) -> list[LabelPath]:
    return [
        path.subpath(offset, min(offset + size, len(path)))
        for offset in range(0, len(path), size)
    ]


def _compositions(total: int, parts: int, max_part: int):
    """All ways to write ``total`` as ``parts`` ordered pieces of 1..max_part."""
    if parts == 1:
        if 1 <= total <= max_part:
            yield [total]
        return
    lower = max(1, total - (parts - 1) * max_part)
    upper = min(max_part, total - (parts - 1))
    for first in range(lower, upper + 1):
        for rest in _compositions(total - first, parts - 1, max_part):
            yield [first] + rest


def plan_to_string(plan: PlanNode) -> str:
    """Convenience re-export of :func:`repro.engine.plan.render`."""
    from repro.engine.plan import render

    return render(plan)
