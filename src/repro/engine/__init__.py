"""Query planning and execution over the k-path index."""

from repro.engine.executor import ExecutionReport, evaluate_ast, evaluate_normal_form
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    Order,
    PlanNode,
    UnionPlan,
    render,
)
from repro.engine.planner import Planner, Strategy

__all__ = [
    "ExecutionReport",
    "IdentityPlan",
    "IndexScanPlan",
    "JoinPlan",
    "Order",
    "PlanNode",
    "Planner",
    "Strategy",
    "UnionPlan",
    "evaluate_ast",
    "evaluate_normal_form",
    "render",
]
