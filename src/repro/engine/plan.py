"""Physical query plans (Section 4, step 3).

A plan is a tree of immutable nodes:

* :class:`IndexScanPlan` — one ``I_{G,k}`` lookup.  ``via_inverse=True``
  means: scan the *inverse* path (also indexed) and swap each pair,
  which yields the same relation sorted by target — the paper's trick
  for feeding merge joins;
* :class:`JoinPlan` — relational composition ``left ∘ right`` with a
  fixed physical algorithm (``merge`` or ``hash``);
* :class:`IdentityPlan` — the epsilon disjunct;
* :class:`UnionPlan` — the top-level union over disjunct plans with
  duplicate elimination.

Sort orders are first-class (:class:`Order`): a merge join is legal iff
the left input is sorted by target and the right by source, mirroring
the physical sort order of the B+tree index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import LabelPath
from repro.relation import Order

__all__ = [
    "IdentityPlan",
    "IndexScanPlan",
    "JoinPlan",
    "Order",
    "PlanNode",
    "UnionPlan",
    "render",
]


class PlanNode:
    """Base class of physical plan nodes."""

    __slots__ = ()

    @property
    def order(self) -> Order:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def scan_count(self) -> int:
        """Number of index scans in the subtree."""
        own = 1 if isinstance(self, IndexScanPlan) else 0
        return own + sum(child.scan_count() for child in self.children())

    def join_count(self) -> int:
        """Number of joins in the subtree."""
        own = 1 if isinstance(self, JoinPlan) else 0
        return own + sum(child.join_count() for child in self.children())

    def merge_join_count(self) -> int:
        """Number of merge joins in the subtree."""
        own = 1 if isinstance(self, JoinPlan) and self.algorithm == "merge" else 0
        return own + sum(child.merge_join_count() for child in self.children())


@dataclass(frozen=True, slots=True)
class IndexScanPlan(PlanNode):
    """Scan ``I_{G,k}`` for one label path.

    The produced relation is always that of ``path`` itself;
    ``via_inverse`` only changes the physical access (scan
    ``path.inverted()`` and swap), and therefore the sort order.
    """

    path: LabelPath
    via_inverse: bool = False

    @property
    def order(self) -> Order:
        return Order.BY_TGT if self.via_inverse else Order.BY_SRC

    def __str__(self) -> str:
        if self.via_inverse:
            return f"IndexScan[{self.path.inverted()}] (swapped; {self.path})"
        return f"IndexScan[{self.path}]"


@dataclass(frozen=True, slots=True)
class JoinPlan(PlanNode):
    """Composition ``left ∘ right`` joining ``left.tgt = right.src``."""

    left: PlanNode
    right: PlanNode
    algorithm: str  # 'merge' | 'hash'

    def __post_init__(self) -> None:
        if self.algorithm not in ("merge", "hash"):
            raise ValueError(f"unknown join algorithm {self.algorithm!r}")

    @property
    def order(self) -> Order:
        # A merge join emits in join-key order, which is neither output
        # column; be conservative.
        return Order.NONE

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.algorithm}-join"


@dataclass(frozen=True, slots=True)
class IdentityPlan(PlanNode):
    """The identity relation over all nodes (epsilon disjunct)."""

    @property
    def order(self) -> Order:
        return Order.BY_SRC

    def __str__(self) -> str:
        return "Identity"


@dataclass(frozen=True, slots=True)
class UnionPlan(PlanNode):
    """Duplicate-eliminating union of disjunct plans."""

    parts: tuple[PlanNode, ...]

    @property
    def order(self) -> Order:
        return Order.NONE

    def children(self) -> tuple[PlanNode, ...]:
        return self.parts

    def __str__(self) -> str:
        return f"Union[{len(self.parts)}]"


def render(plan: PlanNode, indent: str = "") -> str:
    """Pretty-print a plan tree, one operator per line.

    >>> from repro.graph.graph import LabelPath
    >>> print(render(IndexScanPlan(LabelPath.of("knows"))))
    IndexScan[knows]
    """
    lines = [indent + str(plan)]
    children = plan.children()
    for position, child in enumerate(children):
        last = position == len(children) - 1
        branch = "└─ " if last else "├─ "
        continuation = "   " if last else "│  "
        child_text = render(child)
        child_lines = child_text.split("\n")
        lines.append(indent + branch + child_lines[0])
        lines.extend(indent + continuation + line for line in child_lines[1:])
    return "\n".join(lines)
