"""Single-source and boolean query evaluation over the k-path index.

The demo paper's Example 3.1 shows the index answering three lookup
shapes: all pairs ``I(p)``, single source ``I(p, a)``, and membership
``I(p, a, b)``.  The all-pairs engine lives in
:mod:`repro.engine.executor`; this module implements the other two for
full RPQs:

* :func:`evaluate_from` — all targets reachable from one source node,
  by frontier expansion over length-≤k index lookups (each hop is one
  B+tree prefix scan per frontier node);
* :func:`evaluate_pair` — a boolean check, answered by a single
  ``I(p, a, b)`` membership probe per short disjunct and a frontier
  expansion only when some disjunct is longer than k.

Unbounded recursion falls back to a BFS over the (index-computed) base
relation, mirroring the all-pairs executor's fixpoint fallback.
"""

from __future__ import annotations

from collections import deque

from repro.errors import RewriteError
from repro.engine.executor import _hybrid
from repro.engine.planner import Strategy
from repro.graph.graph import Graph, LabelPath
from repro.graph.stats import star_bound
from repro.indexes.pathindex import PathIndex
from repro.rpq.ast import Node
from repro.rpq.rewrite import DEFAULT_MAX_DISJUNCTS, normalize, push_inverse


def _chunks(path: LabelPath, k: int) -> list[LabelPath]:
    return [
        path.subpath(offset, min(offset + k, len(path)))
        for offset in range(0, len(path), k)
    ]


def _expand_frontier(
    index: PathIndex, chunk: LabelPath, frontier: set[int]
) -> set[int]:
    result: set[int] = set()
    for node in frontier:
        result.update(index.scan_from(chunk, node))
    return result


def targets_of_path(
    index: PathIndex, path: LabelPath, source: int
) -> set[int]:
    """All ``t`` with ``(source, t) ∈ path(G)``, via chunked lookups."""
    frontier = {source}
    for chunk in _chunks(path, index.k):
        if not frontier:
            return set()
        frontier = _expand_frontier(index, chunk, frontier)
    return frontier


def evaluate_from(
    node: Node,
    source: int,
    index: PathIndex,
    graph: Graph,
    statistics,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> set[int]:
    """All targets ``t`` such that ``(source, t)`` answers the query."""
    normal_form = _try_normalize(node, graph, max_disjuncts)
    if normal_form is not None:
        targets: set[int] = set()
        if normal_form.has_epsilon:
            targets.add(source)
        for path in normal_form.paths:
            targets |= targets_of_path(index, path, source)
        return targets
    # Fallback for queries whose expansion is too large: compute the
    # base relation(s) through the hybrid evaluator, then restrict.
    relation = _hybrid(
        push_inverse(node), index, graph, statistics,
        Strategy.MIN_SUPPORT, max_disjuncts,
    )
    return {target for src, target in relation if src == source}


def evaluate_pair(
    node: Node,
    source: int,
    target: int,
    index: PathIndex,
    graph: Graph,
    statistics,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> bool:
    """Does ``(source, target)`` satisfy the query?

    Disjuncts of length <= k are answered with a single membership
    probe; longer disjuncts use a frontier expansion from the source
    with an early exit as soon as the target is produced.
    """
    normal_form = _try_normalize(node, graph, max_disjuncts)
    if normal_form is None:
        return target in evaluate_from(
            node, source, index, graph, statistics, max_disjuncts
        )
    if normal_form.has_epsilon and source == target:
        return True
    long_paths: list[LabelPath] = []
    for path in normal_form.paths:
        if len(path) <= index.k:
            if index.contains(path, source, target):
                return True
        else:
            long_paths.append(path)
    for path in long_paths:
        if _pair_by_frontier(index, path, source, target):
            return True
    return False


def _pair_by_frontier(
    index: PathIndex, path: LabelPath, source: int, target: int
) -> bool:
    chunks = _chunks(path, index.k)
    frontier = {source}
    for position, chunk in enumerate(chunks):
        last = position == len(chunks) - 1
        if last:
            # Final hop: membership probes beat materializing targets.
            return any(
                index.contains(chunk, node, target) for node in frontier
            )
        frontier = _expand_frontier(index, chunk, frontier)
        if not frontier:
            return False
    return False


def breadth_first_targets(
    graph: Graph, base: set[tuple[int, int]], source: int, reflexive: bool
) -> set[int]:
    """BFS over an arbitrary base relation (fixpoint single-source)."""
    adjacency: dict[int, list[int]] = {}
    for src, tgt in base:
        adjacency.setdefault(src, []).append(tgt)
    seen: set[int] = set()
    queue = deque(adjacency.get(source, ()))
    while queue:
        node = queue.popleft()
        if node not in seen:
            seen.add(node)
            queue.extend(adjacency.get(node, ()))
    if reflexive:
        seen.add(source)
    return seen


def _try_normalize(node: Node, graph: Graph, max_disjuncts: int):
    try:
        return normalize(node, star_bound(graph), max_disjuncts)
    except RewriteError:
        return None
