"""Query execution: rewrite, plan, run — plus the hybrid fallback.

:func:`evaluate_normal_form` is the paper's path: normal form → plan →
physical operators → answer set.

:func:`evaluate_ast` adds a pragmatic layer the demo system needs for
*unbounded* recursion: expanding ``R{0,n(G)}`` into ``n(G)+1`` powers is
correct but explodes for large graphs, so when a (sub)expression's
expansion would exceed the disjunct budget, evaluation falls back to
structural recursion at that node — child results are still computed
through the index/planner where possible, and recursion is closed with
the frontier-based CSR fixpoint (:mod:`repro.csr`).  For the bounded
queries of the paper's evaluation, the fallback never triggers.

Every execution carries a :class:`~repro.engine.operators.ScanMemo`:
repeated index scans and shared subplans across union disjuncts (and
repeated AST subtrees in the fallback) are evaluated once, with
hit/miss counts reported on :class:`ExecutionReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import csr
from repro import relation as rel
from repro.errors import QueryTimeoutError, RewriteError
from repro.faults import RunContext
from repro.engine.cost import CostedPlan
from repro.engine.operators import (
    ScanMemo,
    ScatterCounters,
    ScatterPolicy,
    SharedScanMemo,
    execute,
    execute_scattered,
    scattered_parts,
)
from repro.engine.planner import Planner, Strategy
from repro.graph.graph import Graph
from repro.graph.stats import star_bound
from repro.indexes.pathindex import PathIndex
from repro.relation import Relation
from repro.sharding import ShardedGraph
from repro.rpq.ast import Concat, Epsilon, Inverse, Label, Node, Repeat, Star, Union
from repro.rpq.rewrite import DEFAULT_MAX_DISJUNCTS, normalize, push_inverse


@dataclass(frozen=True, slots=True)
class ExecutionReport:
    """What happened while answering one query.

    The answer stays columnar (:attr:`relation`); :attr:`pairs`
    materializes tuples on demand for callers that want a set.
    """

    strategy: Strategy
    plan: CostedPlan | None  # None when the hybrid fallback ran top-level
    # hash=False: Relation is unhashable by design; keep reports usable
    # as set members / dict keys (they were in 1.0) by hashing the
    # scalar fields only.
    relation: Relation = field(hash=False)
    planning_seconds: float
    execution_seconds: float
    used_fallback: bool
    #: Scan-memo traffic for this execution: results served from the
    #: per-execution memo vs distinct subproblems computed (plan
    #: subtrees, and AST subtrees in the hybrid fallback).
    scan_memo_hits: int = 0
    scan_memo_misses: int = 0
    #: Scatter-planning decisions (sharded engines only; all zero on
    #: the unsharded path): shard slices executed, slices skipped as
    #: provably empty, and disjunct spines re-planned against a
    #: shard's own statistics.  Aggregated across every scatter this
    #: execution performed (the hybrid fallback can perform several).
    shards_scanned: int = 0
    shards_pruned: int = 0
    disjuncts_pruned: int = 0
    shards_replanned: int = 0
    #: Shard slices dropped after exhausting retries (degraded runs
    #: only — strict runs raise instead of dropping).
    shards_failed: int = 0
    #: ``True`` exactly when slices were dropped: the relation is a
    #: *subset* of the full answer, flagged rather than silent.
    partial: bool = False
    _pairs: frozenset | None = field(default=None, repr=False, compare=False)

    @property
    def pairs(self) -> frozenset:
        """The answer as a frozenset of ``(src, tgt)`` id tuples.

        Materialized from the columnar relation on first access and
        memoized, so repeated reads stay O(1).
        """
        if self._pairs is None:
            object.__setattr__(self, "_pairs", self.relation.to_frozenset())
        return self._pairs  # type: ignore[return-value]

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.execution_seconds


def evaluate_normal_form(
    normal_form,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    memo: ScanMemo | None = None,
    deadline=None,
) -> ExecutionReport:
    """Plan and execute a query already in normal form.

    ``memo`` shares a scan memo with an enclosing execution (the hybrid
    fallback passes its own so disjuncts of *different* bounded subtrees
    still share scans); by default each call gets a fresh one.
    ``deadline`` bounds the execution phase cooperatively.
    """
    if memo is None:
        memo = ScanMemo()
    planner = Planner(index.k, statistics, graph, strategy)
    started = time.perf_counter()
    costed = planner.plan(normal_form)
    planned = time.perf_counter()
    pairs = execute(costed.plan, index, graph, memo, deadline)
    finished = time.perf_counter()
    return ExecutionReport(
        strategy=strategy,
        plan=costed,
        relation=pairs,
        planning_seconds=planned - started,
        execution_seconds=finished - planned,
        used_fallback=False,
        scan_memo_hits=memo.hits,
        scan_memo_misses=memo.misses,
    )


def evaluate_ast(
    node: Node,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    context: RunContext | None = None,
) -> ExecutionReport:
    """Evaluate an arbitrary RPQ AST through the index where possible.

    A thin wrapper over :func:`prepare_ast` + :func:`execute_prepared`
    — exactly what :meth:`repro.api.GraphDatabase.query_batch` runs per
    query, so single and batched execution can never drift.
    """
    prepared = prepare_ast(node, index, graph, statistics, strategy, max_disjuncts)
    return execute_prepared(prepared, index, graph, statistics, context=context)


@dataclass(frozen=True, slots=True)
class PreparedQuery:
    """One query planned up front, awaiting execution.

    :meth:`repro.api.GraphDatabase.query_batch` plans every query in
    the batch first (cheap, sequential) and only fans the *execution*
    out over worker threads, all sharing one
    :class:`~repro.engine.operators.ScanMemo`.  ``costed`` is ``None``
    when normalization blew the disjunct budget — execution then takes
    the hybrid fallback.
    """

    node: Node
    strategy: Strategy
    max_disjuncts: int
    costed: CostedPlan | None
    planning_seconds: float
    #: Disjunct plan subtree -> source label path (epsilon omitted);
    #: what the scatter policy needs to re-plan one disjunct per shard.
    disjunct_paths: dict | None = None


def prepare_ast(
    node: Node,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> PreparedQuery:
    """Rewrite and plan ``node`` without executing it."""
    started = time.perf_counter()
    normal_form = _try_normalize(node, graph, max_disjuncts)
    costed = None
    disjunct_paths = None
    if normal_form is not None:
        planner = Planner(index.k, statistics, graph, strategy)
        parts = planner.disjunct_plans(normal_form)
        costed = planner.assemble(parts)
        disjunct_paths = _disjunct_map(parts)
    return PreparedQuery(
        node=node,
        strategy=strategy,
        max_disjuncts=max_disjuncts,
        costed=costed,
        planning_seconds=time.perf_counter() - started,
        disjunct_paths=disjunct_paths,
    )


def _disjunct_map(parts) -> dict:
    """Tagged disjunct plans -> {plan subtree: source label path}."""
    return {costed.plan: path for path, costed in parts if path is not None}


def _scatter_policy(
    index,
    graph: Graph,
    statistics,
    strategy: Strategy,
    disjunct_paths: dict | None,
    counters: ScatterCounters | None,
) -> ScatterPolicy | None:
    """The skew-aware scatter policy for one execution (or ``None``).

    ``None`` only for unsharded indexes.  With both skew features
    switched off the policy still runs — it decides nothing, but it
    keeps the ``shards_scanned`` counter truthful (one count per shard
    execution), so an A/B of the knobs reads consistently.
    """
    if not isinstance(index, ShardedGraph):
        return None
    planner = Planner(index.k, statistics, graph, strategy)

    def replan(shard, path, provider):
        # A shard's statistics only change on rebuild, so its re-plans
        # are cached on the index (dropped with the statistics caches).
        # Concurrent readers may race to fill a key; the values are
        # equal plans, so last-store-wins is harmless.
        key = (shard, path.encode(), strategy.value, type(provider).__name__)
        cached = index.replan_cache.get(key)
        if cached is None:
            cached = planner.with_statistics(provider).plan_path(path).plan
            index.replan_cache[key] = cached
        return cached

    return ScatterPolicy(
        index,
        statistics,
        disjunct_paths=disjunct_paths,
        replan=replan,
        counters=counters,
        cache_tag=(strategy.value, type(statistics).__name__),
    )


def execute_prepared(
    prepared: PreparedQuery,
    index: PathIndex,
    graph: Graph,
    statistics,
    memo: ScanMemo | None = None,
    context: RunContext | None = None,
) -> ExecutionReport:
    """Execute a :class:`PreparedQuery`, optionally under a shared memo.

    The report's memo counters are the memo's traffic delta while this
    query ran; under a concurrently shared memo they attribute overlap
    loosely (batch totals are aggregated from the memo itself).

    ``context`` carries the execution's resilience settings (deadline,
    degraded mode, retry policy).  A deadline that fires gets this
    execution's partial :class:`ScatterCounters` attached to the
    :class:`QueryTimeoutError` — the caller sees how far the scatter
    got before time ran out.
    """
    sharded = isinstance(index, ShardedGraph)
    shard_workers = index.query_workers if sharded else 1
    if memo is None:
        # Scatter-gather fan-out populates the memo from several
        # threads; the locked memo is only paid for when that happens.
        memo = SharedScanMemo() if shard_workers > 1 else ScanMemo()
    counters = ScatterCounters() if sharded else None
    deadline = context.deadline if context is not None else None
    hits_before, misses_before = memo.hits, memo.misses
    started = time.perf_counter()
    try:
        if prepared.costed is not None:
            if sharded:
                policy = _scatter_policy(
                    index,
                    graph,
                    statistics,
                    prepared.strategy,
                    prepared.disjunct_paths,
                    counters,
                )
                relation = execute_scattered(
                    prepared.costed.plan,
                    index,
                    graph,
                    memo,
                    workers=shard_workers,
                    policy=policy,
                    context=context,
                )
            else:
                relation = execute(
                    prepared.costed.plan, index, graph, memo, deadline
                )
            used_fallback = False
        else:
            relation = _hybrid(
                push_inverse(prepared.node),
                index,
                graph,
                statistics,
                prepared.strategy,
                prepared.max_disjuncts,
                memo,
                counters,
                context,
            )
            used_fallback = True
    except QueryTimeoutError as error:
        if error.counters is None:
            error.counters = counters
        raise
    finished = time.perf_counter()
    failed = counters.failed if counters else 0
    return ExecutionReport(
        strategy=prepared.strategy,
        plan=prepared.costed,
        relation=relation,
        planning_seconds=prepared.planning_seconds,
        execution_seconds=finished - started,
        used_fallback=used_fallback,
        scan_memo_hits=memo.hits - hits_before,
        scan_memo_misses=memo.misses - misses_before,
        shards_scanned=counters.scanned if counters else 0,
        shards_pruned=counters.pruned if counters else 0,
        disjuncts_pruned=counters.disjuncts_pruned if counters else 0,
        shards_replanned=counters.replanned if counters else 0,
        shards_failed=failed,
        partial=failed > 0,
    )


def _try_normalize(node: Node, graph: Graph, max_disjuncts: int):
    try:
        return normalize(node, star_bound(graph), max_disjuncts)
    except RewriteError:
        return None


def _hybrid(
    node: Node,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    max_disjuncts: int,
    memo: ScanMemo | None = None,
    counters: ScatterCounters | None = None,
    context: RunContext | None = None,
) -> Relation:
    """Structural evaluation with planner acceleration on bounded parts.

    Recursion (``Star`` / open ``Repeat``) is closed with the
    frontier-based CSR engine (:mod:`repro.csr`, reached through
    :func:`repro.relation.transitive_fixpoint`); every intermediate is
    an array-backed :class:`~repro.relation.Relation`.  One
    :class:`ScanMemo` spans the whole traversal: repeated AST subtrees
    (the normalized ``(a|b)*`` shape repeats its base under every
    disjunct) and repeated plan subtrees inside bounded parts are each
    evaluated once.  ``counters`` likewise spans the traversal,
    summing the scatter decisions of every bounded subtree; ``context``
    threads the deadline into every structural step and closure loop.
    """
    if memo is None:
        memo = ScanMemo()
    if context is not None and context.deadline is not None:
        context.deadline.check()
    cached = memo.lookup_ast(node)
    if cached is not None:
        return cached
    result = _hybrid_uncached(
        node,
        index,
        graph,
        statistics,
        strategy,
        max_disjuncts,
        memo,
        counters,
        context,
    )
    memo.store_ast(node, result)
    return result


def _hybrid_uncached(
    node: Node,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    max_disjuncts: int,
    memo: ScanMemo,
    counters: ScatterCounters | None,
    context: RunContext | None = None,
) -> Relation:
    deadline = context.deadline if context is not None else None
    normal_form = _try_normalize(node, graph, max_disjuncts)
    if normal_form is not None:
        if isinstance(index, ShardedGraph):
            planner = Planner(index.k, statistics, graph, strategy)
            parts = planner.disjunct_plans(normal_form)
            costed = planner.assemble(parts)
            policy = _scatter_policy(
                index, graph, statistics, strategy, _disjunct_map(parts), counters
            )
            return execute_scattered(
                costed.plan,
                index,
                graph,
                memo,
                workers=index.query_workers,
                policy=policy,
                context=context,
            )
        report = evaluate_normal_form(
            normal_form, index, graph, statistics, strategy, memo, deadline
        )
        return report.relation

    if isinstance(node, Epsilon):
        return rel.identity(graph.node_ids())
    if isinstance(node, Label):
        return index.scan(_single_step_path(node))
    if isinstance(node, Inverse):
        return _hybrid(
            push_inverse(node),
            index,
            graph,
            statistics,
            strategy,
            max_disjuncts,
            memo,
            counters,
            context,
        )
    if isinstance(node, Concat):
        result = _hybrid(
            node.parts[0],
            index,
            graph,
            statistics,
            strategy,
            max_disjuncts,
            memo,
            counters,
            context,
        )
        for part in node.parts[1:]:
            if not result:
                return Relation.empty()
            result = rel.compose(
                result,
                _hybrid(
                    part,
                    index,
                    graph,
                    statistics,
                    strategy,
                    max_disjuncts,
                    memo,
                    counters,
                    context,
                ),
            )
        return result
    if isinstance(node, Union):
        return rel.union(
            _hybrid(
                part,
                index,
                graph,
                statistics,
                strategy,
                max_disjuncts,
                memo,
                counters,
                context,
            )
            for part in node.parts
        )
    if isinstance(node, Star):
        parts = _closure_base_parts(
            node.child,
            index,
            graph,
            statistics,
            strategy,
            max_disjuncts,
            memo,
            counters,
            context,
        )
        return csr.partitioned_closure(
            graph.node_ids(),
            parts,
            low=0,
            workers=_closure_workers(index),
            deadline=deadline,
        )
    if isinstance(node, Repeat):
        if node.high is None:
            parts = _closure_base_parts(
                node.child,
                index,
                graph,
                statistics,
                strategy,
                max_disjuncts,
                memo,
                counters,
                context,
            )
            return csr.partitioned_closure(
                graph.node_ids(), parts, low=node.low,
                workers=_closure_workers(index),
                deadline=deadline,
            )
        base = _hybrid(
            node.child,
            index,
            graph,
            statistics,
            strategy,
            max_disjuncts,
            memo,
            counters,
            context,
        )
        return rel.bounded_powers(
            graph.node_ids(), base, node.low, node.high, deadline=deadline
        )
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def _closure_workers(index: PathIndex) -> int:
    """Thread fan-out of the global closure: the sharded engine's
    ``query_workers`` knob reaches the CSR schedule partitioning too
    (:func:`repro.csr.closure_bitsets`); unsharded stays sequential."""
    return index.query_workers if isinstance(index, ShardedGraph) else 1


def _closure_base_parts(
    node: Node,
    index: PathIndex,
    graph: Graph,
    statistics,
    strategy: Strategy,
    max_disjuncts: int,
    memo: ScanMemo,
    counters: ScatterCounters | None,
    context: RunContext | None = None,
) -> list[Relation]:
    """The operand of a Kleene closure, as per-shard slices when possible.

    Sharded engines evaluate a bounded closure operand once per shard
    (the gather is subsumed by the closure's own merge —
    :func:`repro.csr.partitioned_closure`); the closure itself always
    runs globally, because recursive paths hop shards freely.  Pruned
    shards simply contribute no slice.  The unsharded engine — and any
    operand the planner cannot bound — keeps the single-relation path,
    memoized under the operand's AST node as before.
    """
    if isinstance(index, ShardedGraph):
        normal_form = _try_normalize(node, graph, max_disjuncts)
        if normal_form is not None:
            planner = Planner(index.k, statistics, graph, strategy)
            parts = planner.disjunct_plans(normal_form)
            costed = planner.assemble(parts)
            policy = _scatter_policy(
                index, graph, statistics, strategy, _disjunct_map(parts), counters
            )
            return scattered_parts(
                costed.plan,
                index,
                graph,
                memo,
                workers=index.query_workers,
                policy=policy,
                context=context,
            )
    return [
        _hybrid(
            node,
            index,
            graph,
            statistics,
            strategy,
            max_disjuncts,
            memo,
            counters,
            context,
        )
    ]


def _single_step_path(node: Label):
    from repro.graph.graph import LabelPath

    return LabelPath((node.step,))
