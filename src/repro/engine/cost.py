"""Cost model for physical plans.

The paper's minSupport/minJoin strategies "determine the cost of each
alternative query plan and return the cheapest"; the demo text does not
spell the formulas out, so this module uses the textbook model:

* an index scan costs its output cardinality (B+tree leaf traversal is
  linear in matching entries; the descent is negligible);
* output cardinality of a join is estimated under the uniform-value
  independence assumption: ``|L ∘ R| ≈ |L| * |R| / |V|``;
* a merge join reads both sorted inputs once:
  ``cost = |L| + |R| + |out|``;
* a hash join additionally pays a build factor on its smaller input:
  ``cost = |L| + |R| + |out| + HASH_BUILD_FACTOR * min(|L|, |R|)``.

All estimates flow from a :class:`~repro.indexes.statistics.Statistics`
provider, so swapping the equi-depth histogram for exact statistics (or
the information-free baseline) is a one-argument ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph, LabelPath
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    Order,
    PlanNode,
)

#: Extra per-row cost of building a hash table, relative to streaming a
#: row through a merge join.  Calibrated loosely to CPython dict-insert
#: vs list-append; the planner only needs the *relative* penalty.
HASH_BUILD_FACTOR = 1.5

#: Extra per-row cost of an inverse-path scan: the executor materializes
#: it as a scan of the inverted path plus a column swap.  The swap is
#: cheap (zero-copy in the columnar representation) but not free, and
#: without this term a direct and an inverse scan cost exactly the same
#: — the planner would pick inverse scans on ties even when the swapped
#: order buys nothing (no merge join consumes it).  Kept far below
#: :data:`HASH_BUILD_FACTOR` so an inverse scan that *enables* a merge
#: join still wins.
INVERSE_SWAP_FACTOR = 0.1


@dataclass(frozen=True, slots=True)
class CostedPlan:
    """A physical plan with its estimated cardinality and cost."""

    plan: PlanNode
    cardinality: float
    cost: float

    @property
    def order(self) -> Order:
        return self.plan.order


class CostModel:
    """Produces :class:`CostedPlan` nodes from statistics."""

    def __init__(self, statistics, graph: Graph):
        self._statistics = statistics
        self._node_count = max(graph.node_count, 1)

    # -- estimates ------------------------------------------------------------

    def path_cardinality(self, path: LabelPath) -> float:
        """Estimated ``|p(G)|``; long paths decompose by independence."""
        if len(path) <= self._statistics.k:
            return self._statistics.estimated_count(path)
        estimate = self._statistics.estimated_count(path.prefix(self._statistics.k))
        remainder = path.subpath(self._statistics.k, len(path))
        return self.join_cardinality(estimate, self.path_cardinality(remainder))

    def join_cardinality(self, left_card: float, right_card: float) -> float:
        """Independence estimate for ``|L ∘ R|``."""
        return left_card * right_card / self._node_count

    # -- costed constructors --------------------------------------------------------

    def scan(self, path: LabelPath, via_inverse: bool = False) -> CostedPlan:
        """Cost an index scan of ``path`` (optionally via its inverse).

        An inverse scan pays the extra swap term, so on plans where the
        target-major order buys nothing the direct scan wins the tie.
        """
        cardinality = self._statistics.estimated_count(path)
        cost = cardinality + 1.0
        if via_inverse:
            cost += INVERSE_SWAP_FACTOR * cardinality
        return CostedPlan(
            plan=IndexScanPlan(path, via_inverse=via_inverse),
            cardinality=cardinality,
            cost=cost,
        )

    def identity(self) -> CostedPlan:
        """Cost the identity (epsilon) relation."""
        return CostedPlan(
            plan=IdentityPlan(),
            cardinality=float(self._node_count),
            cost=float(self._node_count),
        )

    def join(self, left: CostedPlan, right: CostedPlan) -> CostedPlan:
        """Cost ``left ∘ right``, picking the algorithm from sort orders.

        A merge join is chosen exactly when the index sort orders line
        up (left by target, right by source) — the paper's rule.
        """
        mergeable = left.order is Order.BY_TGT and right.order is Order.BY_SRC
        algorithm = "merge" if mergeable else "hash"
        out_card = self.join_cardinality(left.cardinality, right.cardinality)
        cost = left.cost + right.cost + left.cardinality + right.cardinality + out_card
        if algorithm == "hash":
            cost += HASH_BUILD_FACTOR * min(left.cardinality, right.cardinality)
        return CostedPlan(
            plan=JoinPlan(left.plan, right.plan, algorithm),
            cardinality=out_card,
            cost=cost,
        )

    @staticmethod
    def cheapest(candidates: list[CostedPlan]) -> CostedPlan:
        """The minimum-cost candidate (ties broken deterministically)."""
        if not candidates:
            raise ValueError("no candidate plans")
        return min(candidates, key=lambda costed: (costed.cost, str(costed.plan)))
