"""Prepared statements: plan a template once, bind and run it many times.

Production RPQ traffic is overwhelmingly the *same* query shapes with
different constants, yet every :meth:`repro.api.GraphDatabase.query`
call pays the full parse → rewrite → plan toll before touching the
index.  This module splits that toll out:

* :class:`PreparedStatement` — wraps a parsed
  :class:`~repro.rpq.parser.Template` and caches one
  :class:`~repro.engine.executor.PreparedQuery` per distinct parameter
  binding, keyed on ``(graph version, statistics epoch)`` so any
  mutation or rebuild invalidates soundly.  ``bind(**params).run()``
  after the first run of a binding skips straight to execution.
* :class:`PlanArtifactStore` — persists those plans as a versioned
  JSON artifact next to the disk backend's index file, keyed on a
  *content fingerprint* of everything a plan depends on (``k``,
  alphabet, node count, the exact path catalog).  A restarted service
  whose statistics fingerprint matches answers its first prepared
  query with zero planning calls; any mismatch — format version,
  fingerprint, or a corrupt file — fails open to re-planning.

The execution seam is deliberately the one
:meth:`~repro.api.GraphDatabase.query_batch` already uses
(:func:`~repro.engine.executor.prepare_ast` +
:func:`~repro.engine.executor.execute_prepared`), so prepared and
ad-hoc execution can never drift.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.cost import CostedPlan
from repro.engine.executor import PreparedQuery
from repro.engine.plan import (
    IdentityPlan,
    IndexScanPlan,
    JoinPlan,
    PlanNode,
    UnionPlan,
)
from repro.engine.planner import Strategy
from repro.errors import QueryTimeoutError, TransientError, ValidationError
from repro.faults import fire
from repro.graph.graph import LabelPath
from repro.rpq.ast import Node, substitute_params
from repro.rpq.parser import MAX_REPEAT_BOUND, Template, parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports us)
    from repro.api import GraphDatabase, QueryResult

#: Schema version of the on-disk plan artifact; any mismatch discards
#: the whole file (fail open: the plans are re-derived, never trusted).
ARTIFACT_FORMAT = 1

#: Per-statement cap on cached per-binding plans (LRU eviction).  A
#: statement swept over an unbounded parameter domain keeps its
#: hottest bindings planned and re-derives the rest.
PLAN_CACHE_MAX = 256

#: Cap on persisted artifacts per fingerprint file.  Stores evict the
#: oldest entries past the cap, and because every store rewrites the
#: whole document, eviction doubles as compaction — the file's size is
#: bounded for the life of the deployment instead of growing with
#: every distinct (template, binding) ever prepared.
ARTIFACT_STORE_MAX = 512


# -- plan (de)serialization ----------------------------------------------------
#
# Plans are trees of four frozen dataclasses over LabelPath, which
# round-trips through its stable text encoding — JSON is enough, and
# keeps the artifact greppable when a plan decision needs auditing.


def _plan_to_obj(plan: PlanNode) -> dict:
    if isinstance(plan, IndexScanPlan):
        return {
            "op": "scan",
            "path": plan.path.encode(),
            "inverse": plan.via_inverse,
        }
    if isinstance(plan, JoinPlan):
        return {
            "op": "join",
            "algorithm": plan.algorithm,
            "left": _plan_to_obj(plan.left),
            "right": _plan_to_obj(plan.right),
        }
    if isinstance(plan, UnionPlan):
        return {"op": "union", "parts": [_plan_to_obj(p) for p in plan.parts]}
    if isinstance(plan, IdentityPlan):
        return {"op": "identity"}
    raise ValidationError(f"unserializable plan node {type(plan).__name__}")


def _plan_from_obj(obj: dict) -> PlanNode:
    op = obj["op"]
    if op == "scan":
        return IndexScanPlan(
            LabelPath.decode(obj["path"]), via_inverse=bool(obj["inverse"])
        )
    if op == "join":
        return JoinPlan(
            _plan_from_obj(obj["left"]),
            _plan_from_obj(obj["right"]),
            obj["algorithm"],
        )
    if op == "union":
        return UnionPlan(tuple(_plan_from_obj(p) for p in obj["parts"]))
    if op == "identity":
        return IdentityPlan()
    raise ValidationError(f"unknown plan op {op!r}")


def artifact_from_prepared(prepared: PreparedQuery) -> dict | None:
    """Serialize a planned query, or ``None`` when there is no plan.

    A ``costed=None`` prepared query (the disjunct budget blew and
    execution takes the hybrid fallback) has no plan tree to persist;
    such bindings are re-prepared per process, which is exactly the
    fail-open behavior the artifact cache promises.
    """
    if prepared.costed is None:
        return None
    return {
        "query": str(prepared.node),
        "strategy": prepared.strategy.value,
        "max_disjuncts": prepared.max_disjuncts,
        "plan": _plan_to_obj(prepared.costed.plan),
        "cost": prepared.costed.cost,
        "cardinality": prepared.costed.cardinality,
        "disjuncts": [
            [path.encode(), _plan_to_obj(plan)]
            for plan, path in (prepared.disjunct_paths or {}).items()
        ],
    }


def prepared_from_artifact(obj: dict) -> PreparedQuery | None:
    """Deserialize a plan artifact; any defect returns ``None``.

    Fail-open by contract: a stale schema, a hand-edited file, a path
    over labels the graph no longer has — all of it must degrade to
    re-planning, never to an exception on the query path.  (Answers
    stay correct even against a *wrong* plan only because artifacts
    are fingerprint-keyed; this guard is about robustness, not
    soundness.)
    """
    try:
        costed = CostedPlan(
            plan=_plan_from_obj(obj["plan"]),
            cardinality=float(obj["cardinality"]),
            cost=float(obj["cost"]),
        )
        return PreparedQuery(
            node=parse(obj["query"]),
            strategy=Strategy.parse(obj["strategy"]),
            max_disjuncts=int(obj["max_disjuncts"]),
            costed=costed,
            planning_seconds=0.0,
            disjunct_paths={
                _plan_from_obj(plan_obj): LabelPath.decode(path_text)
                for path_text, plan_obj in obj.get("disjuncts", [])
            },
        )
    except (QueryTimeoutError, TransientError):
        # Fail-open covers *defects* (stale schema, corrupt JSON), not
        # the resilience taxonomy: a deadline or retryable fault must
        # reach the caller, never degrade into silent re-planning.
        raise
    except Exception:
        return None


# -- the persistent store ------------------------------------------------------


class PlanArtifactStore:
    """A write-through JSON store of plan artifacts next to the index.

    ``open(fingerprint)`` is called by the database after every
    (re)build with the content fingerprint of the fresh statistics:
    entries from a file whose format version and fingerprint both
    match are adopted; anything else is silently discarded.  Stores
    rewrite the whole file atomically (tmp + rename) — artifacts are a
    few KB of JSON, and a torn write must never be readable.

    With no path (memory backend) the store is inert: every probe
    misses, every write is dropped.
    """

    def __init__(self, path: str | Path | None) -> None:
        self._path = Path(path) if path is not None else None
        self._fingerprint: str | None = None
        self._entries: dict[str, dict] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._path is not None

    @property
    def path(self) -> Path | None:
        return self._path

    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def open(self, fingerprint: str) -> int:
        """Adopt on-disk artifacts valid under ``fingerprint``.

        Returns the number of entries adopted (0 on any mismatch or
        read failure — fail open).
        """
        with self._lock:
            self._fingerprint = fingerprint
            self._entries = {}
            if self._path is None:
                return 0
            try:
                fire("prepared.artifact_load", stage="open")
                obj = json.loads(self._path.read_text(encoding="utf-8"))
                if (
                    isinstance(obj, dict)
                    and obj.get("format") == ARTIFACT_FORMAT
                    and obj.get("fingerprint") == fingerprint
                    and isinstance(obj.get("entries"), dict)
                ):
                    self._entries = obj["entries"]
            except (OSError, ValueError, TransientError):
                pass
            # Adopt at most the cap: an oversized file from an older
            # build (or a hand-grown one) is trimmed to its newest
            # entries, and the next store() compacts it on disk.
            while len(self._entries) > ARTIFACT_STORE_MAX:
                del self._entries[next(iter(self._entries))]
            return len(self._entries)

    def load(self, key: str) -> dict | None:
        try:
            fire("prepared.artifact_load", stage="load")
        except TransientError:
            # Fail open: a flaky artifact probe re-plans, never raises.
            return None
        with self._lock:
            return self._entries.get(key)

    def store(self, key: str, payload: dict) -> None:
        if self._path is None or self._fingerprint is None:
            return
        with self._lock:
            # Re-storing a key refreshes its age; eviction drops the
            # oldest insertions first (the dict preserves that order).
            self._entries.pop(key, None)
            self._entries[key] = payload
            while len(self._entries) > ARTIFACT_STORE_MAX:
                del self._entries[next(iter(self._entries))]
            document = {
                "format": ARTIFACT_FORMAT,
                "fingerprint": self._fingerprint,
                "entries": self._entries,
            }
            temp = self._path.with_name(self._path.name + ".tmp")
            try:
                temp.write_text(json.dumps(document, indent=1), encoding="utf-8")
                temp.replace(self._path)
            except OSError:
                # Persistence is an optimization; a read-only or full
                # disk must not fail the query that triggered the save.
                pass


# -- statements ----------------------------------------------------------------


class BoundStatement:
    """A statement with every placeholder resolved, ready to run.

    Substitution and validation happen eagerly at bind time, so a bad
    binding fails here — before any lock is taken or plan probed.
    """

    __slots__ = ("statement", "params", "node", "anchor", "binding_key", "text")

    def __init__(self, statement: "PreparedStatement", params: dict) -> None:
        template = statement.template
        self.statement = statement
        self.params = dict(params)
        bound_values = {
            name: params[name] for name in template.bound_params
        }
        self.node: Node = substitute_params(
            template.node, bound_values, max_bound=MAX_REPEAT_BOUND
        )
        if template.anchor_param is not None:
            anchor = params[template.anchor_param]
            if not isinstance(anchor, str):
                raise ValidationError(
                    f"anchor parameter ${template.anchor_param} must be a "
                    f"node name, got {anchor!r}"
                )
            self.anchor: str | None = anchor
        else:
            self.anchor = template.anchor_name
        #: The plan-cache key: bound-parameter values only.  The anchor
        #: restricts the *answer*, not the plan, so every anchor value
        #: shares one plan.
        self.binding_key = tuple(sorted(bound_values.items()))
        self.text = (
            f"from({self.anchor}): {self.node}"
            if self.anchor is not None
            else str(self.node)
        )

    def run(self) -> "QueryResult":
        """Execute against the current graph snapshot.

        Planning is skipped whenever this binding's plan is cached (on
        the statement or in the persistent artifact store) and still
        valid for the snapshot's ``(version, statistics epoch)``.
        """
        return self.statement.database._run_prepared(self)

    def __repr__(self) -> str:
        return f"BoundStatement({self.text!r})"


class PreparedStatement:
    """A template prepared against one :class:`~repro.api.GraphDatabase`.

    Holds the per-binding plan cache (LRU, ``PLAN_CACHE_MAX`` entries).
    Thread-safe: concurrent ``bind(...).run()`` calls race only to
    plan the same binding twice, and last-store-wins is harmless
    because the plans are equal.
    """

    def __init__(
        self,
        database: "GraphDatabase",
        template: Template,
        strategy: Strategy,
        use_exact_statistics: bool,
        max_disjuncts: int,
    ) -> None:
        self.database = database
        self.template = template
        self.strategy = strategy
        self.use_exact_statistics = use_exact_statistics
        self.max_disjuncts = max_disjuncts
        # binding key -> (graph version, statistics epoch, PreparedQuery)
        self._plans: OrderedDict[tuple, tuple[int, int, PreparedQuery]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    # -- binding ---------------------------------------------------------

    def bind(self, **params) -> BoundStatement:
        """Resolve every placeholder; raises on a mismatched binding."""
        expected = self.template.params
        given = set(params)
        if given != expected:
            missing = sorted(expected - given)
            extra = sorted(given - expected)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unexpected {extra}")
            raise ValidationError(
                f"binding does not match template parameters "
                f"{sorted(expected)}: {', '.join(detail)}"
            )
        return BoundStatement(self, params)

    def run(self, **params) -> "QueryResult":
        """Shorthand for ``bind(**params).run()``."""
        return self.bind(**params).run()

    # -- plan resolution (called by the database, under its read lock) ---

    def _plan_for(
        self,
        bound: BoundStatement,
        version: int,
        epoch: int,
        index,
        statistics,
    ) -> PreparedQuery:
        """The binding's plan: statement cache → artifact store → plan."""
        from repro.engine.executor import prepare_ast

        database = self.database
        with self._lock:
            entry = self._plans.get(bound.binding_key)
            if entry is not None:
                cached_version, cached_epoch, prepared = entry
                if cached_version == version and cached_epoch == epoch:
                    self._plans.move_to_end(bound.binding_key)
                    database._note_prepared(hits=1)
                    return prepared
                del self._plans[bound.binding_key]
                database._note_prepared(invalidations=1)
        database._note_prepared(misses=1)
        artifact_key = self._artifact_key(bound)
        payload = database._plan_store.load(artifact_key)
        prepared = (
            prepared_from_artifact(payload) if payload is not None else None
        )
        if prepared is not None and (
            prepared.strategy is not self.strategy
            or prepared.max_disjuncts != self.max_disjuncts
            or str(prepared.node) != str(bound.node)
        ):
            prepared = None  # hash collision or tampered file: re-plan
        if prepared is not None:
            database._note_prepared(artifact_loads=1)
        else:
            prepared = prepare_ast(
                bound.node,
                index,
                database.graph,
                statistics,
                self.strategy,
                self.max_disjuncts,
            )
            database._note_prepared(plans_computed=1)
            artifact = artifact_from_prepared(prepared)
            if artifact is not None:
                database._plan_store.store(artifact_key, artifact)
        with self._lock:
            self._plans[bound.binding_key] = (version, epoch, prepared)
            while len(self._plans) > PLAN_CACHE_MAX:
                self._plans.popitem(last=False)
        return prepared

    def _artifact_key(self, bound: BoundStatement) -> str:
        """Stable content key: template shape + binding + plan knobs.

        Hashes the *canonical unparse* of the template body (not the
        raw text), so whitespace variants of one template share
        artifacts.  Alphabet and statistics live in the store's
        fingerprint, not the key.
        """
        payload = json.dumps(
            [
                str(self.template.node),
                list(bound.binding_key),
                self.strategy.value,
                self.use_exact_statistics,
                self.max_disjuncts,
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def cached_plan_count(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self) -> str:
        return (
            f"PreparedStatement({self.template.text!r}, "
            f"strategy={self.strategy.value}, "
            f"plans={self.cached_plan_count()})"
        )
