"""Datalog-based RPQ evaluation (approach 2 in the paper).

Translate the query to a recursive Datalog program, export the graph as
the extensional database, run the bottom-up engine, and read the answer
predicate.  Used by the Section-6 comparison benchmark (the paper
reports the path-index approach ~1200x faster on the Advogato queries).
"""

from __future__ import annotations

from repro.datalog.engine import EvaluationStats, naive_evaluate, seminaive_evaluate
from repro.datalog.translate import graph_to_edb, translate
from repro.errors import ValidationError
from repro.graph.graph import Graph
from repro.rpq.ast import Node

Pair = tuple[int, int]


def evaluate(
    graph: Graph, query: Node, mode: str = "seminaive"
) -> set[Pair]:
    """All-pairs answer of ``query`` via Datalog evaluation."""
    pairs, _ = evaluate_with_stats(graph, query, mode=mode)
    return pairs


def evaluate_with_stats(
    graph: Graph, query: Node, mode: str = "seminaive"
) -> tuple[set[Pair], EvaluationStats]:
    """Like :func:`evaluate` but also returns engine counters."""
    translation = translate(query)
    edb = graph_to_edb(graph)
    if mode == "seminaive":
        database, stats = seminaive_evaluate(translation.program, edb)
    elif mode == "naive":
        database, stats = naive_evaluate(translation.program, edb)
    else:
        raise ValidationError(f"unknown Datalog mode {mode!r}")
    answer = database.relation(translation.answer_predicate)
    return {(source, target) for source, target in answer}, stats
