"""Baseline evaluators: the three literature approaches of Section 1."""

from repro.baselines import automaton_eval, datalog_eval, reachability_eval

__all__ = ["automaton_eval", "datalog_eval", "reachability_eval"]
