"""Automaton/search-based RPQ evaluation (approach 1 in the paper).

The query is compiled to an NFA over navigation steps; evaluation is a
breadth-first search over the *product* of the graph and the automaton.
For the all-pairs semantics the paper uses, a product BFS is launched
from every graph node — which is exactly why this approach loses to the
path index on multi-join queries: it re-walks neighborhoods once per
source node and cannot exploit selective interior path segments.
"""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph
from repro.rpq.ast import Node
from repro.rpq.automaton import NFA, compile_ast

Pair = tuple[int, int]


def evaluate_from(graph: Graph, nfa: NFA, source: int) -> set[int]:
    """All targets ``t`` such that ``(source, t)`` satisfies the NFA."""
    start_states = nfa.eps_closure(nfa.start)
    accept = nfa.accept
    targets: set[int] = set()
    visited: set[tuple[int, int]] = set()
    queue: deque[tuple[int, int]] = deque()
    for state in start_states:
        pair = (source, state)
        if pair not in visited:
            visited.add(pair)
            queue.append(pair)
            if state == accept:
                targets.add(source)
    while queue:
        node, state = queue.popleft()
        for step in nfa.out_steps(state):
            successors = nfa.step_targets(state, step)
            if not successors:
                continue
            for neighbor in graph.step_neighbors(node, step):
                for raw_state in successors:
                    for next_state in nfa.eps_closure(raw_state):
                        pair = (neighbor, next_state)
                        if pair not in visited:
                            visited.add(pair)
                            queue.append(pair)
                            if next_state == accept:
                                targets.add(neighbor)
    return targets


def evaluate(graph: Graph, query: Node) -> set[Pair]:
    """All-pairs evaluation: a product BFS from every node."""
    nfa = compile_ast(query)
    result: set[Pair] = set()
    for source in graph.node_ids():
        for target in evaluate_from(graph, nfa, source):
            result.add((source, target))
    return result


def evaluate_pair(graph: Graph, query: Node, source: int, target: int) -> bool:
    """Boolean evaluation of one pair (early-exits the BFS)."""
    nfa = compile_ast(query)
    return target in evaluate_from(graph, nfa, source)
