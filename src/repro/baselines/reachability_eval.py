"""Reachability-index RPQ evaluation (approach 3 in the paper).

The paper contrasts its approach with reachability-index systems, which
handle only *restricted* uses of Kleene star.  This front-end makes the
restriction concrete: it recognizes the supported shapes —

* ``l*`` / ``l{0,}``          (reflexive closure of one step)
* ``l+`` / ``l{1,}``          (irreflexive closure of one step)
* ``^l*``, ``^l+``            (closures of an inverse step)

— answers them from a :class:`LabelReachabilityIndex`, and raises
:class:`~repro.errors.UnsupportedQueryError` for every other query.
The path-index engine, by contrast, evaluates arbitrary RPQs; the
contrast is asserted by tests and showcased in an example.
"""

from __future__ import annotations

from repro.errors import UnsupportedQueryError
from repro.graph.graph import Graph, Step
from repro.indexes.reachability import LabelReachabilityIndex
from repro.rpq.ast import Label, Node, Repeat, Star
from repro.rpq.rewrite import push_inverse

Pair = tuple[int, int]


def supported_shape(query: Node) -> tuple[Step, bool] | None:
    """``(step, reflexive)`` when the query is a supported closure."""
    query = push_inverse(query)
    if isinstance(query, Star) and isinstance(query.child, Label):
        return query.child.step, True
    if (
        isinstance(query, Repeat)
        and isinstance(query.child, Label)
        and query.high is None
        and query.low in (0, 1)
    ):
        return query.child.step, query.low == 0
    return None


def evaluate(graph: Graph, query: Node) -> set[Pair]:
    """Answer a restricted-star query from a reachability index."""
    shape = supported_shape(query)
    if shape is None:
        raise UnsupportedQueryError(
            f"reachability-index evaluation supports only single-step "
            f"closures (l* / l+ / ^l* / ^l+); got: {query}"
        )
    step, reflexive = shape
    index = LabelReachabilityIndex(graph, step)
    return set(index.all_pairs(reflexive=reflexive))
