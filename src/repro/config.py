"""Service configuration: every deployment knob in one frozen object.

:class:`GraphDatabase` grew its knobs one keyword argument at a time —
backend selection, cache budgets, shard counts, build/query worker
pools, scatter-planning toggles — plus environment fallbacks scattered
across modules.  :class:`ServiceConfig` consolidates all of them:

>>> from repro.config import ServiceConfig
>>> config = ServiceConfig(k=3, shards=4)
>>> config.resolved_shards()
4

Environment resolution is centralized here too: ``shards=None`` defers
to ``REPRO_DEFAULT_SHARDS`` (:func:`default_shard_count`), evaluated at
*use* (:meth:`ServiceConfig.resolved_shards`), not at construction — a
config object is a value, the environment is deployment state.

The serve layer (``repro.serve``) reads the ``host`` / ``port`` /
``max_inflight`` / ``queue_limit`` fields; the embedded engine ignores
them.  Old keyword-argument construction still works but warns with a
:class:`DeprecationWarning` (see :class:`repro.api.GraphDatabase`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ValidationError
from repro.sharding import REPLAN_DIVERGENCE


def default_shard_count() -> int:
    """The shard count used when ``shards=None``.

    Reads ``REPRO_DEFAULT_SHARDS`` so a whole process — notably the CI
    ``sharded-stress`` run of the test suite — can route every
    default-configured database through the sharded engine without
    touching call sites.  Unset or empty means 1 (unsharded); garbage
    fails loudly rather than silently testing the wrong engine.
    """
    raw = os.environ.get("REPRO_DEFAULT_SHARDS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            f"REPRO_DEFAULT_SHARDS must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValidationError(f"REPRO_DEFAULT_SHARDS must be >= 1, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Everything a :class:`repro.api.GraphDatabase` deployment can tune.

    Engine fields map one-to-one onto the old keyword arguments;
    ``scatter_pruning`` / ``replan_divergence`` were previously
    post-construction attribute pokes on the sharded index and are now
    declared up front (and survive rebuilds).  Serve fields configure
    the ``repro-rpq serve`` front door only.
    """

    # -- engine -----------------------------------------------------------
    k: int = 2
    backend: str = "memory"
    index_path: str | Path | None = None
    histogram_buckets: int = 64
    query_cache_size: int = 128
    query_cache_max_pairs: int = 1_000_000
    #: ``None`` defers to ``REPRO_DEFAULT_SHARDS`` (default 1).
    shards: int | None = None
    shard_build_workers: int | None = None
    shard_query_workers: int = 1
    scatter_pruning: bool = True
    replan_divergence: float | None = REPLAN_DIVERGENCE
    #: Hash seed of the vertex-to-shard map; ``rebalance()`` re-seeds
    #: it when a skewed mutation stream unbalances the shards.
    shard_seed: int = 0
    # -- write path --------------------------------------------------------
    #: Append-only WAL backing ``apply()``; ``None`` disables logging
    #: (mutations are then non-durable, the pre-PR-10 behavior).
    mutation_log_path: str | Path | None = None
    #: Group-commit coalescing window: the commit leader waits this
    #: long for concurrent writers before flushing.  0 commits
    #: immediately (a lone writer pays no added latency).
    group_commit_ms: float = 0.0
    #: Batches one commit group may coalesce (arrival cap per flush).
    group_commit_max: int = 64
    #: Patch touched shards with index deltas instead of rebuilding the
    #: shard ball (memory backend only; rebuild is the fallback).
    delta_patching: bool = True
    #: Dirty-pair budget per commit group; past it the delta is deemed
    #: non-local and the group falls back to the ball rebuild.
    delta_max_pairs: int = 20_000
    # -- serve front door -------------------------------------------------
    host: str = "127.0.0.1"
    #: 0 lets the OS pick (the bound port is reported by the server).
    port: int = 0
    #: Queries executing concurrently before new ones queue.
    max_inflight: int = 8
    #: Queries allowed to wait; beyond this the server answers 503.
    queue_limit: int = 16

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        if self.shards is not None and self.shards < 1:
            raise ValidationError(f"shards must be >= 1, got {self.shards}")
        if self.shard_query_workers < 1:
            raise ValidationError(
                f"shard_query_workers must be >= 1, "
                f"got {self.shard_query_workers}"
            )
        if self.shard_seed < 0:
            raise ValidationError(
                f"shard_seed must be >= 0, got {self.shard_seed}"
            )
        if self.group_commit_ms < 0:
            raise ValidationError(
                f"group_commit_ms must be >= 0, got {self.group_commit_ms}"
            )
        if self.group_commit_max < 1:
            raise ValidationError(
                f"group_commit_max must be >= 1, got {self.group_commit_max}"
            )
        if self.delta_max_pairs < 1:
            raise ValidationError(
                f"delta_max_pairs must be >= 1, got {self.delta_max_pairs}"
            )
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.queue_limit < 0:
            raise ValidationError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )

    def resolved_shards(self) -> int:
        """The effective shard count: explicit value or the env default."""
        return self.shards if self.shards is not None else default_shard_count()

    def with_overrides(self, **changes) -> "ServiceConfig":
        """A copy with the listed fields replaced (it is frozen)."""
        return replace(self, **changes)
