"""Structured engine statistics: :class:`EngineStats`.

``GraphDatabase.cache_info()`` grew one flat dictionary key per PR;
consumers had to know which of nineteen strings belonged to which
subsystem.  :class:`EngineStats` groups them — query-result cache,
scatter planning, prepared statements, fault accounting — as typed
frozen dataclasses, with :meth:`EngineStats.as_dict` reproducing the
exact legacy flat mapping for backward compatibility (and for the JSON
the serve layer returns verbatim at ``GET /stats``).

>>> from repro.stats import CacheStats, EngineStats
>>> stats = EngineStats(cache=CacheStats(hits=3, misses=1))
>>> stats.cache.hits
3
>>> stats.as_dict()["hits"]
3
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheStats:
    """The whole-answer LRU and the executor scan memo."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    capacity: int = 0
    pairs: int = 0
    max_pairs: int = 0
    scan_memo_hits: int = 0
    scan_memo_misses: int = 0


@dataclass(frozen=True, slots=True)
class ScatterStats:
    """Scatter-planning decisions of the sharded engine."""

    shards_scanned: int = 0
    shards_pruned: int = 0
    disjuncts_pruned: int = 0
    shards_replanned: int = 0


@dataclass(frozen=True, slots=True)
class PreparedStats:
    """Prepared-statement plan-cache and artifact-store traffic."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    artifact_loads: int = 0
    plans_computed: int = 0
    plan_artifacts: int = 0


@dataclass(frozen=True, slots=True)
class FaultStats:
    """Resilience accounting: answers served less than whole."""

    #: Shard slices dropped by ``query(degraded=True)`` — nonzero means
    #: some answers were served partial.
    shards_failed: int = 0


@dataclass(frozen=True, slots=True)
class WriteStats:
    """The write path: group commit, the mutation log, delta patching."""

    #: Commit groups flushed by the group committer.
    groups: int = 0
    #: Batches that rode another batch's flush (group size - 1, summed).
    coalesced: int = 0
    #: Groups absorbed by per-shard delta patching.
    patched: int = 0
    #: Groups that fell back to a ball or full index rebuild.
    rebuilt: int = 0
    #: Durable mutation-log records (0 when logging is disabled).
    log_records: int = 0
    #: Batches replayed from the log when the database opened.
    replayed: int = 0


@dataclass(frozen=True, slots=True)
class EngineStats:
    """One consistent snapshot of every engine counter group."""

    cache: CacheStats = CacheStats()
    scatter: ScatterStats = ScatterStats()
    prepared: PreparedStats = PreparedStats()
    faults: FaultStats = FaultStats()
    write: WriteStats = WriteStats()

    def as_dict(self) -> dict[str, int]:
        """The legacy flat ``cache_info()`` mapping, key for key.

        The prepared group's ``hits``/``misses``/``invalidations``
        carry their historical ``prepared_`` prefix; everything else
        maps by field name.
        """
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "entries": self.cache.entries,
            "capacity": self.cache.capacity,
            "pairs": self.cache.pairs,
            "max_pairs": self.cache.max_pairs,
            "scan_memo_hits": self.cache.scan_memo_hits,
            "scan_memo_misses": self.cache.scan_memo_misses,
            "shards_scanned": self.scatter.shards_scanned,
            "shards_pruned": self.scatter.shards_pruned,
            "disjuncts_pruned": self.scatter.disjuncts_pruned,
            "shards_replanned": self.scatter.shards_replanned,
            "shards_failed": self.faults.shards_failed,
            "prepared_hits": self.prepared.hits,
            "prepared_misses": self.prepared.misses,
            "prepared_invalidations": self.prepared.invalidations,
            "artifact_loads": self.prepared.artifact_loads,
            "plans_computed": self.prepared.plans_computed,
            "plan_artifacts": self.prepared.plan_artifacts,
            "write_groups": self.write.groups,
            "write_coalesced": self.write.coalesced,
            "write_patched": self.write.patched,
            "write_rebuilt": self.write.rebuilt,
            "log_records": self.write.log_records,
            "replayed": self.write.replayed,
        }
