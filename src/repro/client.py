"""Clients for the serve front door: one codec, sync and async.

:class:`Client` (blocking, :mod:`http.client`) and
:class:`AsyncClient` (:mod:`asyncio`) share every byte of request
building and response decoding — the transport is the only
difference, so the two cannot drift apart.

The error taxonomy crosses the wire intact: a server-side
:class:`~repro.errors.QueryTimeoutError` re-raises here as exactly
that type (via the :mod:`repro.serve.protocol` code table), a refused
or reset connection raises the retryable
:class:`~repro.errors.TransientWireError`, and a response that does
not parse raises the permanent :class:`~repro.errors.WireError`.
Backpressure (HTTP 503) therefore surfaces as a transient the
caller's own :func:`~repro.faults.retry_call` can spin on.

    >>> from repro.client import query_body
    >>> body = query_body("a/b", degraded=True)
    >>> body["query"], body["degraded"]
    ('a/b', True)
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import dataclass, field

from repro.errors import TransientWireError, WireError
from repro.serve.protocol import raise_remote
from repro.write.mutation import ApplyResult, Mutation, MutationBatch

#: Seconds a client waits for a response before declaring the server
#: gone (transient — the request can be retried elsewhere/later).
DEFAULT_TIMEOUT = 60.0


@dataclass(frozen=True, slots=True)
class RemoteResult:
    """A query answer as it crossed the wire.

    The remote cousin of :class:`~repro.api.QueryResult`: same
    consistency token (``version``), same degraded-answer markers
    (``partial`` / ``shards_failed``), pairs as a frozenset of
    ``(source, target)`` node-name tuples.
    """

    query: str
    method: str
    pairs: frozenset = field(default_factory=frozenset)
    seconds: float = 0.0
    version: int = -1
    cached: bool = False
    partial: bool = False
    shards_failed: int = 0

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair) -> bool:
        return tuple(pair) in self.pairs


# -- the shared codec ----------------------------------------------------------


def query_body(
    query: str,
    method: str = "minsupport",
    use_cache: bool = True,
    timeout_ms: float | None = None,
    degraded: bool = False,
) -> dict:
    """The ``POST /query`` request body for one RPQ."""
    body: dict = {
        "query": query,
        "method": method,
        "use_cache": use_cache,
        "degraded": degraded,
    }
    if timeout_ms is not None:
        body["timeout_ms"] = timeout_ms
    return body


def prepared_body(template: str, params: dict | None, method: str) -> dict:
    return {
        "template": template,
        "params": dict(params or {}),
        "method": method,
    }


def mutate_body(kind: str, source: str, label: str, target: str) -> dict:
    return {"kind": kind, "source": source, "label": label, "target": target}


def apply_body(mutations) -> dict:
    """The ``POST /apply`` request body for one mutation batch."""
    return {"mutations": MutationBatch.coerce(mutations).as_wire()}


def decode_payload(raw: bytes) -> dict:
    """Response bytes -> payload dict; garbage raises :class:`WireError`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable server response: {error}") from error
    if not isinstance(payload, dict):
        raise WireError(f"server response must be an object, got {payload!r}")
    return payload


def check_payload(payload: dict) -> dict:
    """Re-raise a failure payload as its typed local exception."""
    if not payload.get("ok"):
        raise_remote(payload.get("error", {}))
    return payload


def decode_result(payload: dict) -> RemoteResult:
    """A checked ``/query`` or ``/prepared`` payload -> RemoteResult."""
    return RemoteResult(
        query=payload.get("query", ""),
        method=payload.get("method", ""),
        pairs=frozenset(tuple(pair) for pair in payload.get("pairs", ())),
        seconds=float(payload.get("seconds", 0.0)),
        version=int(payload.get("version", -1)),
        cached=bool(payload.get("cached", False)),
        partial=bool(payload.get("partial", False)),
        shards_failed=int(payload.get("shards_failed", 0)),
    )


def decode_mutation(payload: dict) -> int | None:
    """A checked ``/mutate`` payload -> new version, or None (no-op)."""
    return int(payload["version"]) if payload.get("changed") else None


def decode_apply(payload: dict) -> ApplyResult:
    """A checked ``/apply`` payload -> :class:`ApplyResult`."""
    return ApplyResult.from_wire(payload.get("result", {}))


# -- sync ----------------------------------------------------------------------


class Client:
    """Blocking client; safe to share across threads (connection per call)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body, separators=(",", ":")).encode("utf-8")
                if body is not None
                else None
            )
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            # Refused, reset, timed out: all retryable — the server may
            # be restarting or shedding load.
            raise TransientWireError(
                f"request to {self.host}:{self.port}{path} failed: {error}"
            ) from error
        finally:
            connection.close()
        return check_payload(decode_payload(raw))

    def query(
        self,
        query: str,
        method: str = "minsupport",
        use_cache: bool = True,
        timeout_ms: float | None = None,
        degraded: bool = False,
    ) -> RemoteResult:
        body = query_body(query, method, use_cache, timeout_ms, degraded)
        return decode_result(self._request("POST", "/query", body))

    def prepared(
        self,
        template: str,
        params: dict | None = None,
        method: str = "minsupport",
    ) -> RemoteResult:
        body = prepared_body(template, params, method)
        return decode_result(self._request("POST", "/prepared", body))

    def apply(self, mutations) -> ApplyResult:
        """Apply a batch (a Mutation, an iterable, or a MutationBatch)."""
        return decode_apply(
            self._request("POST", "/apply", apply_body(mutations))
        )

    def add_edge(self, source: str, label: str, target: str) -> int | None:
        result = self.apply(Mutation.add(source, label, target))
        return result.version if result.changed else None

    def remove_edge(self, source: str, label: str, target: str) -> int | None:
        result = self.apply(Mutation.remove(source, label, target))
        return result.version if result.changed else None

    def stats(self) -> dict:
        return self._request("GET", "/stats")["stats"]

    def health(self) -> dict:
        return self._request("GET", "/health")


# -- async ---------------------------------------------------------------------


class AsyncClient:
    """Asyncio client; same codec, hand-rolled HTTP/1.1 transport."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    async def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        payload = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None
            else b""
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1") + payload
        try:
            raw = await asyncio.wait_for(
                self._exchange(request), timeout=self.timeout
            )
        except (OSError, asyncio.TimeoutError, ConnectionError) as error:
            raise TransientWireError(
                f"request to {self.host}:{self.port}{path} failed: {error}"
            ) from error
        return check_payload(decode_payload(_http_body(raw)))

    async def _exchange(self, request: bytes) -> bytes:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(request)
            await writer.drain()
            return await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def query(
        self,
        query: str,
        method: str = "minsupport",
        use_cache: bool = True,
        timeout_ms: float | None = None,
        degraded: bool = False,
    ) -> RemoteResult:
        body = query_body(query, method, use_cache, timeout_ms, degraded)
        return decode_result(await self._request("POST", "/query", body))

    async def prepared(
        self,
        template: str,
        params: dict | None = None,
        method: str = "minsupport",
    ) -> RemoteResult:
        body = prepared_body(template, params, method)
        return decode_result(await self._request("POST", "/prepared", body))

    async def apply(self, mutations) -> ApplyResult:
        """Apply a batch (a Mutation, an iterable, or a MutationBatch)."""
        return decode_apply(
            await self._request("POST", "/apply", apply_body(mutations))
        )

    async def add_edge(self, source: str, label: str, target: str) -> int | None:
        result = await self.apply(Mutation.add(source, label, target))
        return result.version if result.changed else None

    async def remove_edge(
        self, source: str, label: str, target: str
    ) -> int | None:
        result = await self.apply(Mutation.remove(source, label, target))
        return result.version if result.changed else None

    async def stats(self) -> dict:
        return (await self._request("GET", "/stats"))["stats"]

    async def health(self) -> dict:
        return await self._request("GET", "/health")


def _http_body(raw: bytes) -> bytes:
    """Strip the HTTP response head off a raw ``Connection: close`` read."""
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        raise TransientWireError("connection closed before response head")
    status_line = head.split(b"\r\n", 1)[0]
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise WireError(f"malformed status line {status_line!r}")
    return body
