"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit status: 0 when every finding is covered by the committed baseline
and no baseline entry went stale; 1 on new findings, stale entries, or
unparsable files; 2 on usage errors.  ``--report`` writes the full
machine-readable result (the CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import (
    analyze_paths,
    apply_baseline,
    default_rules,
    load_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro invariant checker (lock/error/fault/order/"
        "deadline/dual-path contracts)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default="analysis-baseline.json",
        help="justified-suppressions file (default: analysis-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="write the full JSON report to this path (CI artifact)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    rules = default_rules()
    # Baseline entries store repo-root-relative paths, so when a
    # baseline file is in play its directory anchors the relpaths —
    # `repro lint` then matches from any working directory.
    baseline_path = Path(arguments.baseline)
    root = baseline_path.resolve().parent if baseline_path.exists() else None
    findings, errors = analyze_paths(arguments.paths, rules, root=root)
    entries: list[dict] = []
    if not arguments.no_baseline and baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: bad baseline {arguments.baseline}: {error}")
            return 2
    new_findings, stale_entries = apply_baseline(findings, entries)

    if arguments.report is not None:
        report = {
            "rules": {rule.id: rule.description for rule in rules},
            "findings": [found.to_obj() for found in findings],
            "new": [found.to_obj() for found in new_findings],
            "stale_baseline": stale_entries,
            "errors": errors,
        }
        Path(arguments.report).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )

    for message in errors:
        print(f"error: {message}")
    for found in new_findings:
        print(found.format())
    for entry in stale_entries:
        print(
            "stale baseline entry (no finding matches it any more — "
            "remove it, the baseline only shrinks): "
            f"[{entry['rule']}] {entry['file']} :: {entry['symbol']}"
        )
    baselined = len(findings) - len(new_findings)
    print(
        f"{len(new_findings)} new finding(s), {baselined} baselined, "
        f"{len(stale_entries)} stale baseline entr(y/ies), "
        f"{len(errors)} file error(s)"
    )
    if new_findings or stale_entries or errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
