"""Rule ``lock-discipline``: GraphDatabase state stays inside lock sections.

:class:`repro.api.GraphDatabase` guards the index/statistics triple
with a writer-preferring :class:`repro.concurrency.ReadWriteLock` and
the query-cache counters with a separate ``_cache_lock``.  The
convention that makes this auditable is lexical: state is written
inside a ``with ...write_locked():`` (or ``with self._cache_lock:``)
block, or inside a method whose name ends in ``_locked`` — the
caller-already-holds-the-lock marker.  This rule enforces both halves:

* an assignment to guarded state outside any such section is flagged;
* a mutation call (``add_edge``, ``rebuild_shards``, ...) lexically
  inside a ``read_locked()`` section is flagged — readers share the
  lock, so mutating under one races every other reader.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule, call_name

#: Classes whose state the RW-lock convention governs.
TARGET_CLASSES = {"GraphDatabase"}

#: Attributes owned by the main RW lock (the index/statistics triple).
LOCK_STATE = {
    "graph",
    "_index",
    "_exact_statistics",
    "_histogram",
    "_statistics_epoch",
}

#: Attributes owned by ``_cache_lock`` (LRU entries and counters).
CACHE_STATE = {"_query_cache", "_cached_pairs", "_cache_version"}

#: Calls that mutate shared state and therefore must never appear
#: lexically inside a shared (read) section.
MUTATION_CALLS = {"add_edge", "remove_edge", "rebuild_shards", "bulk_load"}


def _self_attribute(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_kinds(module: Module, node: ast.AST) -> set[str]:
    """Lock sections lexically enclosing ``node``: read/write/cache."""
    kinds: set[str] = set()
    for ancestor in module.ancestors(node):
        if not isinstance(ancestor, ast.With):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
                if expr.func.attr == "read_locked":
                    kinds.add("read")
                elif expr.func.attr == "write_locked":
                    kinds.add("write")
            if any(
                isinstance(part, ast.Attribute) and part.attr == "_cache_lock"
                for part in ast.walk(expr)
            ):
                kinds.add("cache")
    return kinds


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "GraphDatabase state must be written under write_locked()/"
        "_cache_lock (or in a *_locked method), and nothing may mutate "
        "under a read lock"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for class_def in module.walk():
            if not isinstance(class_def, ast.ClassDef):
                continue
            if class_def.name not in TARGET_CLASSES:
                continue
            for method in class_def.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                yield from self._check_method(module, method)

    def _check_method(
        self, module: Module, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        holds_lock = method.name == "__init__" or method.name.endswith("_locked")
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                for target in targets:
                    attribute = _self_attribute(target)
                    if attribute is None or holds_lock:
                        continue
                    kinds = _lock_kinds(module, node)
                    if attribute in LOCK_STATE and "write" not in kinds:
                        yield self.finding(
                            module,
                            node,
                            f"self.{attribute} written outside a "
                            "write_locked() section (and "
                            f"{method.name} is not a *_locked method)",
                        )
                    elif attribute in CACHE_STATE and not kinds & {"cache", "write"}:
                        yield self.finding(
                            module,
                            node,
                            f"cache state self.{attribute} written outside "
                            "a _cache_lock/write_locked section",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in MUTATION_CALLS and "read" in _lock_kinds(module, node):
                    yield self.finding(
                        module,
                        node,
                        f"mutation call {name}() inside a read_locked() "
                        "section; readers share the lock, so this races "
                        "every concurrent query",
                    )
