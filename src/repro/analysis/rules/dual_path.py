"""Rule ``dual-path``: vectorized kernels and scalar twins stay paired.

numpy is an *optional* dependency: every ``_np_*`` kernel in
:mod:`repro.relation` and :mod:`repro.csr` exists next to a pure-Python
path selected by ``_vectorize()`` (size crossover, ``_FORCE_PURE_PYTHON``
test hook, numpy missing).  That pairing is a reachability property the
type checker cannot see, so this rule enforces it structurally:

* a call to a ``_np_*`` kernel from non-vectorized code must sit inside
  an ``if`` branch whose test involves ``_vectorize``/``_np`` — the
  fall-through *is* the scalar twin; calls from inside another
  ``_np_*`` function are already on the guarded side;
* every defined ``_np_*`` kernel must have a call site (a dead
  vectorized kernel means the scalar path silently became the only
  path);
* and vice versa: every ``_py_*`` scalar twin must have a call site.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule, names_in

#: The modules holding the dual-path kernels.
MODULES = ("repro/relation.py", "repro/csr.py")

_NP_NAME = re.compile(r"^_np_\w+$")
_PY_NAME = re.compile(r"^_py_\w+$")

#: Names whose appearance in an ``if`` test marks the vectorized branch.
GUARD_NAMES = {"_vectorize", "_np", "numpy"}


def _is_guarded(module: Module, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.If) and names_in(ancestor.test) & GUARD_NAMES:
            return True
    return False


class DualPathRule(Rule):
    id = "dual-path"
    description = (
        "_np_* vectorized kernels need a reachable pure-Python twin "
        "(guarded call sites) and vice versa"
    )

    def applies(self, relpath: str) -> bool:
        return any(relpath.endswith(suffix) for suffix in MODULES)

    def check(self, module: Module) -> Iterator[Finding]:
        functions: list[ast.FunctionDef] = [
            node for node in module.walk() if isinstance(node, ast.FunctionDef)
        ]
        called: set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called.add(node.func.id)
                if _NP_NAME.match(node.func.id):
                    yield from self._check_call_site(module, node)
        for function in functions:
            if _NP_NAME.match(function.name) and function.name not in called:
                yield self.finding(
                    module,
                    function,
                    f"vectorized kernel {function.name} has no call site; "
                    "the scalar path silently became the only path",
                )
            if _PY_NAME.match(function.name) and function.name not in called:
                yield self.finding(
                    module,
                    function,
                    f"pure-Python twin {function.name} has no call site; "
                    "the numpy path silently became the only path",
                )

    def _check_call_site(self, module: Module, node: ast.Call) -> Iterator[Finding]:
        enclosing = module.enclosing_function(node)
        if enclosing is not None and enclosing.name.startswith("_np"):
            return
        if not _is_guarded(module, node):
            assert isinstance(node.func, ast.Name)
            yield self.finding(
                module,
                node,
                f"{node.func.id} called without a _vectorize()/_np guard; "
                "the pure-Python twin is unreachable here and the kernel "
                "crashes when numpy is absent",
            )
