"""Rule ``deadline-loop``: fixpoint loops must cooperate with deadlines.

Query timeouts are *cooperative*: :meth:`repro.faults.Deadline.check`
raises ``QueryTimeoutError`` only where the code chooses to call it.
Every data-dependent ``while`` loop in the kernel modules — frontier
expansion, delta iteration, power saturation — is a place a
pathological graph can spin past the deadline if the check is missing,
so each one must either contain a ``deadline.check()`` per round or be
explicitly allow-listed as bounded (a two-pointer scan over
fixed-length inputs, a bit iteration over one machine word) with::

    while ...:  # repro: ignore[deadline-loop] bounded by <what>

or a justified ``analysis-baseline.json`` entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule

#: The modules whose loops answer queries under a deadline.
MODULES = (
    "repro/csr.py",
    "repro/relation.py",
    "repro/engine/operators.py",
    "repro/engine/executor.py",
)


def _has_deadline_check(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "check"
        ):
            return True
    return False


class DeadlineLoopRule(Rule):
    id = "deadline-loop"
    description = (
        "while loops in the kernel modules must call deadline.check() "
        "per round or be allow-listed as bounded"
    )

    def applies(self, relpath: str) -> bool:
        return any(relpath.endswith(suffix) for suffix in MODULES)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.While) and not _has_deadline_check(node):
                yield self.finding(
                    module,
                    node,
                    "while loop without a cooperative deadline.check(); "
                    "add one per round, or mark the loop bounded with "
                    "# repro: ignore[deadline-loop]",
                )
