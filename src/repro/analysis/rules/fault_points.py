"""Rule ``fault-point``: I/O boundaries must route through the chaos seams.

The deterministic fault harness (:mod:`repro.faults`) only proves what
it can reach.  Nine injection points cover the engine's I/O
boundaries — pager reads, shard scans, shard builds, plan-artifact
loads, the gather merge, the serve layer's RPC send/receive, and the
mutation log's append/flush — and the chaos CI job arms all of them.
New I/O that bypasses ``fire()``/``retry_call`` silently shrinks that
coverage, so this rule pins it down twice over:

* every known boundary function must contain a ``fire("<its point>")``
  call (directly or in a nested ``attempt()``) or a ``retry_call``;
* every ``fire(...)`` call site must pass a string literal that names
  one of :data:`repro.faults.INJECTION_POINTS` — a typo'd or computed
  point would arm nothing and fail silently.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule, call_name
from repro.faults import INJECTION_POINTS

#: ``(file suffix, qualname pattern, required injection point)``.
BOUNDARIES = (
    ("repro/storage/pager.py", r"Pager\.read_page$", "storage.read_page"),
    ("repro/sharding.py", r"\.shard_scan$", "shard.scan"),
    ("repro/sharding.py", r"\.shard_scan_swapped$", "shard.scan"),
    ("repro/sharding.py", r"\._compute_payloads$", "shard.build"),
    ("repro/sharding.py", r"\._serial_payload$", "shard.build"),
    ("repro/engine/prepared.py", r"PlanArtifactStore\.open$", "prepared.artifact_load"),
    ("repro/engine/prepared.py", r"PlanArtifactStore\.load$", "prepared.artifact_load"),
    ("repro/engine/operators.py", r"^execute_scattered$", "gather.merge"),
    ("repro/serve/coordinator.py", r"WorkerStub\._call$", "rpc.send"),
    ("repro/serve/coordinator.py", r"WorkerStub\._call$", "rpc.recv"),
    ("repro/serve/coordinator.py", r"RpcShardedGraph\.shard_scan$", "shard.scan"),
    (
        "repro/serve/coordinator.py",
        r"RpcShardedGraph\.shard_scan_swapped$",
        "shard.scan",
    ),
    ("repro/write/log.py", r"MutationLog\.append$", "mutlog.append"),
    ("repro/write/log.py", r"MutationLog\.flush$", "mutlog.flush"),
)


def _qualname(module: Module, function: ast.FunctionDef) -> str:
    scope = module.scope_of(function)
    return function.name if scope == "<module>" else f"{scope}.{function.name}"


def _fires_point(function: ast.FunctionDef, point: str) -> bool:
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name == "retry_call":
            return True
        if name == "fire" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and first.value == point:
                return True
    return False


class FaultPointRule(Rule):
    id = "fault-point"
    description = (
        "I/O boundary functions must pass through faults.fire()/"
        "retry_call, and fire() points must be literal members of "
        "INJECTION_POINTS"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        yield from self._check_boundaries(module)
        if not module.relpath.endswith("repro/faults.py"):
            yield from self._check_fire_literals(module)

    def _check_boundaries(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.FunctionDef):
                continue
            qualname = _qualname(module, node)
            for suffix, pattern, point in BOUNDARIES:
                if not module.relpath.endswith(suffix):
                    continue
                if not re.search(pattern, qualname):
                    continue
                if not _fires_point(node, point):
                    yield self.finding(
                        module,
                        node,
                        f"I/O boundary {qualname} does not pass through "
                        f'fire("{point}") or retry_call — the chaos '
                        "harness cannot reach it",
                    )

    def _check_fire_literals(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call) or call_name(node) != "fire":
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                yield self.finding(
                    module,
                    node,
                    "fire() must be called with a literal injection-point "
                    "string (a computed point cannot be audited)",
                )
            elif first.value not in INJECTION_POINTS:
                yield self.finding(
                    module,
                    node,
                    f'fire("{first.value}") names an unknown injection '
                    "point; known points: " + ", ".join(INJECTION_POINTS),
                )
