"""Rule ``error-taxonomy``: broad handlers must not swallow typed errors.

The resilience layer (PR 7) communicates through exceptions:
``QueryTimeoutError`` carries the cooperative deadline upward,
``TransientError`` marks a failure as retryable (including the serve
layer's ``TransientWireError`` — a dropped worker connection must stay
retryable all the way up the coordinator), and
``ShardUnavailableError`` drives strict-vs-degraded answers.  A
``except Exception:`` (or bare ``except:``/``except BaseException:``)
placed anywhere on those paths silently converts "the query timed out"
into "everything is fine" — the exact bug class this PR fixed twice.

A broad handler is compliant when it

* contains a bare ``raise`` (cleanup-and-propagate), or
* is preceded in the same ``try`` by a handler that catches one of the
  resilience types and re-raises it, e.g.::

      except (QueryTimeoutError, TransientError):
          raise
      except Exception:
          ...fail open...
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule

#: Handler types considered "broad" (``None`` means a bare ``except:``).
BROAD = {"Exception", "BaseException"}

#: The taxonomy members a broad handler must let through.
RESILIENT = {
    "ReproError",
    "TransientError",
    "TransientStorageError",
    "TransientWireError",
    "QueryTimeoutError",
    "ShardUnavailableError",
}


def _type_names(expr: ast.AST | None) -> set[str]:
    if expr is None:
        return set()
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


class ErrorTaxonomyRule(Rule):
    id = "error-taxonomy"
    description = (
        "except Exception / bare except must re-raise or explicitly "
        "exclude ReproError resilience subtypes (QueryTimeoutError, "
        "TransientError)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for statement in module.walk():
            if not isinstance(statement, ast.Try):
                continue
            for position, handler in enumerate(statement.handlers):
                is_broad = handler.type is None or _type_names(handler.type) & BROAD
                if not is_broad or _reraises(handler):
                    continue
                excluded = any(
                    _type_names(earlier.type) & RESILIENT and _reraises(earlier)
                    for earlier in statement.handlers[:position]
                )
                if excluded:
                    continue
                caught = (
                    "bare except"
                    if handler.type is None
                    else "except " + "/".join(sorted(_type_names(handler.type)))
                )
                yield self.finding(
                    module,
                    handler,
                    f"{caught} swallows QueryTimeoutError/TransientError; "
                    "re-raise them first (except (QueryTimeoutError, "
                    "TransientError): raise) or use a bare raise",
                )
