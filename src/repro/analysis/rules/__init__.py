"""The project-specific invariant rules, in stable reporting order."""

from repro.analysis.rules.deadline import DeadlineLoopRule
from repro.analysis.rules.dual_path import DualPathRule
from repro.analysis.rules.error_taxonomy import ErrorTaxonomyRule
from repro.analysis.rules.fault_points import FaultPointRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.order_contract import OrderContractRule

#: Every rule the driver runs by default.
ALL_RULES = (
    LockDisciplineRule,
    ErrorTaxonomyRule,
    FaultPointRule,
    OrderContractRule,
    DeadlineLoopRule,
    DualPathRule,
)
