"""Rule ``order-contract``: merge/dedup kernels need declared sort orders.

:func:`repro.relation.merge_join` trusts its inputs' tracked
:class:`~repro.relation.Order` (left ``BY_TGT``, right ``BY_SRC``) and
:func:`~repro.relation.dedup_sort` refuses ``Order.NONE`` targets —
but both checks fire at *runtime*, deep inside an execution, on
whatever data finally flows through.  This rule moves the audit to the
call site: a function that composes relations through ``merge_join``
must visibly validate or propagate order — by checking ``.order``,
coercing/sorting (``Relation.coerce``, ``sorted_by``, ``dedup_sort``),
or running the planner's ``_check_merge_inputs`` — and must not hand
the kernel a freshly constructed ``Relation(...)`` whose order
defaults to ``NONE``.  Requesting ``dedup_sort(x, Order.NONE)`` is
flagged unconditionally (the kernel would raise anyway).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule, call_name

#: Calls that count as validating or propagating an Order.
ORDER_EVIDENCE_CALLS = {
    "_check_merge_inputs",
    "check_merge_inputs",
    "coerce",
    "sorted_by",
    "dedup_sort",
}


def _is_order_member(node: ast.AST, member: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == member
        and isinstance(node.value, ast.Name)
        and node.value.id == "Order"
    )


def _has_order_evidence(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Attribute) and node.attr == "order":
            return True
        if _is_order_member(node, "BY_SRC") or _is_order_member(node, "BY_TGT"):
            return True
        if isinstance(node, ast.Call) and call_name(node) in ORDER_EVIDENCE_CALLS:
            return True
    return False


def _constructs_unordered(argument: ast.AST) -> bool:
    if not isinstance(argument, ast.Call) or call_name(argument) != "Relation":
        return False
    if len(argument.args) >= 3:
        return False
    return not any(keyword.arg == "order" for keyword in argument.keywords)


class OrderContractRule(Rule):
    id = "order-contract"
    description = (
        "functions feeding merge/dedup kernels must validate or "
        "propagate Relation.Order; never pass an Order.NONE relation "
        "to an order-requiring kernel"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "merge_join":
                yield from self._check_merge_call(module, node)
            elif name == "dedup_sort":
                yield from self._check_dedup_call(module, node)

    def _check_merge_call(self, module: Module, node: ast.Call) -> Iterator[Finding]:
        scope = module.enclosing_function(node) or module.tree
        if not _has_order_evidence(scope):
            yield self.finding(
                module,
                node,
                "merge_join called in a function with no visible Order "
                "validation or propagation (no .order check, coerce/"
                "sorted_by/dedup_sort, or _check_merge_inputs)",
            )
        for argument in node.args:
            if _constructs_unordered(argument):
                yield self.finding(
                    module,
                    node,
                    "a Relation(...) constructed without order= defaults "
                    "to Order.NONE and cannot feed merge_join",
                )

    def _check_dedup_call(self, module: Module, node: ast.Call) -> Iterator[Finding]:
        order_argument: ast.AST | None = None
        if len(node.args) >= 2:
            order_argument = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "order":
                order_argument = keyword.value
        if order_argument is not None and _is_order_member(order_argument, "NONE"):
            yield self.finding(
                module,
                node,
                "dedup_sort(..., Order.NONE) requests an unordered "
                "result from an ordering kernel (it raises at runtime)",
            )
