"""AST-based invariant checker for the repro engine's own contracts.

Run it as ``python -m repro.analysis src/`` or ``repro-rpq lint``.
See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the six invariants it enforces.
"""

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    analyze_paths,
    analyze_source,
    apply_baseline,
    default_rules,
    load_baseline,
)

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "default_rules",
    "load_baseline",
]
