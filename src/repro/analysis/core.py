"""Visitor framework for the repo's own invariant checker.

The engine has accreted contracts that ordinary linters cannot see:
lock sections around ``GraphDatabase`` state, fault-injection seams at
every I/O boundary, declared sort orders on :class:`repro.relation`
kernels, cooperative deadlines inside fixpoint loops.  This module is
the machinery those rules share — it knows nothing about any specific
invariant:

* :class:`Finding` — one violation: rule id, file, line, and the
  enclosing symbol (``Class.method`` qualname) that anchors baseline
  matching across unrelated line churn.
* :class:`Module` — a parsed source file with parent links, qualname
  scope tracking, and the inline-suppression table.
* :class:`Rule` — the base class every rule in
  :mod:`repro.analysis.rules` extends.
* baseline handling — ``analysis-baseline.json`` entries are keyed by
  ``(rule, file, symbol)`` and must each carry a ``justification``;
  entries no new finding matches are *stale* and fail the run, which
  is what makes the baseline shrink-only.

Suppression syntax: a ``# repro: ignore[rule-id]`` comment on the
flagged line (the ``while``/``except``/call line itself) or on its own
line directly above silences that rule there; ``ignore[*]`` silences
every rule at that location.  Text after the closing bracket is
free-form justification.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: ``# repro: ignore[rule-id]`` or ``ignore[rule-a, rule-b]`` or
#: ``ignore[*]``; anything after the bracket is justification prose.
_SUPPRESS = re.compile(r"#\s*repro:\s*ignore\[([a-z0-9*,\- ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    file: str
    line: int
    symbol: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """The baseline-matching key (line numbers churn; symbols don't)."""
        return (self.rule, self.file, self.symbol)

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def to_obj(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


class Module:
    """A parsed file plus the navigation aids every rule needs."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=relpath)
        self._parents: dict[ast.AST, ast.AST] = {}
        self._scopes: dict[ast.AST, str] = {}
        self._link(self.tree, None, "<module>")
        self.suppressions = self._suppressions(source)

    def _link(self, node: ast.AST, parent: ast.AST | None, scope: str) -> None:
        if parent is not None:
            self._parents[node] = parent
        self._scopes[node] = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scope = node.name if scope == "<module>" else f"{scope}.{node.name}"
        for child in ast.iter_child_nodes(node):
            self._link(child, node, scope)

    @staticmethod
    def _suppressions(source: str) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for line_no, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                table[line_no] = rules
        return table

    # -- navigation -----------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def scope_of(self, node: ast.AST) -> str:
        """Qualname of the innermost function/class enclosing ``node``."""
        return self._scopes.get(node, "<module>")

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def suppressed(self, rule_id: str, line: int) -> bool:
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules is not None and (rule_id in rules or "*" in rules):
                return True
        return False


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id``/``description``, narrow ``applies`` to the
    files the invariant governs, and yield :class:`Finding` objects
    from ``check``.  Suppression and baseline filtering happen in the
    driver — rules report everything they see.
    """

    id = ""
    description = ""

    def applies(self, relpath: str) -> bool:
        return "repro/" in relpath and relpath.endswith(".py")

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            file=module.relpath,
            line=getattr(node, "lineno", 0),
            symbol=module.scope_of(node),
            message=message,
        )


# -- shared AST helpers (used by several rules) --------------------------------


def call_name(node: ast.Call) -> str | None:
    """The called name: ``f(...)`` -> ``f``; ``obj.m(...)`` -> ``m``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def contains_call(tree: ast.AST, names: set[str]) -> bool:
    """Whether any call to one of ``names`` appears under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and call_name(node) in names:
            return True
    return False


def names_in(tree: ast.AST) -> set[str]:
    return {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}


# -- the driver ----------------------------------------------------------------


def default_rules() -> list[Rule]:
    from repro.analysis.rules import ALL_RULES

    return [rule_class() for rule_class in ALL_RULES]


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_source(
    source: str,
    relpath: str,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run the rules over one in-memory source blob (the test entry)."""
    rules = rules if rules is not None else default_rules()
    module = Module(relpath, source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(relpath):
            continue
        findings.extend(
            found
            for found in rule.check(module)
            if not module.suppressed(rule.id, found.line)
        )
    findings.sort(key=lambda found: (found.file, found.line, found.rule))
    return findings


def analyze_paths(
    paths: Iterable[str | Path],
    rules: list[Rule] | None = None,
    root: str | Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Analyze every file under ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are files that
    could not be read or parsed — reported, never silently skipped.
    """
    rules = rules if rules is not None else default_rules()
    root = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            relative = path.resolve().relative_to(root.resolve())
        except ValueError:
            relative = path
        relpath = relative.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            errors.append(f"{relpath}: unreadable ({error})")
            continue
        try:
            findings.extend(analyze_source(source, relpath, rules))
        except SyntaxError as error:
            errors.append(f"{relpath}: syntax error ({error})")
    return findings, errors


# -- baseline ------------------------------------------------------------------


def load_baseline(path: str | Path) -> list[dict]:
    """Parse ``analysis-baseline.json``; every entry must be justified."""
    obj = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = obj.get("entries", [])
    for entry in entries:
        for field_name in ("rule", "file", "symbol", "justification"):
            if not str(entry.get(field_name, "")).strip():
                raise ValueError(
                    f"baseline entry {entry!r} is missing {field_name!r} "
                    "(every suppression must name its location and carry "
                    "a justification)"
                )
    return entries


def apply_baseline(
    findings: list[Finding],
    entries: list[dict],
) -> tuple[list[Finding], list[dict]]:
    """Split ``findings`` against the baseline.

    Returns ``(new_findings, stale_entries)``: findings no entry
    covers, and entries no finding matches any more.  One entry covers
    every finding sharing its ``(rule, file, symbol)`` key — line
    numbers are deliberately not part of the match.
    """
    covered = {
        (entry["rule"], entry["file"], entry["symbol"]): False for entry in entries
    }
    new_findings: list[Finding] = []
    for found in findings:
        if found.key() in covered:
            covered[found.key()] = True
        else:
            new_findings.append(found)
    stale = [
        entry
        for entry in entries
        if not covered[(entry["rule"], entry["file"], entry["symbol"])]
    ]
    return new_findings, stale
