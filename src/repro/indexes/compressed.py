"""A compressed k-path index backend (delta + varint postings).

The companion work the paper cites ([14], the from-scratch B+tree
study) investigates *index size and compression*.  This backend stores
each label path's relation as a postings byte-string:

* pairs are grouped by source, sources ascending;
* each group is ``varint(source_delta) varint(target_count)`` followed
  by ascending ``varint(target_delta)`` values;
* a sparse skip list of ``(source, byte_offset)`` entries (one per
  ``SKIP_EVERY`` groups) makes ``scan_from`` sub-linear.

Varints are unsigned LEB128.  Typical k-path relations (clustered ids,
runs of shared sources) compress to a fraction of the raw
3-integer-tuple representation; the exact ratio is reported by
``benchmarks/bench_storage.py`` and :func:`compression_ratio`.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Iterable, Iterator

from repro.errors import StorageError

Pair = tuple[int, int]

#: One skip entry is kept every this many source groups.
SKIP_EVERY = 32


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 encoding."""
    if value < 0:
        raise StorageError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one varint; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StorageError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


class PostingList:
    """One path's relation, compressed."""

    __slots__ = ("data", "skips", "count")

    def __init__(self, data: bytes, skips: list[tuple[int, int]], count: int):
        self.data = data
        self.skips = skips  # (first source of group, byte offset)
        self.count = count

    @classmethod
    def from_pairs(cls, pairs: list[Pair]) -> "PostingList":
        """Compress a (src, tgt)-sorted, duplicate-free pair list."""
        out = bytearray()
        skips: list[tuple[int, int]] = []
        previous_source = 0
        index = 0
        group_number = 0
        total = len(pairs)
        while index < total:
            source = pairs[index][0]
            end = index
            while end < total and pairs[end][0] == source:
                end += 1
            if group_number % SKIP_EVERY == 0:
                skips.append((source, len(out)))
            out += encode_varint(source - previous_source)
            out += encode_varint(end - index)
            previous_target = 0
            for _, target in pairs[index:end]:
                out += encode_varint(target - previous_target)
                previous_target = target
            previous_source = source
            index = end
            group_number += 1
        return cls(bytes(out), skips, total)

    # -- decoding -----------------------------------------------------------

    def pairs(self) -> Iterator[Pair]:
        """Decompress the full relation in (src, tgt) order."""
        data = self.data
        offset = 0
        source = 0
        while offset < len(data):
            delta, offset = decode_varint(data, offset)
            source += delta
            count, offset = decode_varint(data, offset)
            target = 0
            for _ in range(count):
                step, offset = decode_varint(data, offset)
                target += step
                yield source, target

    def columns(self) -> tuple[array, array]:
        """Decompress straight into (src, tgt) int64 columns.

        The columnar twin of :meth:`pairs`: no per-pair tuple objects
        are created, and the columns come back (src, tgt)-sorted — the
        encoding order — ready to wrap in a BY_SRC ``Relation``.
        """
        sources = array("q")
        targets = array("q")
        data = self.data
        offset = 0
        source = 0
        while offset < len(data):
            delta, offset = decode_varint(data, offset)
            source += delta
            count, offset = decode_varint(data, offset)
            target = 0
            for _ in range(count):
                step, offset = decode_varint(data, offset)
                target += step
                sources.append(source)
                targets.append(target)
        return sources, targets

    def targets_of(self, wanted: int) -> list[int]:
        """Decode only the targets of one source (skip-list assisted)."""
        if not self.skips:
            return []
        position = bisect.bisect_right(self.skips, (wanted, float("inf"))) - 1
        if position < 0:
            return []
        anchor_source, offset = self.skips[position]
        data = self.data
        # The anchor group's source delta is relative to the *previous*
        # group; we know its absolute value from the skip entry.
        source = anchor_source
        first = True
        while offset < len(data):
            delta, offset = decode_varint(data, offset)
            if first:
                first = False  # absolute value known from the skip entry
            else:
                source += delta
            if source > wanted:
                return []
            count, offset = decode_varint(data, offset)
            if source == wanted:
                targets: list[int] = []
                target = 0
                for _ in range(count):
                    step, offset = decode_varint(data, offset)
                    target += step
                    targets.append(target)
                return targets
            for _ in range(count):
                _, offset = decode_varint(data, offset)
        return []

    def byte_size(self) -> int:
        return len(self.data) + 16 * len(self.skips)


class CompressedBackend:
    """PathIndex backend storing a :class:`PostingList` per path."""

    name = "compressed"

    def __init__(self) -> None:
        self._postings: dict[int, PostingList] = {}

    def bulk_load(self, entries: Iterable[tuple[int, int, int]]) -> None:
        current_path: int | None = None
        buffer: list[Pair] = []
        for path_id, source, target in entries:
            if path_id != current_path:
                if current_path is not None and buffer:
                    self._postings[current_path] = PostingList.from_pairs(buffer)
                current_path = path_id
                buffer = []
            buffer.append((source, target))
        if current_path is not None and buffer:
            self._postings[current_path] = PostingList.from_pairs(buffer)

    def bulk_load_runs(
        self, runs: Iterable[list[tuple[int, int, int]]]
    ) -> None:
        """Each run is one path's sorted triples: a posting list apiece."""
        for run in runs:
            if run:
                self._postings[run[0][0]] = PostingList.from_pairs(
                    [(source, target) for _, source, target in run]
                )

    def prefix(self, prefix: tuple[int, ...]) -> Iterator[tuple[int, int, int]]:
        if not prefix:
            raise StorageError("empty prefix")
        path_id = prefix[0]
        postings = self._postings.get(path_id)
        if postings is None:
            return
        if len(prefix) == 1:
            for source, target in postings.pairs():
                yield path_id, source, target
        elif len(prefix) == 2:
            for target in postings.targets_of(prefix[1]):
                yield path_id, prefix[1], target
        else:
            raise StorageError(f"prefix too wide: {prefix!r}")

    def scan_columns(self, path_id: int) -> tuple[array, array]:
        """One path's full relation as (src, tgt)-sorted int64 columns."""
        postings = self._postings.get(path_id)
        if postings is None:
            return array("q"), array("q")
        return postings.columns()

    def contains(self, key: tuple[int, int, int]) -> bool:
        path_id, source, target = key
        postings = self._postings.get(path_id)
        if postings is None:
            return False
        targets = postings.targets_of(source)
        position = bisect.bisect_left(targets, target)
        return position < len(targets) and targets[position] == target

    def __len__(self) -> int:
        return sum(postings.count for postings in self._postings.values())

    def byte_size(self) -> int:
        """Total compressed bytes (postings + skip lists)."""
        return sum(postings.byte_size() for postings in self._postings.values())

    def close(self) -> None:
        """Nothing to release."""


def compression_ratio(backend: CompressedBackend) -> float:
    """Compressed bytes per entry vs a raw 24-byte (3×int64) triple."""
    entries = len(backend)
    if entries == 0:
        return 0.0
    return backend.byte_size() / (24 * entries)
