"""Enumerating label paths and materializing their relations.

The k-path index ``I_{G,k}`` (Section 3.1) contains one entry
``(p, a, b)`` for every label path ``p`` of length 1..k over the step
alphabet ``{l, l⁻}`` and every pair ``(a, b) ∈ p(G)``.

The builder walks the prefix trie of label paths depth-first, computing
each path's relation from its parent's by one relational composition
(``p·s (G) = p(G) ∘ s(G)``), so only ``k`` relations are alive at any
moment.  Subtrees rooted at an empty relation are pruned — every
extension of an empty path is empty — but the empty path itself is
still *reported* with count 0 so the statistics layer knows it exists.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath, Step

Pair = tuple[int, int]


def enumerate_label_paths(labels: tuple[str, ...], k: int) -> list[LabelPath]:
    """All step sequences of length 1..k, in trie (DFS) order.

    There are ``(2|L|)^1 + ... + (2|L|)^k`` of them; this enumerates
    syntax only and touches no graph data.
    """
    _check_k(k)
    steps = _sorted_steps(labels)
    result: list[LabelPath] = []

    def extend(prefix: tuple[Step, ...]) -> None:
        for step in steps:
            path = prefix + (step,)
            result.append(LabelPath(path))
            if len(path) < k:
                extend(path)

    extend(())
    return result


def count_label_paths(label_count: int, k: int) -> int:
    """Closed form for ``len(enumerate_label_paths(...))``."""
    _check_k(k)
    alphabet = 2 * label_count
    return sum(alphabet**length for length in range(1, k + 1))


def path_relations(
    graph: Graph, k: int, prune_empty: bool = True
) -> Iterator[tuple[LabelPath, list[Pair]]]:
    """Yield ``(path, sorted relation)`` for every label path up to k.

    Paths appear in DFS (trie) order, so a path's prefix always appears
    before it.  With ``prune_empty`` (the default), a path with an empty
    relation is yielded once (empty list) and its extensions skipped.
    """
    _check_k(k)
    steps = _sorted_steps(graph.labels())
    step_adjacency = {
        step: _adjacency(graph, step) for step in steps
    }

    def expand(
        prefix: tuple[Step, ...], relation: set[Pair]
    ) -> Iterator[tuple[LabelPath, list[Pair]]]:
        for step in steps:
            path_steps = prefix + (step,)
            if prefix:
                extended = _compose_with_step(relation, step_adjacency[step])
            else:
                extended = set(graph.step_pairs(step))
            yield LabelPath(path_steps), sorted(extended)
            if len(path_steps) < k:
                if extended or not prune_empty:
                    yield from expand(path_steps, extended)

    yield from expand((), set())


def _adjacency(graph: Graph, step: Step) -> dict[int, list[int]]:
    """source -> targets adjacency of one step relation."""
    adjacency: dict[int, list[int]] = {}
    for source, target in graph.step_pairs(step):
        adjacency.setdefault(source, []).append(target)
    return adjacency


def _compose_with_step(
    relation: set[Pair], adjacency: dict[int, list[int]]
) -> set[Pair]:
    result: set[Pair] = set()
    for source, mid in relation:
        targets = adjacency.get(mid)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def estimate_index_entries(graph: Graph, k: int) -> int:
    """Total number of index entries ``|I_{G,k}|`` (builds nothing kept)."""
    return sum(len(pairs) for _, pairs in path_relations(graph, k))


def path_counts(graph: Graph, k: int) -> dict[str, int]:
    """Map encoded path -> ``|p(G)|`` for every enumerated path."""
    return {
        path.encode(): len(pairs) for path, pairs in path_relations(graph, k)
    }


def _sorted_steps(labels: tuple[str, ...]) -> tuple[Step, ...]:
    steps = [Step(label) for label in labels]
    steps += [Step(label, inverse=True) for label in labels]
    return tuple(sorted(steps, key=lambda step: step.encode()))


def _check_k(k: int) -> None:
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
