"""Enumerating label paths and materializing their relations.

The k-path index ``I_{G,k}`` (Section 3.1) contains one entry
``(p, a, b)`` for every label path ``p`` of length 1..k over the step
alphabet ``{l, l⁻}`` and every pair ``(a, b) ∈ p(G)``.

The builder walks the prefix trie of label paths depth-first, computing
each path's relation from its parent's by one relational composition
(``p·s (G) = p(G) ∘ s(G)``), so only ``k`` relations are alive at any
moment.  Subtrees rooted at an empty relation are pruned — every
extension of an empty path is empty — but the empty path itself is
still *reported* with count 0 so the statistics layer knows it exists.
"""

from __future__ import annotations

from array import array
from typing import Container, Iterator

from repro import relation as rel
from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath, Step
from repro.relation import Order, Relation

Pair = tuple[int, int]


def enumerate_label_paths(labels: tuple[str, ...], k: int) -> list[LabelPath]:
    """All step sequences of length 1..k, in trie (DFS) order.

    There are ``(2|L|)^1 + ... + (2|L|)^k`` of them; this enumerates
    syntax only and touches no graph data.
    """
    _check_k(k)
    steps = _sorted_steps(labels)
    result: list[LabelPath] = []

    def extend(prefix: tuple[Step, ...]) -> None:
        for step in steps:
            path = prefix + (step,)
            result.append(LabelPath(path))
            if len(path) < k:
                extend(path)

    extend(())
    return result


def count_label_paths(label_count: int, k: int) -> int:
    """Closed form for ``len(enumerate_label_paths(...))``."""
    _check_k(k)
    alphabet = 2 * label_count
    return sum(alphabet**length for length in range(1, k + 1))


def path_relations(
    graph: Graph,
    k: int,
    prune_empty: bool = True,
    sources: Container[int] | None = None,
) -> Iterator[tuple[LabelPath, list[Pair]]]:
    """Yield ``(path, sorted relation)`` for every label path up to k.

    Paths appear in DFS (trie) order, so a path's prefix always appears
    before it.  With ``prune_empty`` (the default), a path with an empty
    relation is yielded once (empty list) and its extensions skipped.

    ``sources`` restricts every relation to pairs whose *first*
    component (the path's start vertex) is in the container — the
    partition a shard of :class:`repro.sharding.ShardedGraph` owns.
    Only the first step needs filtering: composition extends paths on
    the right, so the start vertex of every pair is inherited from the
    first step's pairs.
    """
    _check_k(k)
    steps = _sorted_steps(graph.labels())
    step_adjacency = {step: _adjacency(graph, step) for step in steps}

    def expand(
        prefix: tuple[Step, ...], relation: set[Pair]
    ) -> Iterator[tuple[LabelPath, list[Pair]]]:
        for step in steps:
            path_steps = prefix + (step,)
            if prefix:
                extended = _compose_with_step(relation, step_adjacency[step])
            else:
                extended = set(graph.step_pairs(step))
                if sources is not None:
                    extended = {pair for pair in extended if pair[0] in sources}
            yield LabelPath(path_steps), sorted(extended)
            if len(path_steps) < k:
                if extended or not prune_empty:
                    yield from expand(path_steps, extended)

    yield from expand((), set())


def path_relations_columnar(
    graph: Graph,
    k: int,
    prune_empty: bool = True,
    sources: Container[int] | None = None,
) -> Iterator[tuple[LabelPath, Relation]]:
    """Columnar twin of :func:`path_relations`: yields ``Relation`` values.

    Same trie order, same pruning, same optional ``sources`` restriction
    — but every relation is a ``BY_SRC``-sorted columnar
    :class:`~repro.relation.Relation` and each extension is one
    :func:`repro.relation.compose` call (packed-key / numpy kernels)
    instead of a tuple-set loop.  This is the engine behind the sharded
    index build (:meth:`repro.sharding.ShardedGraph.build`), where it
    beats the tuple-set builder severalfold even on one core; the
    unsharded :meth:`repro.indexes.pathindex.PathIndex.build` keeps the
    tuple-set path as the stable single-shard baseline.
    """
    _check_k(k)
    steps = _sorted_steps(graph.labels())
    step_relations = {
        step: rel.dedup_sort(Relation.from_pairs(graph.step_pairs(step)), Order.BY_SRC)
        for step in steps
    }
    if sources is None:
        first_relations = step_relations
    else:
        first_relations = {
            step: _restrict_sources(relation, sources)
            for step, relation in step_relations.items()
        }

    def expand(
        prefix: tuple[Step, ...], relation: Relation | None
    ) -> Iterator[tuple[LabelPath, Relation]]:
        for step in steps:
            path_steps = prefix + (step,)
            if relation is None:
                extended = first_relations[step]
            else:
                extended = rel.compose(relation, step_relations[step])
                if extended.order is not Order.BY_SRC:
                    extended = rel.dedup_sort(extended, Order.BY_SRC)
            yield LabelPath(path_steps), extended
            if len(path_steps) < k:
                if len(extended) or not prune_empty:
                    yield from expand(path_steps, extended)

    yield from expand((), None)


def _restrict_sources(relation: Relation, sources: Container[int]) -> Relation:
    """Rows of a ``BY_SRC`` relation whose source is in ``sources``.

    Order is preserved (filtering a sorted column keeps it sorted).
    When ``sources`` exposes a vectorized membership test
    (:meth:`repro.sharding.ShardMembership.mask`), the filter is one
    numpy boolean gather instead of a per-row loop.
    """
    if not len(relation):
        return Relation.empty(Order.BY_SRC)
    mask_of = getattr(sources, "mask", None)
    numpy = rel._np if not rel._FORCE_PURE_PYTHON else None
    if mask_of is not None and numpy is not None and len(relation) >= rel._VECTOR_MIN:
        mask = mask_of(rel._view(relation.src))
        return Relation(
            rel._column(rel._view(relation.src)[mask]),
            rel._column(rel._view(relation.tgt)[mask]),
            Order.BY_SRC,
        )
    src = array("q")
    tgt = array("q")
    relation_src, relation_tgt = relation.src, relation.tgt
    for i, source in enumerate(relation_src):
        if source in sources:
            src.append(source)
            tgt.append(relation_tgt[i])
    return Relation(src, tgt, Order.BY_SRC)


def _adjacency(graph: Graph, step: Step) -> dict[int, list[int]]:
    """source -> targets adjacency of one step relation."""
    adjacency: dict[int, list[int]] = {}
    for source, target in graph.step_pairs(step):
        adjacency.setdefault(source, []).append(target)
    return adjacency


def _compose_with_step(
    relation: set[Pair], adjacency: dict[int, list[int]]
) -> set[Pair]:
    result: set[Pair] = set()
    for source, mid in relation:
        targets = adjacency.get(mid)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def estimate_index_entries(graph: Graph, k: int) -> int:
    """Total number of index entries ``|I_{G,k}|`` (builds nothing kept)."""
    return sum(len(pairs) for _, pairs in path_relations(graph, k))


def path_counts(graph: Graph, k: int) -> dict[str, int]:
    """Map encoded path -> ``|p(G)|`` for every enumerated path."""
    return {path.encode(): len(pairs) for path, pairs in path_relations(graph, k)}


def _sorted_steps(labels: tuple[str, ...]) -> tuple[Step, ...]:
    steps = [Step(label) for label in labels]
    steps += [Step(label, inverse=True) for label in labels]
    return tuple(sorted(steps, key=lambda step: step.encode()))


def _check_k(k: int) -> None:
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
