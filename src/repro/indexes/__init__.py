"""Indexes: the k-path index, selectivity statistics, reachability."""

from repro.indexes.compressed import CompressedBackend, compression_ratio
from repro.indexes.dynamic import DynamicPathIndex
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex
from repro.indexes.reachability import LabelReachabilityIndex
from repro.indexes.statistics import ExactStatistics, Statistics, UniformStatistics

__all__ = [
    "CompressedBackend",
    "DynamicPathIndex",
    "EquiDepthHistogram",
    "ExactStatistics",
    "LabelReachabilityIndex",
    "PathIndex",
    "Statistics",
    "UniformStatistics",
    "compression_ratio",
]
