"""Incremental maintenance of the k-path index (the paper's future work).

The demo paper builds ``I_{G,k}`` once per graph; maintaining it under
edge insertions/deletions is left open.  This module implements both
directions with a localized delta algorithm:

* **insert** ``u -l-> v`` — for every indexed label path
  ``p = s_1 ... s_m`` and every position ``i`` whose step matches the
  new edge (forward ``l`` or inverse ``l⁻``), the new pairs are exactly
  ``A × B`` where ``A`` are the nodes reaching the edge's entry point
  via the inverted prefix ``(s_1..s_{i-1})⁻`` and ``B`` the nodes
  reachable from its exit point via the suffix ``s_{i+1}..s_m`` — both
  computed on the *updated* graph by depth-bounded frontier expansion.
  Every genuinely new pair has a witness through the new edge at some
  position, so the union over positions is complete.

* **delete** — the same ``A × B`` candidate sets are computed *before*
  removing the edge (witnesses ran through it); after removal each
  candidate pair is re-checked by a bounded search, since it may have
  surviving witnesses elsewhere.

Cost is proportional to the affected neighborhoods (``O(deg^k)`` per
position) rather than to the whole graph — the point of the exercise.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import PathIndexError, ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.indexes.builder import enumerate_label_paths, path_relations
from repro.relation import Order, Relation, dedup_sort, swap

Pair = tuple[int, int]


def path_targets(graph: Graph, source: int, path: LabelPath) -> set[int]:
    """Frontier expansion: all targets of ``path`` from ``source``."""
    frontier = {source}
    for step in path:
        if not frontier:
            break
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier.update(graph.step_neighbors(node, step))
        frontier = next_frontier
    return frontier


def edge_delta(
    graph: Graph, path: LabelPath, label: str, source: int, target: int
) -> set[Pair]:
    """Pairs of ``path`` with a witness through the ``(source, target)``
    edge labelled ``label``, evaluated on the graph as given.

    The localized ``A x B`` computation from the module docstring, as a
    free function so the sharded write path
    (:mod:`repro.write.delta`) can reuse it: for an insertion call it
    on the post-insert graph (the result is exactly the new pairs); for
    a deletion call it pre-delete (the result is the candidate set to
    re-check once the edge is gone).
    """
    delta: set[Pair] = set()
    for position, step in enumerate(path.steps):
        if step.label != label:
            continue
        entry, exit_ = (source, target) if not step.inverse else (target, source)
        if position > 0:
            prefix = path.prefix(position).inverted()
            left = path_targets(graph, entry, prefix)
        else:
            left = {entry}
        if not left:
            continue
        if position + 1 < len(path):
            suffix = path.subpath(position + 1, len(path))
            right = path_targets(graph, exit_, suffix)
        else:
            right = {exit_}
        for a in left:
            for b in right:
                delta.add((a, b))
    return delta


class DynamicPathIndex:
    """A k-path index that tracks graph mutations.

    Exposes the same lookup surface as :class:`PathIndex` (``scan``,
    ``scan_from``, ``contains``, ``count``) backed by per-path sorted
    pair lists, plus :meth:`add_edge` / :meth:`remove_edge` which update
    the graph *and* the index together.
    """

    def __init__(self, graph: Graph, k: int):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self._relations: dict[str, list[Pair]] = {}
        self._all_paths: list[LabelPath] = []
        self._rebuild()

    def _rebuild(self) -> None:
        self._relations = {
            path.encode(): pairs
            for path, pairs in path_relations(self.graph, self.k, prune_empty=False)
        }
        self._all_paths = enumerate_label_paths(self.graph.labels(), self.k)

    # -- lookups (PathIndex-compatible) -----------------------------------

    def scan(self, path: LabelPath) -> Relation:
        """The relation of ``path`` as a columnar ``Relation``.

        Sorted by (src, tgt), matching :meth:`PathIndex.scan` so a
        dynamic index can stand in wherever a static one is accepted.
        """
        self._check(path)
        return Relation.from_pairs(
            self._relations.get(path.encode(), ()), Order.BY_SRC
        )

    def scan_swapped(self, path: LabelPath) -> Relation:
        """The relation of ``path`` sorted by (tgt, src) (``Order.BY_TGT``).

        Normally materialized the paper's way: scan the *inverse* path
        and exchange the columns (zero-copy).  When the inverse path is
        not in the indexed path set — a restricted index that excludes
        inverse steps, for instance — scanning it would silently return
        the empty relation instead of the swapped one, so fall back to
        sorting the forward relation by target.
        """
        self._check(path)
        inverted = path.inverted()
        if inverted.encode() in self._relations:
            return swap(self.scan(inverted))
        return dedup_sort(self.scan(path), Order.BY_TGT)

    def scan_from(self, path: LabelPath, source: int) -> list[int]:
        """Sorted targets of ``path`` from ``source``."""
        pairs = self._relations.get(path.encode())
        if not pairs:
            return []
        start = bisect.bisect_left(pairs, (source, -1))
        result: list[int] = []
        for src, tgt in pairs[start:]:
            if src != source:
                break
            result.append(tgt)
        return result

    def contains(self, path: LabelPath, source: int, target: int) -> bool:
        pairs = self._relations.get(path.encode())
        if not pairs:
            return False
        position = bisect.bisect_left(pairs, (source, target))
        return position < len(pairs) and pairs[position] == (source, target)

    def count(self, path: LabelPath) -> int:
        self._check(path)
        return len(self._relations.get(path.encode(), ()))

    @property
    def entry_count(self) -> int:
        return sum(len(pairs) for pairs in self._relations.values())

    def counts_by_path(self) -> dict[str, int]:
        return {encoded: len(pairs) for encoded, pairs in self._relations.items()}

    def paths(self) -> Iterator[LabelPath]:
        yield from self._all_paths

    # -- mutation ------------------------------------------------------------

    def add_edge(self, source_name: str, label: str, target_name: str) -> bool:
        """Insert an edge into the graph and propagate index deltas."""
        new_label = label not in self.graph.labels()
        added = self.graph.add_edge(source_name, label, target_name)
        if not added:
            return False
        if new_label:
            # The path alphabet itself grew; incremental deltas cannot
            # cover paths that did not exist — rebuild once.
            self._rebuild()
            return True
        source = self.graph.node_id(source_name)
        target = self.graph.node_id(target_name)
        for path in self._all_paths:
            delta = self._edge_delta(path, label, source, target)
            if delta:
                self._insert_pairs(path, delta)
        return True

    def remove_edge(self, source_name: str, label: str, target_name: str) -> bool:
        """Delete an edge and retract index pairs that lost all witnesses."""
        if not self.graph.has_edge(source_name, label, target_name):
            return False
        source = self.graph.node_id(source_name)
        target = self.graph.node_id(target_name)
        # Candidates must be collected while the edge still exists.
        candidates: dict[str, set[Pair]] = {}
        for path in self._all_paths:
            delta = self._edge_delta(path, label, source, target)
            if delta:
                candidates[path.encode()] = delta
        self.graph.remove_edge(source_name, label, target_name)
        if label not in self.graph.labels():
            # The last edge of this label is gone, so the path alphabet
            # shrank — the mirror image of add_edge's new-label case.
            # Rebuild so paths over the dead label are retired instead
            # of lingering in counts_by_path()/entry_count/paths().
            self._rebuild()
            return True
        for encoded, pairs in candidates.items():
            path = LabelPath.decode(encoded)
            dead = {
                pair
                for pair in pairs
                if pair[1] not in path_targets(self.graph, pair[0], path)
            }
            if dead:
                self._delete_pairs(path, dead)
        return True

    # -- internals ----------------------------------------------------------------

    def _edge_delta(
        self, path: LabelPath, label: str, source: int, target: int
    ) -> set[Pair]:
        """Pairs of ``path`` with a witness through the (u,v) edge."""
        return edge_delta(self.graph, path, label, source, target)

    def _insert_pairs(self, path: LabelPath, pairs: set[Pair]) -> None:
        current = self._relations.setdefault(path.encode(), [])
        for pair in sorted(pairs):
            position = bisect.bisect_left(current, pair)
            if position >= len(current) or current[position] != pair:
                current.insert(position, pair)

    def _delete_pairs(self, path: LabelPath, pairs: set[Pair]) -> None:
        current = self._relations.get(path.encode())
        if not current:
            return
        for pair in sorted(pairs):
            position = bisect.bisect_left(current, pair)
            if position < len(current) and current[position] == pair:
                del current[position]

    def _check(self, path: LabelPath) -> None:
        if len(path) > self.k:
            raise PathIndexError(f"path {path} has length {len(path)} > k={self.k}")

    def __repr__(self) -> str:
        return (
            f"DynamicPathIndex(k={self.k}, paths={len(self._all_paths)}, "
            f"entries={self.entry_count})"
        )


