"""A reachability index: approach (3) from the paper's introduction.

Gubichev et al.'s approach translates *restricted* uses of Kleene star
into reachability queries answered by an off-the-shelf reachability
index.  To demonstrate that restriction (and contrast it with the
path-index approach, which handles arbitrary RPQs), this module builds
a classic reachability index for a single step relation:

1. Tarjan's algorithm (iterative) condenses the relation digraph into
   strongly connected components;
2. components are processed in reverse topological order, propagating
   per-component reachability *bitsets*, so a query is two lookups and
   one bit test.

:class:`LabelReachabilityIndex` answers ``a (l)* b`` / ``a (l)+ b`` for
one label (or step); the baseline front-end in
:mod:`repro.baselines.reachability_eval` recognizes exactly the query
shapes this supports and raises
:class:`~repro.errors.UnsupportedQueryError` otherwise.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.graph import Graph, Step

Pair = tuple[int, int]


def strongly_connected_components(
    node_count: int, edges: Iterable[Pair]
) -> list[int]:
    """Tarjan's SCC, iteratively; returns node -> component id.

    Component ids are assigned in *reverse* topological order of the
    condensation (a property of Tarjan's algorithm): if component X can
    reach component Y (X != Y), then ``id(X) > id(Y)``.
    """
    adjacency: list[list[int]] = [[] for _ in range(node_count)]
    for source, target in edges:
        adjacency[source].append(target)

    UNVISITED = -1
    index_counter = 0
    component_counter = 0
    indices = [UNVISITED] * node_count
    lowlink = [0] * node_count
    on_stack = [False] * node_count
    component = [UNVISITED] * node_count
    stack: list[int] = []

    for root in range(node_count):
        if indices[root] != UNVISITED:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            neighbors = adjacency[node]
            while child_index < len(neighbors):
                successor = neighbors[child_index]
                child_index += 1
                if indices[successor] == UNVISITED:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = component_counter
                    if member == node:
                        break
                component_counter += 1
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


class LabelReachabilityIndex:
    """Reachability over the digraph of one step relation."""

    def __init__(self, graph: Graph, step: Step):
        self.graph = graph
        self.step = step
        node_count = graph.node_count
        edges = list(graph.step_pairs(step))
        self._component = strongly_connected_components(node_count, edges)
        component_count = (max(self._component) + 1) if node_count else 0

        # Component DAG edges, then reachability bitsets in topological
        # order.  Tarjan ids are reverse-topological: an edge X -> Y in
        # the condensation has id(X) > id(Y), so ascending id order is a
        # valid propagation order.
        successors: list[set[int]] = [set() for _ in range(component_count)]
        self._nontrivial = [False] * component_count
        member_count = [0] * component_count
        for node in range(node_count):
            member_count[self._component[node]] += 1
        for source, target in edges:
            cs, ct = self._component[source], self._component[target]
            if cs == ct:
                self._nontrivial[cs] = True
            else:
                successors[cs].add(ct)
        for comp in range(component_count):
            if member_count[comp] > 1:
                self._nontrivial[comp] = True

        self._reach: list[int] = [0] * component_count
        for comp in range(component_count):
            mask = 1 << comp
            for successor in successors[comp]:
                mask |= self._reach[successor]
            self._reach[comp] = mask
        self._members: list[list[int]] = [[] for _ in range(component_count)]
        for node in range(node_count):
            self._members[self._component[node]].append(node)

    # -- queries ----------------------------------------------------------------

    def reachable(self, source: int, target: int, reflexive: bool = True) -> bool:
        """Is there an l-labeled walk from ``source`` to ``target``?

        ``reflexive=True`` answers ``(l)*`` (zero steps allowed);
        ``reflexive=False`` answers ``(l)+`` (at least one step).
        """
        cs, ct = self._component[source], self._component[target]
        if source == target and reflexive:
            return True
        if cs == ct:
            return self._nontrivial[cs]
        return bool(self._reach[cs] & (1 << ct))

    def reachable_set(self, source: int, reflexive: bool = True) -> set[int]:
        """All nodes reachable from ``source``."""
        result: set[int] = set()
        cs = self._component[source]
        mask = self._reach[cs]
        comp = 0
        while mask:
            if mask & 1:
                if comp == cs and not self._nontrivial[cs]:
                    pass  # own trivial component: only via 0 steps
                else:
                    result.update(self._members[comp])
            mask >>= 1
            comp += 1
        if reflexive:
            result.add(source)
        elif not self._nontrivial[cs]:
            result.discard(source)
        return result

    def all_pairs(self, reflexive: bool = True) -> Iterator[Pair]:
        """Every reachable ``(a, b)`` pair (the full ``(l)*`` answer)."""
        for source in self.graph.node_ids():
            for target in sorted(self.reachable_set(source, reflexive=reflexive)):
                yield source, target
