"""The k-path equi-depth histogram ``sel_{G,k}`` (Section 3.2).

The paper compresses per-path counts into an equi-depth histogram:
label paths are ordered (lexicographically by their encoding, matching
the index sort order), and bucket boundaries are chosen so each bucket
holds approximately the same *total* count ("depth").  A path's
estimate is its bucket's average count; paths outside every bucket
(pruned empty paths) estimate to zero.

The histogram can be persisted as a :class:`repro.storage.table.Table`
(mirroring the paper's PostgreSQL-table storage) via
:meth:`EquiDepthHistogram.to_table` / :meth:`from_table`.
"""

from __future__ import annotations

import bisect

from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.pathindex import PathIndex
from repro.storage.table import Column, Table


class EquiDepthHistogram:
    """Equi-depth histogram over per-path counts."""

    def __init__(
        self,
        boundaries: list[str],
        bucket_paths: list[int],
        bucket_totals: list[int],
        k: int,
        total_paths_k: int,
    ):
        if not (len(boundaries) == len(bucket_paths) == len(bucket_totals)):
            raise ValidationError("histogram arrays must be parallel")
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self._boundaries = boundaries  # first encoded path of each bucket
        self._bucket_paths = bucket_paths  # number of paths per bucket
        self._bucket_totals = bucket_totals  # total count per bucket
        self.k = k
        self.total_paths_k = max(total_paths_k, 1)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_counts(
        cls,
        counts: dict[str, int],
        k: int,
        total_paths_k: int,
        buckets: int = 64,
    ) -> "EquiDepthHistogram":
        """Build from encoded-path -> count with ~equal depth per bucket."""
        if buckets < 1:
            raise ValidationError(f"buckets must be >= 1, got {buckets}")
        ordered = sorted(counts.items())
        if not ordered:
            return cls([], [], [], k, total_paths_k)
        grand_total = sum(count for _, count in ordered)
        target_depth = max(grand_total / buckets, 1.0)

        boundaries: list[str] = []
        bucket_paths: list[int] = []
        bucket_totals: list[int] = []
        current_paths = 0
        current_total = 0
        current_first: str | None = None
        for encoded, count in ordered:
            if current_first is None:
                current_first = encoded
            current_paths += 1
            current_total += count
            if current_total >= target_depth and len(boundaries) < buckets - 1:
                boundaries.append(current_first)
                bucket_paths.append(current_paths)
                bucket_totals.append(current_total)
                current_first = None
                current_paths = 0
                current_total = 0
        if current_first is not None:
            boundaries.append(current_first)
            bucket_paths.append(current_paths)
            bucket_totals.append(current_total)
        return cls(boundaries, bucket_paths, bucket_totals, k, total_paths_k)

    @classmethod
    def from_index(
        cls,
        index: PathIndex,
        graph: Graph | None = None,
        buckets: int = 64,
    ) -> "EquiDepthHistogram":
        """Build from a :class:`PathIndex` catalog."""
        graph = graph if graph is not None else index.graph
        return cls.from_counts(
            index.counts_by_path(),
            k=index.k,
            total_paths_k=count_paths_k(graph, index.k),
            buckets=buckets,
        )

    # -- estimation ----------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return len(self._boundaries)

    def estimated_count(self, path: LabelPath) -> float:
        """Bucket-average estimate of ``|p(G)|``."""
        if len(path) > self.k:
            raise ValidationError(
                f"path {path} longer than histogram horizon k={self.k}"
            )
        if not self._boundaries:
            return 0.0
        encoded = path.encode()
        bucket = bisect.bisect_right(self._boundaries, encoded) - 1
        if bucket < 0:
            return 0.0
        paths_in_bucket = self._bucket_paths[bucket]
        if paths_in_bucket == 0:
            return 0.0
        return self._bucket_totals[bucket] / paths_in_bucket

    def selectivity(self, path: LabelPath) -> float:
        """The paper's ``sel_{G,k}(p)``."""
        return self.estimated_count(path) / self.total_paths_k

    # -- persistence -------------------------------------------------------------------

    _SCHEMA = (
        Column("bucket", "int"),
        Column("first_path", "str"),
        Column("paths", "int"),
        Column("total", "int"),
    )

    def to_table(self) -> Table:
        """Store the histogram as a relation (as the paper does)."""
        table = Table("path_histogram", self._SCHEMA, key_width=1)
        for bucket in range(self.bucket_count):
            table.insert(
                (
                    bucket,
                    self._boundaries[bucket],
                    self._bucket_paths[bucket],
                    self._bucket_totals[bucket],
                )
            )
        return table

    @classmethod
    def from_table(
        cls, table: Table, k: int, total_paths_k: int
    ) -> "EquiDepthHistogram":
        """Rebuild from :meth:`to_table` output."""
        boundaries: list[str] = []
        bucket_paths: list[int] = []
        bucket_totals: list[int] = []
        for _, first_path, paths, total in table.scan():
            boundaries.append(first_path)
            bucket_paths.append(paths)
            bucket_totals.append(total)
        return cls(boundaries, bucket_paths, bucket_totals, k, total_paths_k)

    # -- diagnostics -------------------------------------------------------------------

    def mean_absolute_error(self, counts: dict[str, int]) -> float:
        """Average |estimate - truth| over the given exact counts."""
        if not counts:
            return 0.0
        error = 0.0
        for encoded, truth in counts.items():
            estimate = self.estimated_count(LabelPath.decode(encoded))
            error += abs(estimate - truth)
        return error / len(counts)

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram(k={self.k}, buckets={self.bucket_count}, "
            f"total_paths_k={self.total_paths_k})"
        )
