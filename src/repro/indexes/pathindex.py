"""The k-path index ``I_{G,k}`` (Section 3.1).

An ordered dictionary with search key ``(label path, source, target)``,
supporting exactly the lookups of Example 3.1:

* ``scan(p)`` — all pairs of ``p(G)``, sorted by (source, target);
* ``scan_from(p, a)`` — all targets ``b`` with ``(a, b) ∈ p(G)``;
* ``contains(p, a, b)`` — membership of one pair.

Two backends implement the ordered dictionary: the in-memory B+tree
(default, fastest) and the page-based disk B+tree (faithful to the
paper's use of PostgreSQL B+trees).  A catalog maps each label path to
a dense integer path id assigned in build (trie) order, so index keys
are homogeneous ``(path_id, src, tgt)`` integer triples; the catalog
also records exact per-path counts, from which the statistics layer is
derived.
"""

from __future__ import annotations

import json
from array import array
from itertools import repeat
from pathlib import Path as FilePath
from typing import Iterable, Iterator

from repro.errors import PathIndexError, ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.indexes.builder import path_relations
from repro.relation import Order, Relation, swap
from repro.storage.diskbtree import DiskBPlusTree
from repro.storage.memtree import BPlusTree
from repro.storage.records import decode_key, encode_key

Pair = tuple[int, int]


class _MemoryBackend:
    """Tuple-key B+tree backend."""

    name = "memory"

    def __init__(self, order: int = 64):
        self._tree = BPlusTree(order=order)

    def bulk_load(self, entries: Iterator[tuple[int, int, int]]) -> None:
        self._tree = BPlusTree.bulk_load(
            ((key, None) for key in entries), order=self._tree.order
        )

    def bulk_load_runs(self, runs: Iterator[list[tuple[int, int, int]]]) -> None:
        """Load pre-sorted per-path key runs by leaf slicing (fast path)."""
        self._tree = BPlusTree.bulk_load_runs(runs, order=self._tree.order)

    def prefix(self, prefix: tuple[int, ...]) -> Iterator[tuple[int, int, int]]:
        for key, _ in self._tree.prefix_scan(prefix):
            yield key

    def scan_columns(self, path_id: int) -> tuple[array, array]:
        """One path's relation as (src, tgt)-sorted int64 columns."""
        return self._tree.prefix_scan_columns((path_id,))

    def insert(self, key: tuple[int, int, int]) -> bool:
        """Point-insert one entry; False if it was already present."""
        return self._tree.insert(key)

    def delete(self, key: tuple[int, int, int]) -> bool:
        """Point-delete one entry; False if it was absent."""
        return self._tree.delete(key)

    def contains(self, key: tuple[int, int, int]) -> bool:
        return key in self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def close(self) -> None:
        """Nothing to release for the in-memory backend."""


class _DiskBackend:
    """Page-based disk B+tree backend with memcomparable keys."""

    name = "disk"

    def __init__(
        self, path: str | FilePath, page_size: int = 4096, cache_pages: int = 256
    ):
        self._path = FilePath(path)
        self._page_size = page_size
        self._cache_pages = cache_pages
        self._tree = DiskBPlusTree(path, page_size=page_size, cache_pages=cache_pages)

    def bulk_load(self, entries: Iterator[tuple[int, int, int]]) -> None:
        """Crash-safe load: build a sibling file, atomically swap it in.

        The tree is written to ``<path>.build`` and renamed over the
        real path only after a successful flush, so a crash mid-build
        leaves whatever was at the path before (for a fresh build, a
        valid empty tree) instead of a torn file that fails every
        subsequent open.  Same contract the plan-artifact store already
        had; the index was the remaining gap.
        """
        temp_path = self._path.with_name(self._path.name + ".build")
        temp_path.unlink(missing_ok=True)
        temp = DiskBPlusTree(
            temp_path, page_size=self._page_size, cache_pages=self._cache_pages
        )
        try:
            temp.bulk_load((encode_key(key), b"") for key in entries)
            temp.flush()
        except BaseException:
            temp.close()
            temp_path.unlink(missing_ok=True)
            raise
        temp.close()
        self._tree.close()
        temp_path.replace(self._path)
        self._tree = DiskBPlusTree(
            self._path, page_size=self._page_size, cache_pages=self._cache_pages
        )

    def bulk_load_runs(self, runs: Iterator[list[tuple[int, int, int]]]) -> None:
        """No columnar fast path on disk: flatten the runs."""
        self.bulk_load(key for run in runs for key in run)

    def prefix(self, prefix: tuple[int, ...]) -> Iterator[tuple[int, int, int]]:
        encoded = encode_key(prefix)
        for key, _ in self._tree.prefix_scan(encoded):
            yield decode_key(key)  # type: ignore[misc]

    def scan_columns(self, path_id: int) -> tuple[array, array]:
        """One path's relation as (src, tgt)-sorted int64 columns.

        No tuple-free fast path exists here — ``decode_key`` builds the
        key tuple either way — so this just reshapes :meth:`prefix`.
        """
        sources = array("q")
        targets = array("q")
        for _, source, target in self.prefix((path_id,)):
            sources.append(source)
            targets.append(target)
        return sources, targets

    def contains(self, key: tuple[int, int, int]) -> bool:
        return encode_key(key) in self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def close(self) -> None:
        self._tree.close()


class PathIndex:
    """The paper's ``I_{G,k}`` over a fixed graph.

    Build with :meth:`PathIndex.build`; query with :meth:`scan`,
    :meth:`scan_from` and :meth:`contains`.  Exact per-path counts are
    kept in the catalog (:meth:`count`) — the equi-depth histogram
    compresses them for the optimizer.
    """

    def __init__(self, graph: Graph, k: int, backend) -> None:
        self.graph = graph
        self.k = k
        self._backend = backend
        self._path_ids: dict[str, int] = {}
        self._counts: dict[str, int] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int,
        backend: str = "memory",
        prune_empty: bool = True,
        order: int = 64,
        path: str | FilePath | None = None,
        page_size: int = 4096,
        cache_pages: int = 256,
    ) -> "PathIndex":
        """Materialize ``I_{G,k}`` over ``graph``.

        Parameters
        ----------
        backend:
            ``"memory"`` (in-memory B+tree) or ``"disk"`` (page-based
            B+tree at ``path``).
        prune_empty:
            Skip descendants of empty paths (their relations are
            provably empty); the empty paths themselves are still
            recorded with count 0.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        store = cls._make_backend(
            backend,
            order=order,
            path=path,
            page_size=page_size,
            cache_pages=cache_pages,
        )
        index = cls(graph, k, store)

        def entries() -> Iterator[tuple[int, int, int]]:
            for label_path, pairs in path_relations(
                graph, k, prune_empty=prune_empty
            ):
                encoded = label_path.encode()
                path_id = len(index._path_ids)
                index._path_ids[encoded] = path_id
                index._counts[encoded] = len(pairs)
                for source, target in pairs:
                    yield path_id, source, target

        try:
            store.bulk_load(entries())
        except BaseException:
            # Do not leak the backend (the disk flavor holds an open
            # file handle) when the build dies partway.
            store.close()
            raise
        return index

    @classmethod
    def from_relations(
        cls,
        graph: Graph,
        k: int,
        relations: Iterable[tuple[LabelPath, "Relation | list[Pair]"]],
        backend: str = "memory",
        order: int = 64,
        path: str | FilePath | None = None,
        page_size: int = 4096,
        cache_pages: int = 256,
    ) -> "PathIndex":
        """Materialize an index from precomputed ``(path, relation)`` pairs.

        ``relations`` must arrive in trie (DFS) order with each relation
        ``(src, tgt)``-sorted and duplicate-free — exactly what
        :func:`repro.indexes.builder.path_relations_columnar` yields and
        what :class:`repro.sharding.ShardedGraph` workers hand back.
        Each path becomes one key run loaded through the backend's
        ``bulk_load_runs`` fast path (leaf slicing on the memory B+tree,
        one posting list per run on the compressed backend), with key
        tuples materialized by C-speed ``zip``.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        store = cls._make_backend(
            backend,
            order=order,
            path=path,
            page_size=page_size,
            cache_pages=cache_pages,
        )
        index = cls(graph, k, store)

        def runs() -> Iterator[list[tuple[int, int, int]]]:
            for label_path, relation in relations:
                encoded = label_path.encode()
                path_id = len(index._path_ids)
                index._path_ids[encoded] = path_id
                index._counts[encoded] = len(relation)
                if len(relation):
                    if isinstance(relation, Relation):
                        columns = (relation.src, relation.tgt)
                    else:
                        columns = zip(*relation)
                    yield list(zip(repeat(path_id), *columns))

        try:
            store.bulk_load_runs(runs())
        except BaseException:
            store.close()
            raise
        return index

    @staticmethod
    def _make_backend(
        backend: str,
        order: int,
        path: str | FilePath | None,
        page_size: int,
        cache_pages: int,
    ):
        if backend == "memory":
            return _MemoryBackend(order=order)
        if backend == "disk":
            if path is None:
                raise ValidationError("the disk backend requires a file path")
            return _DiskBackend(path, page_size=page_size, cache_pages=cache_pages)
        if backend == "compressed":
            from repro.indexes.compressed import CompressedBackend

            return CompressedBackend()
        raise ValidationError(f"unknown backend {backend!r}")

    # -- lookups ------------------------------------------------------------------

    def scan(self, path: LabelPath) -> Relation:
        """``I_{G,k}(p)``: the relation of ``p`` as a columnar ``Relation``.

        Sorted by (src, tgt) — the B+tree's key order — so the returned
        relation carries ``Order.BY_SRC`` and merge joins can consume it
        without re-sorting.
        """
        path_id = self._path_id(path)
        if path_id is None:
            return Relation.empty(Order.BY_SRC)
        sources, targets = self._backend.scan_columns(path_id)
        return Relation(sources, targets, Order.BY_SRC)

    def scan_swapped(self, path: LabelPath) -> Relation:
        """The relation of ``p`` sorted by (tgt, src), as ``Order.BY_TGT``.

        Implemented exactly as the paper does: scan the index on the
        *inverse* path (which is itself indexed, because inverse steps
        are alphabet symbols) and exchange the columns — a zero-copy
        swap in the columnar representation.
        """
        return swap(self.scan(path.inverted()))

    def scan_from(self, path: LabelPath, source: int) -> list[int]:
        """``I_{G,k}(p, a)``: sorted targets reachable from ``source``."""
        path_id = self._path_id(path)
        if path_id is None:
            return []
        return [tgt for _, _, tgt in self._backend.prefix((path_id, source))]

    def contains(self, path: LabelPath, source: int, target: int) -> bool:
        """``I_{G,k}(p, a, b)``: is the pair in ``p(G)``?"""
        path_id = self._path_id(path)
        if path_id is None:
            return False
        return self._backend.contains((path_id, source, target))

    def count(self, path: LabelPath) -> int:
        """Exact ``|p(G)|`` from the catalog (0 for pruned/empty paths)."""
        self._check_length(path)
        return self._counts.get(path.encode(), 0)

    # -- point patching (the sharded write path) ----------------------------

    @property
    def supports_patch(self) -> bool:
        """Whether the backend takes point edits (memory B+tree only)."""
        return hasattr(self._backend, "insert")

    def patch(
        self,
        path: LabelPath,
        adds: Iterable[Pair],
        removes: Iterable[Pair],
    ) -> tuple[int, int]:
        """Point-edit one path's relation in place; returns the counts
        of entries actually ``(inserted, removed)``.

        Both edit lists are idempotent: inserting a present pair or
        removing an absent one is a no-op, so a recheck-driven caller
        (:func:`repro.write.delta.resolve_patch`) can assert final
        state without probing first.  A path the catalog pruned as
        empty gains an id on its first insert — ids are dense and
        append-only, and every lookup is a per-path prefix scan, so
        cross-path id order never matters.  Exact per-path counts stay
        exact (they are the statistics layer's ground truth).
        """
        if not self.supports_patch:
            raise PathIndexError(
                f"backend {self.backend_name!r} cannot patch in place; "
                "rebuild instead"
            )
        self._check_length(path)
        encoded = path.encode()
        path_id = self._path_ids.get(encoded)
        inserted = removed = 0
        if path_id is not None:
            for source, target in removes:
                if self._backend.delete((path_id, source, target)):
                    removed += 1
        for source, target in adds:
            if path_id is None:
                path_id = len(self._path_ids)
                self._path_ids[encoded] = path_id
                self._counts[encoded] = 0
            if self._backend.insert((path_id, source, target)):
                inserted += 1
        if inserted or removed:
            self._counts[encoded] = (
                self._counts.get(encoded, 0) + inserted - removed
            )
        return inserted, removed

    # -- inspection ------------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def entry_count(self) -> int:
        """Total number of ``(p, a, b)`` entries in the index."""
        return len(self._backend)

    @property
    def path_count(self) -> int:
        """Number of label paths recorded in the catalog."""
        return len(self._path_ids)

    def paths(self) -> Iterator[LabelPath]:
        """All cataloged label paths, in build order."""
        for encoded in self._path_ids:
            yield LabelPath.decode(encoded)

    def counts_by_path(self) -> dict[str, int]:
        """Encoded path -> exact count (the statistics layer's input)."""
        return dict(self._counts)

    def close(self) -> None:
        """Release backend resources (a no-op for the memory backend)."""
        self._backend.close()

    def __enter__(self) -> "PathIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalog persistence (disk backend) --------------------------------------------

    def save_catalog(self, path: str | FilePath) -> None:
        """Persist the path-id catalog and counts next to a disk index.

        Written via temp file + atomic rename: a crash mid-write must
        not leave a torn catalog that poisons every future open of an
        otherwise healthy index file.
        """
        payload = {
            "k": self.k,
            "path_ids": self._path_ids,
            "counts": self._counts,
        }
        target = FilePath(path)
        temp = target.with_name(target.name + ".tmp")
        temp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        temp.replace(target)

    @classmethod
    def open_disk(
        cls,
        graph: Graph,
        index_path: str | FilePath,
        catalog_path: str | FilePath,
        page_size: int = 4096,
        cache_pages: int = 256,
    ) -> "PathIndex":
        """Re-open a previously built disk index and its catalog."""
        payload = json.loads(FilePath(catalog_path).read_text(encoding="utf-8"))
        store = _DiskBackend(index_path, page_size=page_size, cache_pages=cache_pages)
        index = cls(graph, int(payload["k"]), store)
        index._path_ids = {
            key: int(value) for key, value in payload["path_ids"].items()
        }
        index._counts = {key: int(value) for key, value in payload["counts"].items()}
        return index

    # -- internals ---------------------------------------------------------------------

    def _path_id(self, path: LabelPath) -> int | None:
        self._check_length(path)
        return self._path_ids.get(path.encode())

    def _check_length(self, path: LabelPath) -> None:
        if len(path) > self.k:
            raise PathIndexError(f"path {path} has length {len(path)} > k={self.k}")

    def __repr__(self) -> str:
        return (
            f"PathIndex(k={self.k}, backend={self.backend_name!r}, "
            f"paths={self.path_count}, entries={self.entry_count})"
        )
