"""Selectivity statistics interfaces (Section 3.2).

The planner asks one question: *how many pairs does label path ``p``
have?*  Two implementations answer it:

* :class:`ExactStatistics` — the true catalog counts (an ablation
  upper bound on what any synopsis can achieve);
* :class:`~repro.indexes.histogram.EquiDepthHistogram` — the paper's
  lightweight equi-depth histogram.

Both expose ``estimated_count`` (absolute cardinality estimate) and
``selectivity`` (the paper's ``sel_{G,k}``: the fraction of
``paths_k(G)`` satisfying ``p``).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.pathindex import PathIndex


class Statistics(Protocol):
    """What the cost model needs from a statistics provider."""

    k: int
    total_paths_k: int

    def estimated_count(self, path: LabelPath) -> float:
        """Estimated ``|p(G)|`` for a path of length <= k."""
        ...

    def selectivity(self, path: LabelPath) -> float:
        """Estimated ``sel_{G,k}(p) = |p(G)| / |paths_k(G)|``."""
        ...


class ExactStatistics:
    """Exact per-path counts taken from the index catalog."""

    def __init__(self, counts: dict[str, int], k: int, total_paths_k: int):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if total_paths_k < 1:
            raise ValidationError("total_paths_k must be positive")
        self._counts = dict(counts)
        self.k = k
        self.total_paths_k = total_paths_k

    @classmethod
    def from_index(cls, index: PathIndex, graph: Graph | None = None) -> "ExactStatistics":
        """Build from a :class:`PathIndex` (computes ``|paths_k(G)|``)."""
        graph = graph if graph is not None else index.graph
        return cls(
            counts=index.counts_by_path(),
            k=index.k,
            total_paths_k=count_paths_k(graph, index.k),
        )

    def estimated_count(self, path: LabelPath) -> float:
        self._check(path)
        return float(self._counts.get(path.encode(), 0))

    def selectivity(self, path: LabelPath) -> float:
        return self.estimated_count(path) / self.total_paths_k

    def _check(self, path: LabelPath) -> None:
        if len(path) > self.k:
            raise ValidationError(
                f"path {path} longer than statistics horizon k={self.k}"
            )

    def __repr__(self) -> str:
        return (
            f"ExactStatistics(k={self.k}, paths={len(self._counts)}, "
            f"total_paths_k={self.total_paths_k})"
        )


class UniformStatistics:
    """A deliberately information-free estimator (ablation baseline).

    Every path of the same length gets the same estimate, derived only
    from the average edge count — roughly what a planner knows with no
    statistics at all.
    """

    def __init__(self, graph: Graph, k: int):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = k
        self.total_paths_k = max(count_paths_k(graph, k), 1)
        labels = graph.labels()
        edges = sum(graph.label_edge_count(label) for label in labels)
        self._avg_step_count = edges / max(len(labels), 1)
        self._nodes = max(graph.node_count, 1)

    def estimated_count(self, path: LabelPath) -> float:
        if len(path) > self.k:
            raise ValidationError(
                f"path {path} longer than statistics horizon k={self.k}"
            )
        estimate = self._avg_step_count
        for _ in range(len(path) - 1):
            estimate = estimate * self._avg_step_count / self._nodes
        return estimate

    def selectivity(self, path: LabelPath) -> float:
        return self.estimated_count(path) / self.total_paths_k
