"""Selectivity statistics interfaces (Section 3.2).

The planner asks one question: *how many pairs does label path ``p``
have?*  Two implementations answer it:

* :class:`ExactStatistics` — the true catalog counts (an ablation
  upper bound on what any synopsis can achieve);
* :class:`~repro.indexes.histogram.EquiDepthHistogram` — the paper's
  lightweight equi-depth histogram.

Both expose ``estimated_count`` (absolute cardinality estimate) and
``selectivity`` (the paper's ``sel_{G,k}``: the fraction of
``paths_k(G)`` satisfying ``p``).

:class:`ShardStatistics` lifts the pair to one shard of a
:class:`~repro.sharding.ShardedGraph`: the exact counts and the
histogram of *that shard's slice* of every path relation, which is
what skew-aware scatter planning consumes — the exact counts prove a
shard's slice empty (shard pruning), the histogram re-costs join
orders against the shard's own distribution (per-shard re-planning).
Summing the per-shard exact counts over all shards reproduces the
global catalog exactly (the partition rule makes slices disjoint), so
the merged view agrees with :meth:`ExactStatistics.from_index` — the
property the hypothesis suite pins.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ValidationError
from repro.graph.graph import Graph, LabelPath
from repro.graph.stats import count_paths_k
from repro.indexes.histogram import EquiDepthHistogram
from repro.indexes.pathindex import PathIndex


class Statistics(Protocol):
    """What the cost model needs from a statistics provider."""

    k: int
    total_paths_k: int

    def estimated_count(self, path: LabelPath) -> float:
        """Estimated ``|p(G)|`` for a path of length <= k."""
        ...

    def selectivity(self, path: LabelPath) -> float:
        """Estimated ``sel_{G,k}(p) = |p(G)| / |paths_k(G)|``."""
        ...


class ExactStatistics:
    """Exact per-path counts taken from the index catalog."""

    def __init__(self, counts: dict[str, int], k: int, total_paths_k: int):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if total_paths_k < 1:
            raise ValidationError("total_paths_k must be positive")
        self._counts = dict(counts)
        self.k = k
        self.total_paths_k = total_paths_k

    @classmethod
    def from_index(
        cls, index: PathIndex, graph: Graph | None = None
    ) -> "ExactStatistics":
        """Build from a :class:`PathIndex` (computes ``|paths_k(G)|``)."""
        graph = graph if graph is not None else index.graph
        return cls(
            counts=index.counts_by_path(),
            k=index.k,
            total_paths_k=count_paths_k(graph, index.k),
        )

    @property
    def counts(self) -> dict[str, int]:
        """Per-path counts keyed by encoded label path (defensive copy).

        The full catalog view backs content fingerprints (the persisted
        plan-artifact cache keys its validity on exactly these counts).
        """
        return dict(self._counts)

    def estimated_count(self, path: LabelPath) -> float:
        self._check(path)
        return float(self._counts.get(path.encode(), 0))

    def selectivity(self, path: LabelPath) -> float:
        return self.estimated_count(path) / self.total_paths_k

    def _check(self, path: LabelPath) -> None:
        if len(path) > self.k:
            raise ValidationError(
                f"path {path} longer than statistics horizon k={self.k}"
            )

    def __repr__(self) -> str:
        return (
            f"ExactStatistics(k={self.k}, paths={len(self._counts)}, "
            f"total_paths_k={self.total_paths_k})"
        )


class ShardStatistics:
    """One shard's statistics slice: exact counts plus a histogram.

    ``counts`` is the shard index's own catalog (each path's count is
    the number of pairs whose start vertex the shard owns), so the
    exact side is the ground truth of the shard's slice — a count of
    zero *proves* the slice empty, which is what makes shard pruning
    safe.  The histogram compresses the same counts the paper's way
    and is what per-shard re-planning costs join orders against.

    ``total_paths_k`` is the **global** denominator: selectivities
    from different shards (and from the global provider) must divide
    by the same ``|paths_k(G)|`` to be comparable, so the per-shard
    view deliberately does not recompute a shard-local one.

    The class satisfies the :class:`Statistics` protocol with the
    histogram flavor; callers that need the catalog truth use
    :meth:`exact_count`, and :meth:`provider` picks the side matching
    whatever flavor the global planner runs with.
    """

    __slots__ = ("shard", "exact", "histogram", "k", "total_paths_k")

    def __init__(
        self,
        shard: int,
        counts: dict[str, int],
        k: int,
        total_paths_k: int,
        buckets: int = 64,
    ):
        self.shard = shard
        self.exact = ExactStatistics(counts, k, total_paths_k)
        self.histogram = EquiDepthHistogram.from_counts(
            counts, k=k, total_paths_k=total_paths_k, buckets=buckets
        )
        self.k = k
        # Already validated > 0 by the ExactStatistics constructor above.
        self.total_paths_k = total_paths_k

    def estimated_count(self, path: LabelPath) -> float:
        return self.histogram.estimated_count(path)

    def selectivity(self, path: LabelPath) -> float:
        return self.histogram.selectivity(path)

    def exact_count(self, path: LabelPath) -> int:
        """The shard slice's true ``|p(G) restricted to owned starts|``."""
        return int(self.exact.estimated_count(path))

    def provider(self, like: object):
        """The per-shard provider matching a global provider's flavor.

        A planner costing against the global histogram should re-plan
        against the shard histogram; one running the exact-statistics
        ablation should see the shard's exact counts.  Anything else
        (e.g. the information-free baseline) gets the exact side —
        per-shard statistics exist precisely to be informative.
        """
        if isinstance(like, EquiDepthHistogram):
            return self.histogram
        return self.exact

    def __repr__(self) -> str:
        return (
            f"ShardStatistics(shard={self.shard}, k={self.k}, "
            f"paths={len(self.exact._counts)}, "
            f"total_paths_k={self.total_paths_k})"
        )


def merge_shard_counts(per_shard: list[dict[str, int]]) -> dict[str, int]:
    """Sum per-shard catalogs into the global catalog.

    This is the statistics *merge* a distributed deployment would run
    over the wire: per-shard ``{encoded path: count}`` dictionaries are
    the complete wire format, and addition is the whole merge (slices
    are disjoint by the partition rule).  Used by
    :meth:`repro.sharding.ShardedGraph.counts_by_path` and pinned
    against the unsharded catalog by the statistics test suite.
    """
    merged: dict[str, int] = {}
    for counts in per_shard:
        for encoded, count in counts.items():
            merged[encoded] = merged.get(encoded, 0) + count
    return merged


class UniformStatistics:
    """A deliberately information-free estimator (ablation baseline).

    Every path of the same length gets the same estimate, derived only
    from the average edge count — roughly what a planner knows with no
    statistics at all.
    """

    def __init__(self, graph: Graph, k: int):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = k
        self.total_paths_k = max(count_paths_k(graph, k), 1)
        labels = graph.labels()
        edges = sum(graph.label_edge_count(label) for label in labels)
        self._avg_step_count = edges / max(len(labels), 1)
        self._nodes = max(graph.node_count, 1)

    def estimated_count(self, path: LabelPath) -> float:
        if len(path) > self.k:
            raise ValidationError(
                f"path {path} longer than statistics horizon k={self.k}"
            )
        estimate = self._avg_step_count
        for _ in range(len(path) - 1):
            estimate = estimate * self._avg_step_count / self._nodes
        return estimate

    def selectivity(self, path: LabelPath) -> float:
        return self.estimated_count(path) / self.total_paths_k
