"""The RPC coordinator: the in-process engine over out-of-process shards.

Two classes:

* :class:`WorkerStub` — the client half of one worker's socket.  It
  implements the read interface of a
  :class:`~repro.indexes.pathindex.PathIndex` (``scan`` /
  ``scan_from`` / ``contains`` / ``count`` / ``counts_by_path`` /
  ``entry_count``), so a list of stubs can stand wherever a list of
  in-process shard indexes does.

* :class:`RpcShardedGraph` — a :class:`~repro.sharding.ShardedGraph`
  whose shards *are* stubs.  Everything layered on the sharded engine
  — ``operators.execute_scattered``, :class:`ScatterPolicy` pruning,
  the partitioned-closure gather, prepared plans, per-shard statistics
  — runs unmodified: the facade contract is the whole point of the
  PR-4 design, and this module is where it pays off.

Failure semantics reuse PR 7 verbatim.  Transport failures raise
:class:`~repro.errors.TransientWireError`, which ``retry_call``
retries with deadline-clipped backoff (reconnecting each time); what
survives the retries surfaces through the unchanged
``operators._guarded_slice`` contract as a typed
:class:`~repro.errors.ShardUnavailableError` in strict mode or a
dropped (counted) slice under ``degraded=True``.  Deadlines propagate
as a ``deadline_ms`` remaining-budget header on every request.

:class:`CoordinatorDatabase` is a drop-in
:class:`~repro.api.GraphDatabase` whose index is an
:class:`RpcShardedGraph`; it inherits the whole ``apply()`` write path
(group commit, mutation log, delta staging) and overrides only how a
committed group reaches the index — one ``apply`` broadcast per group,
carrying each worker's pre-computed patch slice or rebuild flag,
instead of patching in-process.
:meth:`CoordinatorDatabase.ensure_workers` is the supervision hook the
serve front door calls to restart crashed workers; a restarted worker
forks from the fleet's *base* graph snapshot and catches up by
replaying the coordinator's in-memory journal — the mutation stream —
rather than re-receiving the full current graph
(:attr:`RpcShardedGraph.full_graph_transfers` stays 0, the chaos tests
assert it).
"""

from __future__ import annotations

import copy
import socket
import threading

from repro.api import GraphDatabase, ServiceConfig
from repro.errors import (
    QueryTimeoutError,
    ReproError,
    TransientError,
    TransientWireError,
    ValidationError,
)
from repro.faults import fire, retry_call
from repro.graph.graph import Graph, LabelPath
from repro.relation import Order, Relation, dedup_sort
from repro.serve import protocol
from repro.serve.worker import WorkerHandle, launch_worker, launch_workers
from repro.sharding import ShardedGraph
from repro.write.delta import resolve_patch

#: Socket timeout for a single RPC when no query deadline is in force.
#: Generous — a worker answering slowly is not a worker that is gone —
#: but finite, so a hung worker becomes a retryable failure instead of
#: a hung coordinator.
DEFAULT_RPC_TIMEOUT = 30.0


class WorkerStub:
    """One worker's socket, presented as a PathIndex read facade.

    One persistent connection, guarded by a lock (scatter threads share
    the stub); dropped and lazily re-established on any transport
    failure, so a retry after a worker restart transparently reconnects
    to the replacement process.
    """

    def __init__(
        self, handle: WorkerHandle, rpc_timeout: float = DEFAULT_RPC_TIMEOUT
    ) -> None:
        self.handle = handle
        self._rpc_timeout = rpc_timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    # -- transport --------------------------------------------------------

    def _call(self, op: str, deadline=None, **params) -> tuple[dict, bytes]:
        """One request/response exchange with the worker.

        The deadline's *remaining* budget rides in the header (the
        worker refuses spent budgets) and clips the socket timeout (a
        reply that cannot arrive in time is abandoned, not awaited).
        Both fault-injection points fire here: ``rpc.send`` before the
        request hits the wire, ``rpc.recv`` over the reply payload —
        the latter is a ``corrupt`` point, so chaos plans can scramble
        reply bytes and assert the codec catches them.
        """
        header = {"op": op, **params}
        timeout = self._rpc_timeout
        if deadline is not None:
            remaining = deadline.remaining()
            header["deadline_ms"] = remaining * 1000.0
            timeout = min(timeout, max(remaining, 0.001))
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        ("127.0.0.1", self.handle.port),
                        timeout=self._rpc_timeout,
                    )
                self._sock.settimeout(timeout)
                fire("rpc.send", shard=self.handle.shard, op=op)
                protocol.send_frame(self._sock, header)
                reply, payload = protocol.recv_frame(self._sock)
            except (OSError, TransientWireError) as error:
                # Connection state is unknown after any transport
                # failure: drop it so the retry reconnects cleanly
                # (possibly to a restarted worker on a new port via a
                # refreshed handle).
                self._drop()
                raise TransientWireError(
                    f"worker {self.handle.shard} rpc {op!r} failed: {error}"
                ) from error
        payload = fire(
            "rpc.recv", payload, shard=self.handle.shard, op=op
        )
        if not reply.get("ok"):
            protocol.raise_remote(reply.get("error", {}))
        return reply, payload

    def _drop(self) -> None:
        """Discard the connection (caller holds the lock)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def rebind(self, handle: WorkerHandle) -> None:
        """Point the stub at a replacement worker process."""
        with self._lock:
            self.handle = handle
            self._drop()

    # -- PathIndex read facade --------------------------------------------

    def scan(self, path: LabelPath, deadline=None) -> Relation:
        _, payload = self._call("scan", deadline=deadline, path=path.encode())
        return protocol.decode_relation(payload)

    def scan_from(self, path: LabelPath, source: int) -> list[int]:
        reply, _ = self._call("scan_from", path=path.encode(), source=source)
        return list(reply["targets"])

    def contains(self, path: LabelPath, source: int, target: int) -> bool:
        reply, _ = self._call(
            "contains", path=path.encode(), source=source, target=target
        )
        return bool(reply["value"])

    def count(self, path: LabelPath) -> int:
        reply, _ = self._call("count", path=path.encode())
        return int(reply["value"])

    def counts_by_path(self) -> dict[str, int]:
        reply, _ = self._call("counts")
        return dict(reply["counts"])

    @property
    def entry_count(self) -> int:
        reply, _ = self._call("entry_count")
        return int(reply["value"])

    #: Workers are memory-backed; their shard B+trees take point edits,
    #: so the coordinator's delta-patching path stays open over RPC.
    supports_patch = True

    def apply_group(
        self,
        seq: int,
        mutations: list[dict],
        patch: dict | None = None,
        rebuild: bool = False,
    ) -> int:
        """Ship one commit group: mutations + this shard's index move."""
        reply, _ = self._call(
            "apply", seq=seq, mutations=mutations, patch=patch, rebuild=rebuild
        )
        return int(reply["version"])

    def replay(self, seq: int, mutations: list[dict]) -> int:
        """Catch a restarted worker up from the journal suffix."""
        reply, _ = self._call("replay", seq=seq, mutations=mutations)
        return int(reply["version"])

    def ping(self) -> bool:
        reply, _ = self._call("ping")
        return bool(reply.get("ok"))

    def close(self) -> None:
        """Best-effort clean shutdown of the worker, then of the socket."""
        try:
            self._call("shutdown")
        except ReproError:
            # A worker already gone cannot be shut down any harder;
            # _call has already normalized every transport failure into
            # the typed taxonomy, so this swallow is deliberate and
            # narrow — close() must succeed on a dead fleet.
            pass
        with self._lock:
            self._drop()


class RpcShardedGraph(ShardedGraph):
    """A :class:`ShardedGraph` whose shard "indexes" are RPC stubs.

    Constructed over already-launched workers; :meth:`launch` forks
    them.  The base class provides the whole facade (global scans,
    routed lookups, merged statistics, scatter topology) by calling the
    stubs' PathIndex interface; only the per-shard scatter calls are
    overridden, to forward the deadline and to keep the ``shard.scan``
    injection point firing coordinator-side exactly as it does
    in-process.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        handles: list[WorkerHandle],
        prune_empty: bool = True,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        shard_seed: int = 0,
    ) -> None:
        stubs = [WorkerStub(handle, rpc_timeout) for handle in handles]
        super().__init__(
            graph,
            k,
            shards=stubs,
            backend="rpc",
            index_path=None,
            build_workers=1,
            prune_empty=prune_empty,
            shard_seed=shard_seed,
        )
        self.handles = list(handles)
        # The restart checkpoint: a frozen snapshot of the graph every
        # worker was forked from.  A replacement worker launches from
        # this plus a journal replay — never from the live (mutated)
        # graph, which would be a full-graph transfer per restart.
        self.base_graph = copy.deepcopy(graph)
        #: In-memory mirror of the mutation stream since launch:
        #: ``(seq, flattened mutation wire list)`` per commit group.
        self.journal: list[tuple[int, list[dict]]] = []
        self.journal_seq = 0
        #: Mutations shipped to restarted workers via journal replay.
        self.replayed_mutations = 0
        #: Restarts that had to re-ship the full current graph (the
        #: pre-journal behavior).  The replay path keeps this at 0.
        self.full_graph_transfers = 0

    @classmethod
    def launch(
        cls,
        graph: Graph,
        k: int,
        shards: int,
        prune_empty: bool = True,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        shard_seed: int = 0,
    ) -> "RpcShardedGraph":
        """Fork ``shards`` workers (parallel build) and wrap them."""
        handles = launch_workers(
            graph, k, shards, prune_empty=prune_empty, shard_seed=shard_seed
        )
        return cls(
            graph,
            k,
            handles,
            prune_empty=prune_empty,
            rpc_timeout=rpc_timeout,
            shard_seed=shard_seed,
        )

    # -- scatter calls (deadline-forwarding overrides) --------------------

    def shard_scan(self, shard: int, path: LabelPath, deadline=None) -> Relation:
        """One worker's slice of ``p(G)`` over RPC.

        Same contract as the in-process version: retried at scan
        granularity, ``shard.scan`` fired per attempt (chaos plans see
        no difference between engines), deadline clipping the backoff
        *and* riding to the worker in the request header.
        """

        def attempt() -> Relation:
            fire("shard.scan", shard=shard, path=path.encode())
            return self._shards[shard].scan(path, deadline=deadline)

        return retry_call(attempt, deadline=deadline)

    def shard_scan_swapped(
        self, shard: int, path: LabelPath, deadline=None
    ) -> Relation:
        """One worker's slice re-sorted BY_TGT (sort is coordinator-side:
        the worker ships the canonical BY_SRC slice either way)."""

        def attempt() -> Relation:
            fire("shard.scan", shard=shard, path=path.encode())
            return dedup_sort(
                self._shards[shard].scan(path, deadline=deadline), Order.BY_TGT
            )

        return retry_call(attempt, deadline=deadline)

    # -- lifecycle --------------------------------------------------------

    def rebuild_shards(self, shard_ids, workers=None) -> None:
        """In-process partial rebuild does not apply over RPC."""
        raise ValidationError(
            "RpcShardedGraph shards rebuild in their worker processes; "
            "use apply_commit_group()"
        )

    def patch_shards(self, changes: dict[int, dict]) -> None:
        """In-process patching does not apply over RPC either."""
        raise ValidationError(
            "RpcShardedGraph shards patch in their worker processes; "
            "use apply_commit_group()"
        )

    def apply_commit_group(
        self,
        mutations: list[dict],
        patch: dict[int, dict] | None,
        touched: set[int],
    ) -> None:
        """Broadcast one commit group to every worker, then journal it.

        Every worker applies every mutation to its graph copy
        (relations compose against the full graph, so all copies must
        move in lockstep); each worker's *index* move is pre-computed
        coordinator-side — ``patch`` maps shard -> that shard's point
        edits (delta path), ``patch=None`` means the workers in
        ``touched`` rebuild their ball instead.  Any worker failing
        mid-broadcast propagates — the caller discards the whole index
        and relaunches, because half-mutated workers are unusable.  The
        journaled group is what restarted workers replay.
        """
        seq = self.journal_seq + 1
        for shard, stub in enumerate(self._shards):
            if patch is not None:
                stub.apply_group(seq, mutations, patch=patch.get(shard, {}))
            else:
                stub.apply_group(seq, mutations, rebuild=shard in touched)
        self.journal_seq = seq
        self.journal.append((seq, mutations))
        self.invalidate_statistics()

    def worker_alive(self, shard: int) -> bool:
        return self.handles[shard].alive()

    def restart_worker(self, shard: int) -> None:
        """Fork a replacement for a dead worker and catch it up by replay.

        The replacement builds from the fleet's *base* graph snapshot,
        then one ``replay`` request ships the journal — the mutation
        stream since launch — and rebuilds its shard once at the end.
        Its contents end up exactly what the dead worker's should have
        been (the journal is the same ordered stream every live worker
        applied), so no statistics cache needs invalidating, and the
        current graph never crosses the process boundary.
        """
        replacement = launch_worker(
            self.base_graph,
            self.k,
            shard,
            len(self._shards),
            self._prune_empty,
            shard_seed=self.shard_seed,
        )
        old = self.handles[shard]
        self.handles[shard] = replacement
        self._shards[shard].rebind(replacement)
        old.stop()
        if self.journal:
            mutations = [
                wire for _seq, group in self.journal for wire in group
            ]
            self._shards[shard].replay(self.journal_seq, mutations)
            self.replayed_mutations += len(mutations)

    def close(self) -> None:
        for stub in self._shards:
            stub.close()
        for handle in self.handles:
            handle.stop()


class CoordinatorDatabase(GraphDatabase):
    """A :class:`GraphDatabase` served by shard worker processes.

    Construction forks one worker per shard (parallel index build) and
    installs an :class:`RpcShardedGraph` where the in-process engine
    would install a :class:`ShardedGraph`; everything else — queries,
    caching, prepared statements, statistics, locking — is inherited
    verbatim.  Only the memory backend is supported: workers rebuild
    from the coordinator's graph, durability lives elsewhere.
    """

    def __init__(
        self,
        graph: Graph,
        k: int | None = None,
        config: ServiceConfig | None = None,
    ):
        super().__init__(graph, k=k, config=config)

    def _build_index_locked(self):
        """Launch (or relaunch) the worker fleet; caller holds the lock.

        The same swap-on-success contract as the base class: nothing is
        installed until the fleet is up and statistics are derived, and
        a failure clears the triple so readers fail loudly.
        """
        if self._backend != "memory":
            raise ValidationError(
                f"CoordinatorDatabase workers are memory-backed; "
                f"got backend={self._backend!r}"
            )
        self.cache_clear()
        old_index = self._index
        old_knobs = (
            (old_index.scatter_pruning, old_index.replan_divergence)
            if isinstance(old_index, ShardedGraph)
            else None
        )
        try:
            index = RpcShardedGraph.launch(
                self.graph,
                self.k,
                shards=max(1, self._shards),
                shard_seed=self._shard_seed,
            )
            index.query_workers = self._shard_query_workers
            index.scatter_pruning = self.config.scatter_pruning
            index.replan_divergence = self.config.replan_divergence
            if old_knobs is not None:
                index.scatter_pruning, index.replan_divergence = old_knobs
            exact_statistics, histogram = self._refresh_sharded_statistics(index)
        except BaseException:
            self._index = None
            self._exact_statistics = None
            self._histogram = None
            raise
        self._index = index
        self._exact_statistics = exact_statistics
        self._histogram = histogram
        self._statistics_epoch += 1
        self._plan_store.open(self._plan_fingerprint())
        if old_index is not None:
            old_index.close()
        return index

    # -- mutations (broadcast instead of in-process patch/rebuild) --------
    #
    # ``apply()``, ``add_edge`` and ``remove_edge`` are inherited — the
    # unified write path (group commit, mutation log, delta staging)
    # runs coordinator-side against the coordinator's graph; only the
    # index-absorption step below differs.  This collapses what used to
    # be a duplicated mutate/rebuild sequence in both classes onto one
    # implementation.

    def _absorb_group_locked(self, index, staged, batches, patchable):
        """Broadcast one applied group to the worker fleet.

        The full-relaunch fallback mirrors the base class's full-rebuild
        fallback: a changed label vocabulary invalidates every worker's
        path enumeration, so the fleet is rebuilt from the current
        graph.  Otherwise one ``apply`` RPC per worker carries the
        group's mutations plus either that worker's pre-computed patch
        slice (delta path — the workers never run the delta algorithm)
        or its ball-rebuild flag.  A failing broadcast discards the
        index (half-mutated workers are unusable) under the same
        cleanup contract as the in-process paths.
        """
        if staged.fallback == "alphabet" or not isinstance(
            index, RpcShardedGraph
        ):
            self._build_index_locked()
            return "rebuild", ()
        patchable = patchable and staged.fallback is None
        changes = (
            resolve_patch(self.graph, index, staged.dirty) if patchable else None
        )
        mutations = [
            mutation.as_wire() for batch in batches for mutation in batch
        ]
        self.cache_clear()
        try:
            index.apply_commit_group(mutations, changes, set(staged.touched))
            exact_statistics, histogram = self._refresh_sharded_statistics(index)
        except BaseException:
            self._index = None
            self._exact_statistics = None
            self._histogram = None
            try:
                index.close()
            except (QueryTimeoutError, TransientError):
                raise
            except Exception:
                pass
            raise
        self._exact_statistics = exact_statistics
        self._histogram = histogram
        self._statistics_epoch += 1
        self._plan_store.open(self._plan_fingerprint())
        if changes is not None:
            return "patch", tuple(sorted(changes))
        return "rebuild", ()

    # -- supervision ------------------------------------------------------

    def ensure_workers(self) -> list[int]:
        """Restart any dead workers; returns the restarted shard list.

        Runs as a writer so the replacement forks from a quiescent
        graph (no query observes a half-replaced stub).  Called by the
        serve front door's supervision loop and usable directly — after
        a chaos test kills a worker, one call restores exact answers.
        """
        with self._lock.write_locked():
            index = self._index
            if not isinstance(index, RpcShardedGraph):
                return []
            dead = [
                shard
                for shard in range(index.shard_count)
                if not index.worker_alive(shard)
            ]
            for shard in dead:
                index.restart_worker(shard)
            return dead
