"""Shard worker processes: one process, one shard's :class:`PathIndex`.

A worker is forked from the coordinator with the graph and its shard
number, builds its shard's index exactly the way the in-process
:class:`~repro.sharding.ShardedGraph` would (same payload computation,
same ``shard.build`` injection point, same retry semantics), then
serves requests over a length-prefixed socket protocol
(:mod:`repro.serve.protocol`) until told to shut down.

Workers communicate *only* by message passing: the coordinator's graph
mutations arrive as ``apply`` requests — one per commit group, carrying
the group's mutations plus either this worker's pre-computed shard
patch slice or a rebuild flag — that the worker applies to its own
forked copy of the graph.  A restarted worker catches up with one
``replay`` request (the journal suffix past its acked sequence number)
instead of re-receiving the whole graph.

Failure behavior is deliberately blunt: a request the worker can
classify (an unknown path, an expired budget, a corrupt frame it
detects) is answered with a typed error reply; anything else kills the
connection or the process, and the coordinator's PR-7 retry /
``ShardUnavailableError`` machinery — unchanged — does the rest.
"""

from __future__ import annotations

import multiprocessing
import socket
from dataclasses import dataclass, field

from repro.errors import (
    QueryTimeoutError,
    ReproError,
    ShardUnavailableError,
    ValidationError,
    WireError,
)
from repro.graph.graph import Graph, LabelPath
from repro.indexes.pathindex import PathIndex
from repro.serve.protocol import (
    encode_error,
    encode_relation,
    recv_frame,
    remote_error,
    send_frame,
)
from repro.sharding import ShardedGraph

#: Seconds a freshly forked worker gets to build its shard and report
#: its port before the launcher declares it dead.
READY_TIMEOUT = 60.0


@dataclass
class WorkerHandle:
    """The coordinator's view of one worker process."""

    shard: int
    port: int
    process: multiprocessing.process.BaseProcess

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (the chaos tests' murder weapon)."""
        self.process.kill()

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate and reap the worker."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        raise ValidationError(
            "repro.serve requires the fork start method (POSIX only)"
        ) from None


def launch_workers(
    graph: Graph,
    k: int,
    shards: int,
    prune_empty: bool = True,
    ready_timeout: float = READY_TIMEOUT,
    shard_seed: int = 0,
) -> list[WorkerHandle]:
    """Fork one worker per shard; block until every one is serving.

    All processes are started before any readiness report is awaited,
    so the N shard builds run in parallel — the multi-process analogue
    of the in-process build pool.  Any worker failing to come up tears
    the rest down and raises (builds never degrade: an index missing a
    shard would silently under-answer every future query).
    """
    context = _fork_context()
    started: list[tuple[int, multiprocessing.process.BaseProcess, object]] = []
    handles: list[WorkerHandle] = []
    try:
        for shard in range(shards):
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main,
                args=(sender, graph, k, shard, shards, prune_empty, shard_seed),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            sender.close()
            started.append((shard, process, receiver))
        for shard, process, receiver in started:
            handles.append(
                _await_ready(shard, process, receiver, ready_timeout)
            )
    except BaseException:
        for _, process, _ in started:
            if process.is_alive():
                process.kill()
        raise
    return handles


def launch_worker(
    graph: Graph,
    k: int,
    shard: int,
    shard_count: int,
    prune_empty: bool = True,
    ready_timeout: float = READY_TIMEOUT,
    shard_seed: int = 0,
) -> WorkerHandle:
    """Fork a single replacement worker (the supervision restart path)."""
    context = _fork_context()
    receiver, sender = context.Pipe(duplex=False)
    process = context.Process(
        target=_worker_main,
        args=(sender, graph, k, shard, shard_count, prune_empty, shard_seed),
        daemon=True,
        name=f"repro-shard-{shard}",
    )
    process.start()
    sender.close()
    try:
        return _await_ready(shard, process, receiver, ready_timeout)
    except BaseException:
        if process.is_alive():
            process.kill()
        raise


def _await_ready(shard, process, receiver, ready_timeout) -> WorkerHandle:
    """Collect one worker's readiness report (port or typed error)."""
    try:
        if not receiver.poll(ready_timeout):
            raise ShardUnavailableError(
                f"shard {shard} worker did not report ready within "
                f"{ready_timeout:g}s",
                shard=shard,
            )
        try:
            status, value = receiver.recv()
        except EOFError:
            raise ShardUnavailableError(
                f"shard {shard} worker died before reporting ready",
                shard=shard,
            ) from None
    finally:
        receiver.close()
    if status != "ok":
        raise remote_error(value)
    return WorkerHandle(shard=shard, port=value, process=process)


# -- the worker process --------------------------------------------------------


@dataclass
class _WorkerState:
    """Everything one worker owns: its graph copy and its shard index."""

    graph: Graph
    k: int
    shard: int
    shard_count: int
    prune_empty: bool
    shard_seed: int = 0
    #: Sequence number of the last applied commit group — the resync
    #: cursor: a replacement worker replays the journal suffix past it.
    applied_seq: int = 0
    index: PathIndex = field(init=False)

    def __post_init__(self) -> None:
        self.index = self._build()

    def _build(self) -> PathIndex:
        """This shard's index, via the exact in-process build recipe.

        ``_serial_payload`` keeps the ``shard.build`` injection point
        and its retry/``ShardUnavailableError`` contract; the index is
        always memory-backed — durability is the coordinator's concern,
        workers are rebuildable by construction.
        """
        payload = ShardedGraph._serial_payload(
            self.graph,
            self.k,
            self.shard_count,
            self.shard,
            self.prune_empty,
            self.shard_seed,
        )
        return ShardedGraph._shard_index(
            self.graph, self.k, payload, "memory", None, self.shard
        )

    def rebuild(self) -> None:
        old = self.index
        self.index = self._build()
        old.close()


def _worker_main(
    channel, graph, k, shard, shard_count, prune_empty, shard_seed=0
) -> None:
    """Worker entry point: build, report the port, serve until shutdown."""
    try:
        state = _WorkerState(graph, k, shard, shard_count, prune_empty, shard_seed)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
    except ReproError as error:
        # A classifiable build failure is reported so the launcher can
        # re-raise it typed; anything else crashes the process and the
        # launcher reports the dead pipe instead.
        channel.send(("error", encode_error(error)))
        channel.close()
        return
    channel.send(("ok", listener.getsockname()[1]))
    channel.close()
    with listener:
        while True:
            connection, _ = listener.accept()
            if not _serve_connection(connection, state):
                break
    state.index.close()


def _serve_connection(sock, state: _WorkerState) -> bool:
    """Serve one coordinator connection; False means shutdown was asked.

    The connection is the unit of failure: an undecodable stream or a
    dead peer drops it and the worker goes back to ``accept`` — the
    coordinator stub reconnects and retries.  Classifiable request
    failures are answered in-band as typed error payloads.
    """
    with sock:
        while True:
            try:
                header, _body = recv_frame(sock)
            except WireError:
                # Covers TransientWireError (peer went away — normal
                # stub reconnect churn) and a garbage stream alike: in
                # both cases this connection is done.
                return True
            try:
                reply, payload = _handle(state, header)
            except ReproError as error:
                reply, payload = {"ok": False, "error": encode_error(error)}, b""
            try:
                send_frame(sock, reply, payload)
            except OSError:
                return True
            if header.get("op") == "shutdown" and reply.get("ok"):
                return False


def _check_budget(header: dict) -> None:
    """Honor the coordinator's propagated deadline budget.

    ``deadline_ms`` is the *remaining* budget at send time; a request
    arriving with none left is refused with the same typed timeout the
    in-process engine raises — computing a slice nobody will wait for
    helps no one.
    """
    budget = header.get("deadline_ms")
    if budget is not None and budget <= 0:
        raise QueryTimeoutError(
            "deadline budget exhausted before the worker began"
        )


def _handle(state: _WorkerState, header: dict) -> tuple[dict, bytes]:
    """Execute one request; returns (reply header, reply body)."""
    op = header.get("op")
    _check_budget(header)
    if op == "ping":
        return {"ok": True, "shard": state.shard}, b""
    if op == "scan":
        path = LabelPath.decode(header["path"])
        return {"ok": True}, encode_relation(state.index.scan(path))
    if op == "scan_from":
        path = LabelPath.decode(header["path"])
        targets = state.index.scan_from(path, int(header["source"]))
        return {"ok": True, "targets": list(targets)}, b""
    if op == "contains":
        path = LabelPath.decode(header["path"])
        value = state.index.contains(
            path, int(header["source"]), int(header["target"])
        )
        return {"ok": True, "value": bool(value)}, b""
    if op == "count":
        path = LabelPath.decode(header["path"])
        return {"ok": True, "value": state.index.count(path)}, b""
    if op == "counts":
        return {"ok": True, "counts": state.index.counts_by_path()}, b""
    if op == "entry_count":
        return {"ok": True, "value": state.index.entry_count}, b""
    if op == "apply":
        return _handle_apply(state, header)
    if op == "replay":
        return _handle_replay(state, header)
    if op == "shutdown":
        return {"ok": True}, b""
    raise ValidationError(f"unknown worker op {op!r}")


def _apply_mutations(state: _WorkerState, mutations: list) -> None:
    """Apply a group's mutations to the worker's graph copy, in order.

    Every worker receives every mutation — the graphs must stay in
    lockstep, path relations compose against the *full* graph.
    Application is idempotent (batch-replay safe).
    """
    for wire in mutations:
        kind = wire.get("kind")
        source, label, target = wire["source"], wire["label"], wire["target"]
        if kind == "add":
            state.graph.add_edge(source, label, target)
        elif kind == "remove":
            state.graph.remove_edge(source, label, target)
        else:
            raise ValidationError(f"unknown mutation kind {kind!r}")


def _handle_apply(state: _WorkerState, header: dict) -> tuple[dict, bytes]:
    """Absorb one commit group: mutations plus this shard's index move.

    The coordinator runs the delta algorithm once and ships each worker
    only its slice: ``patch`` (encoded path -> ``[adds, removes]`` pair
    lists, possibly empty) for B+tree point edits, or ``rebuild: true``
    when this shard's ball must rebuild.  ``seq`` advances the worker's
    resync cursor.
    """
    _apply_mutations(state, header.get("mutations", []))
    patch = header.get("patch")
    if patch is not None:
        for encoded, (adds, removes) in patch.items():
            state.index.patch(
                LabelPath.decode(encoded),
                [(int(src), int(tgt)) for src, tgt in adds],
                [(int(src), int(tgt)) for src, tgt in removes],
            )
    elif header.get("rebuild"):
        state.rebuild()
    state.applied_seq = int(header.get("seq", state.applied_seq))
    return {
        "ok": True,
        "version": state.graph.version,
        "applied_seq": state.applied_seq,
    }, b""


def _handle_replay(state: _WorkerState, header: dict) -> tuple[dict, bytes]:
    """Catch a restarted worker up from the coordinator's journal.

    Carries every journaled mutation past the worker's acked sequence
    number (for a fresh fork from the base graph, all of them) and
    rebuilds the shard index once at the end — the log-suffix resync
    that replaces re-shipping the whole current graph.
    """
    mutations = header.get("mutations", [])
    _apply_mutations(state, mutations)
    if mutations:
        state.rebuild()
    state.applied_seq = int(header.get("seq", state.applied_seq))
    return {
        "ok": True,
        "version": state.graph.version,
        "applied_seq": state.applied_seq,
        "replayed": len(mutations),
    }, b""
