"""Multi-process serving: shard workers, an RPC coordinator, and an
asyncio HTTP front door.

The process architecture the ROADMAP's "millions of users" north star
asks for:

* :mod:`repro.serve.worker` — one process per shard, owning that
  shard's :class:`~repro.indexes.pathindex.PathIndex` and answering
  scan/lookup/mutate requests over a length-prefixed socket protocol
  (:mod:`repro.serve.protocol`).
* :mod:`repro.serve.coordinator` — :class:`CoordinatorDatabase`, a
  :class:`~repro.api.GraphDatabase` whose sharded index is a set of
  RPC stubs; the in-process scatter-gather engine, scatter pruning,
  prepared plans and degraded answers all run unmodified over it.
* :mod:`repro.serve.server` — the asyncio HTTP/JSON front door with
  bounded concurrency, backpressure and worker supervision, behind the
  ``repro-rpq serve`` CLI entry point.

Clients live in :mod:`repro.client` (sync and async, one codec).
"""

from repro.serve.coordinator import CoordinatorDatabase, RpcShardedGraph
from repro.serve.worker import WorkerHandle, launch_workers

__all__ = [
    "CoordinatorDatabase",
    "RpcShardedGraph",
    "WorkerHandle",
    "launch_workers",
]
