"""Multi-process serving: shard workers, an RPC coordinator, and an
asyncio HTTP front door.

The process architecture the ROADMAP's "millions of users" north star
asks for:

* :mod:`repro.serve.worker` — one process per shard, owning that
  shard's :class:`~repro.indexes.pathindex.PathIndex` and answering
  scan/lookup/mutate requests over a length-prefixed socket protocol
  (:mod:`repro.serve.protocol`).
* :mod:`repro.serve.coordinator` — :class:`CoordinatorDatabase`, a
  :class:`~repro.api.GraphDatabase` whose sharded index is a set of
  RPC stubs; the in-process scatter-gather engine, scatter pruning,
  prepared plans and degraded answers all run unmodified over it.
* :mod:`repro.serve.server` — the asyncio HTTP/JSON front door with
  bounded concurrency, backpressure and worker supervision, behind the
  ``repro-rpq serve`` CLI entry point.

Clients live in :mod:`repro.client` (sync and async, one codec).
"""

__all__ = [
    "CoordinatorDatabase",
    "RpcShardedGraph",
    "WorkerHandle",
    "launch_workers",
]

#: Lazy re-exports (PEP 562).  The write path (``repro.write.log``)
#: borrows the frame codec from :mod:`repro.serve.protocol`, and
#: ``repro.api`` imports the write path — an eager coordinator import
#: here would close that loop back into ``repro.api`` before it
#: finishes initializing.
_EXPORTS = {
    "CoordinatorDatabase": "repro.serve.coordinator",
    "RpcShardedGraph": "repro.serve.coordinator",
    "WorkerHandle": "repro.serve.worker",
    "launch_workers": "repro.serve.worker",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
