"""The serve wire protocol: frames, the Relation codec, error codes.

Three layers, shared by the worker, the coordinator stubs, and both
HTTP clients:

* **Frames** — every RPC message is ``[header_len u32][body_len u32]
  [JSON header][raw body]`` (big-endian lengths).  The header carries
  the operation and its parameters (including the propagated
  ``deadline_ms`` budget); the body is reserved for bulk payloads so
  relation bytes never pass through JSON.

* **Relation codec** — a :class:`~repro.relation.Relation` is two flat
  ``array('q')`` columns, so the wire format is just
  ``[magic "RRel"][order tag u8][count u64][src bytes][tgt bytes]``
  with the columns serialized by zero-copy ``tobytes()`` /
  ``frombytes()``.  Column bytes are machine-endian: workers are
  forked from the coordinator, so both ends share one architecture —
  the magic would not decode across one anyway.

* **Error codes** — every :class:`~repro.errors.ReproError` subclass
  maps to a stable string code (:func:`error_code`), so a failure on
  the far side of a socket re-raises as the *same* typed exception
  locally (:func:`raise_remote`).  The taxonomy survives the wire:
  a remote :class:`~repro.errors.QueryTimeoutError` is catchable as
  exactly that.

Malformed bytes raise :class:`~repro.errors.WireError` (permanent —
the payload is gone); transport failures (EOF mid-frame, resets,
socket timeouts) raise :class:`~repro.errors.TransientWireError`
(retryable — the request can be re-sent on a fresh connection).
"""

from __future__ import annotations

import json
import struct
from array import array

from repro.errors import (
    DatalogError,
    ExecutionError,
    GraphError,
    KeyOrderError,
    ParseError,
    PathIndexError,
    PlanningError,
    QueryTimeoutError,
    ReproError,
    RewriteError,
    ShardUnavailableError,
    StorageError,
    TransientStorageError,
    TransientWireError,
    UnknownNodeError,
    UnsupportedQueryError,
    ValidationError,
    WireError,
)
from repro.relation import Order, Relation

#: First bytes of every serialized relation — a truncated or corrupted
#: buffer is overwhelmingly unlikely to still start with it.
RELATION_MAGIC = b"RRel"

#: Frame header sanity cap: headers are small JSON objects; anything
#: claiming a megabyte of header is a corrupt length prefix.
MAX_HEADER_BYTES = 1 << 20

#: Body sanity cap (1 GiB) — catches corrupt length prefixes before a
#: bad read tries to allocate the universe.
MAX_BODY_BYTES = 1 << 30

_FRAME = struct.Struct(">II")
_RELATION_HEAD = struct.Struct(">4sBQ")

_ORDER_TAGS = {Order.NONE: 0, Order.BY_SRC: 1, Order.BY_TGT: 2}
_TAG_ORDERS = {tag: order for order, tag in _ORDER_TAGS.items()}


# -- relation codec ------------------------------------------------------------


def encode_relation(relation: Relation) -> bytes:
    """Relation -> bytes: magic, order tag, count, raw int64 columns."""
    count = len(relation.src)
    return b"".join(
        (
            _RELATION_HEAD.pack(
                RELATION_MAGIC, _ORDER_TAGS[relation.order], count
            ),
            relation.src.tobytes(),
            relation.tgt.tobytes(),
        )
    )


def decode_relation(data: bytes) -> Relation:
    """Bytes -> Relation, validating every structural invariant.

    Anything that does not decode exactly — wrong magic, unknown order
    tag, a length that disagrees with the declared count — raises
    :class:`WireError`: a corrupt slice must surface as a typed error,
    never as a silently wrong relation.
    """
    if len(data) < _RELATION_HEAD.size:
        raise WireError(
            f"relation frame truncated: {len(data)} bytes, "
            f"need at least {_RELATION_HEAD.size}"
        )
    magic, tag, count = _RELATION_HEAD.unpack_from(data)
    if magic != RELATION_MAGIC:
        raise WireError(f"bad relation magic {magic!r}")
    order = _TAG_ORDERS.get(tag)
    if order is None:
        raise WireError(f"unknown relation order tag {tag}")
    expected = _RELATION_HEAD.size + 16 * count
    if len(data) != expected:
        raise WireError(
            f"relation frame length mismatch: {count} pairs need "
            f"{expected} bytes, got {len(data)}"
        )
    column = 8 * count
    src = array("q")
    tgt = array("q")
    src.frombytes(data[_RELATION_HEAD.size : _RELATION_HEAD.size + column])
    tgt.frombytes(data[_RELATION_HEAD.size + column : expected])
    return Relation(src, tgt, order)


# -- error codes ---------------------------------------------------------------

#: Most-specific first: :func:`error_code` returns the first match, so
#: a subclass must appear before every one of its bases.
ERROR_CODES: tuple[tuple[str, type[Exception]], ...] = (
    ("unknown_node", UnknownNodeError),
    ("parse", ParseError),
    ("rewrite", RewriteError),
    ("planning", PlanningError),
    ("execution", ExecutionError),
    ("path_index", PathIndexError),
    ("key_order", KeyOrderError),
    ("transient_wire", TransientWireError),
    ("wire", WireError),
    ("transient_storage", TransientStorageError),
    ("storage", StorageError),
    ("query_timeout", QueryTimeoutError),
    ("shard_unavailable", ShardUnavailableError),
    ("datalog", DatalogError),
    ("unsupported_query", UnsupportedQueryError),
    ("validation", ValidationError),
    ("graph", GraphError),
    ("internal", ReproError),
)

_CODE_TYPES = dict(ERROR_CODES)


def error_code(error: Exception) -> str:
    """The stable wire code for an exception (``internal`` if unknown)."""
    for code, error_type in ERROR_CODES:
        if isinstance(error, error_type):
            return code
    return "internal"


def encode_error(error: Exception) -> dict:
    """Exception -> JSON-safe payload carrying code, message, extras."""
    payload: dict = {"code": error_code(error), "message": str(error)}
    shard = getattr(error, "shard", None)
    if shard is not None:
        payload["shard"] = shard
    position = getattr(error, "position", None)
    if position is not None:
        payload["position"] = position
    return payload


def remote_error(payload: dict) -> ReproError:
    """Payload -> the typed local exception it encodes.

    Unknown codes decode as plain :class:`ReproError` — a newer server
    must degrade to the base class on an older client, not to an
    untyped crash.
    """
    error_type = _CODE_TYPES.get(payload.get("code", ""), ReproError)
    message = payload.get("message", "remote error")
    if error_type is ShardUnavailableError:
        return ShardUnavailableError(message, shard=payload.get("shard"))
    if error_type is ParseError:
        return ParseError(message, position=payload.get("position"))
    return error_type(message)


def raise_remote(payload: dict) -> None:
    """Re-raise a remote failure as its local typed exception."""
    raise remote_error(payload)


# -- frames --------------------------------------------------------------------


def recv_exact(read, count: int) -> bytes:
    """Read exactly ``count`` bytes via ``read(n)``.

    ``read`` is a ``socket.recv``-shaped callable.  A peer that goes
    away mid-frame yields a short read; that is a transport failure,
    so it raises :class:`TransientWireError` — the caller's retry can
    reconnect and re-send.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = read(remaining)
        if not chunk:
            raise TransientWireError(
                f"connection closed mid-frame: wanted {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def pack_frame(header: dict, body: bytes = b"") -> bytes:
    """One ``[lengths][JSON header][body]`` frame as bytes.

    The same frame shape whether it crosses a socket
    (:func:`send_frame`) or lands in an append-only file (the mutation
    log's records are exactly these frames).
    """
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(encoded), len(body)) + encoded + body


def send_frame(sock, header: dict, body: bytes = b"") -> None:
    """Write one ``[lengths][JSON header][body]`` frame to a socket."""
    sock.sendall(pack_frame(header, body))


def read_frame(read) -> tuple[dict, bytes]:
    """Read one frame via a ``read(n)`` callable; returns ``(header, body)``.

    Implausible lengths and undecodable headers are permanent
    :class:`WireError`\\ s (the stream is garbage); a clean or
    mid-frame EOF is a :class:`TransientWireError` (the peer went
    away, retry on a fresh connection — or, for a file, the tail was
    torn by a crash).
    """
    prefix = recv_exact(read, _FRAME.size)
    header_len, body_len = _FRAME.unpack(prefix)
    if header_len > MAX_HEADER_BYTES or body_len > MAX_BODY_BYTES:
        raise WireError(
            f"implausible frame lengths (header={header_len}, "
            f"body={body_len}): corrupt length prefix"
        )
    header_bytes = recv_exact(read, header_len)
    body = recv_exact(read, body_len) if body_len else b""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable frame header: {error}") from error
    if not isinstance(header, dict):
        raise WireError(f"frame header must be an object, got {header!r}")
    return header, body


def recv_frame(sock) -> tuple[dict, bytes]:
    """Read one frame from a socket (see :func:`read_frame`)."""
    return read_frame(sock.recv)
