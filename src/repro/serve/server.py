"""The asyncio front door: HTTP/JSON queries over a coordinator.

One small hand-rolled HTTP/1.1 server (stdlib only, one request per
connection) in front of a :class:`~repro.api.GraphDatabase` — usually
a :class:`~repro.serve.coordinator.CoordinatorDatabase`, so each
request scatters to the shard worker processes.  Three properties the
ROADMAP's service story asks for live here:

* **Bounded concurrency** — at most ``config.max_inflight`` queries
  execute at once (a semaphore in front of the thread-pool handoff;
  the engine itself is thread-safe, the bound is about not oversubscribing
  the workers).

* **Backpressure** — once ``config.queue_limit`` callers are already
  waiting for a slot, new requests are refused immediately with
  ``503`` + ``Retry-After`` and a typed, retryable
  :class:`~repro.errors.TransientWireError` payload, instead of
  queueing unboundedly.  A well-behaved client (ours — see
  :mod:`repro.client`) surfaces that as the same transient taxonomy
  the rest of the system retries.

* **Supervision** — a background task polls
  ``database.ensure_workers()`` so a crashed shard worker is restarted
  within a poll interval; poll failures back off on the PR-7
  :class:`~repro.faults.RetryPolicy` schedule (capped, deterministic).

Remote failures cross the wire as the :mod:`repro.serve.protocol`
error codes, so a client re-raises the *same* typed exception the
in-process engine would have raised.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import threading
from dataclasses import dataclass

from repro.api import GraphDatabase, ServiceConfig
from repro.errors import (
    ParseError,
    QueryTimeoutError,
    ReproError,
    RewriteError,
    TransientError,
    TransientWireError,
    UnknownNodeError,
    UnsupportedQueryError,
    ValidationError,
    WireError,
)
from repro.faults import RetryPolicy
from repro.serve.protocol import encode_error
from repro.write.mutation import MutationBatch

#: Seconds between supervision polls when the last poll succeeded.
SUPERVISE_INTERVAL = 0.25

#: Largest request body the front door will read (16 MiB) — a query is
#: text plus a few knobs; anything bigger is a broken client.
MAX_REQUEST_BYTES = 16 << 20

#: Request failures that are the caller's fault (HTTP 400).
_CALLER_ERRORS = (
    ValidationError,
    ParseError,
    RewriteError,
    UnknownNodeError,
    UnsupportedQueryError,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _status_for(error: Exception) -> int:
    """Map a typed failure to its HTTP status (taxonomy-preserving).

    The body always carries the wire error code, so the status is
    routing advice, not the contract: 504 says "your deadline", 503
    says "retry me", 400 says "fix the request".
    """
    if isinstance(error, QueryTimeoutError):
        return 504
    if isinstance(error, _CALLER_ERRORS):
        return 400
    if isinstance(error, TransientError):
        return 503
    return 500


def _result_payload(result) -> dict:
    """A QueryResult as its JSON wire shape (pairs sorted for determinism)."""
    report = result.report
    return {
        "ok": True,
        "query": result.query,
        "method": result.method,
        "pairs": sorted(result.pairs),
        "seconds": result.seconds,
        "cached": result.cached,
        "version": result.version,
        "partial": bool(report.partial) if report is not None else False,
        "shards_failed": report.shards_failed if report is not None else 0,
    }


class QueryServer:
    """The HTTP front door over one database.

    Owns the listening socket, the inflight semaphore, and the
    supervision task.  Drive it with :func:`serve_forever` (CLI) or
    :func:`serve_in_thread` (tests, benchmarks, examples).
    """

    def __init__(
        self,
        database: GraphDatabase,
        config: ServiceConfig | None = None,
        supervise_interval: float = SUPERVISE_INTERVAL,
    ) -> None:
        self.database = database
        self.config = config if config is not None else database.config
        self.port: int | None = None
        self._supervise_interval = supervise_interval
        self._retry = RetryPolicy()
        self._semaphore: asyncio.Semaphore | None = None
        self._waiting = 0
        self._prepared: dict[tuple[str, str], object] = {}
        self._prepared_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind, start accepting, and start the supervision task."""
        self._semaphore = asyncio.Semaphore(self.config.max_inflight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if hasattr(self.database, "ensure_workers"):
            self._supervisor = asyncio.get_running_loop().create_task(
                self._supervise()
            )

    async def stop(self) -> None:
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _supervise(self) -> None:
        """Restart crashed workers; back off on supervision failures.

        A successful poll resets the backoff; a failing one (the fleet
        relaunch itself hitting a transient) sleeps on the capped
        PR-7 retry schedule instead of hot-looping.
        """
        loop = asyncio.get_running_loop()
        failures = 0
        while True:
            try:
                await loop.run_in_executor(None, self.database.ensure_workers)
                failures = 0
                await asyncio.sleep(self._supervise_interval)
            except asyncio.CancelledError:
                raise
            except ReproError:
                delay = self._retry.delay_ms(failures) / 1000.0
                failures += 1
                await asyncio.sleep(delay)

    # -- request handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
            except WireError as error:
                await _write_response(writer, 400, encode_wire_error(error))
                return
            status, payload = await self._dispatch(method, path, body)
            headers = {}
            if status == 503:
                headers["Retry-After"] = "1"
            await _write_response(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, path: str, body: dict):
        """Route one request; returns ``(status, JSON payload)``."""
        try:
            if method == "GET" and path == "/health":
                return 200, {
                    "ok": True,
                    "version": self.database.graph.version,
                    "backend": self.database.config.backend,
                    "shards": self.database.config.resolved_shards(),
                }
            if method == "GET" and path == "/stats":
                stats = await self._run_blocking(self.database.stats)
                return 200, {"ok": True, "stats": dataclasses.asdict(stats)}
            if method == "POST" and path == "/query":
                return 200, await self._guarded(self._do_query, body)
            if method == "POST" and path == "/prepared":
                return 200, await self._guarded(self._do_prepared, body)
            if method == "POST" and path == "/mutate":
                return 200, await self._guarded(self._do_mutate, body)
            if method == "POST" and path == "/apply":
                return 200, await self._guarded(self._do_apply, body)
            if path in (
                "/health",
                "/stats",
                "/query",
                "/prepared",
                "/mutate",
                "/apply",
            ):
                return 405, {
                    "ok": False,
                    "error": encode_error(
                        ValidationError(f"{method} not allowed on {path}")
                    ),
                }
            return 404, {
                "ok": False,
                "error": encode_error(ValidationError(f"no route {path!r}")),
            }
        except ReproError as error:
            return _status_for(error), {"ok": False, "error": encode_error(error)}

    async def _guarded(self, handler, body: dict) -> dict:
        """Run one mutating/query handler under the concurrency bound.

        The backpressure check happens *before* touching the
        semaphore: once every inflight slot is busy and ``queue_limit``
        callers are already parked waiting, the next one is refused
        outright — bounded queue, bounded memory, and a retryable
        error the client taxonomy understands (``queue_limit=0`` means
        "never queue": reject the moment the slots are full).
        """
        if self._semaphore.locked() and self._waiting >= self.config.queue_limit:
            raise TransientWireError(
                f"server at capacity ({self.config.max_inflight} inflight, "
                f"{self._waiting} queued); retry shortly"
            )
        self._waiting += 1
        acquired = False
        try:
            async with self._semaphore:
                self._waiting -= 1
                acquired = True
                return await self._run_blocking(handler, body)
        finally:
            if not acquired:
                # Cancelled or failed while still parked in the queue:
                # the waiting count must drop exactly once either way.
                self._waiting -= 1

    async def _run_blocking(self, callable_, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(callable_, *args)
        )

    # -- handlers (run in the thread pool) --------------------------------

    def _do_query(self, body: dict) -> dict:
        result = self.database.query(
            _require_text(body, "query"),
            method=body.get("method", "minsupport"),
            use_cache=bool(body.get("use_cache", True)),
            timeout_ms=body.get("timeout_ms"),
            degraded=bool(body.get("degraded", False)),
        )
        return _result_payload(result)

    def _do_prepared(self, body: dict) -> dict:
        """Bind and run a prepared template (planned once per server)."""
        template = _require_text(body, "template")
        method = body.get("method", "minsupport")
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ValidationError("params must be an object of $name bindings")
        key = (template, method)
        with self._prepared_lock:
            statement = self._prepared.get(key)
            if statement is None:
                statement = self.database.prepare(template, method=method)
                self._prepared[key] = statement
        return _result_payload(statement.run(**params))

    def _do_mutate(self, body: dict) -> dict:
        """Legacy single-edge route; rides the same ``apply()`` path."""
        kind = body.get("kind")
        source = _require_text(body, "source")
        label = _require_text(body, "label")
        target = _require_text(body, "target")
        if kind == "add":
            version = self.database.add_edge(source, label, target)
        elif kind == "remove":
            version = self.database.remove_edge(source, label, target)
        else:
            raise ValidationError(f"kind must be 'add' or 'remove', got {kind!r}")
        return {
            "ok": True,
            "changed": version is not None,
            "version": self.database.graph.version,
        }

    def _do_apply(self, body: dict) -> dict:
        """The unified mutation route: one batch, one commit group ride."""
        batch = MutationBatch.from_wire(body.get("mutations"))
        result = self.database.apply(batch)
        return {"ok": True, "result": result.as_wire()}


def encode_wire_error(error: Exception) -> dict:
    return {"ok": False, "error": encode_error(error)}


def _require_text(body: dict, key: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value:
        raise ValidationError(f"request body needs a non-empty {key!r} string")
    return value


# -- the HTTP layer ------------------------------------------------------------


async def _read_request(reader) -> tuple[str, str, dict]:
    """Parse one HTTP request; returns ``(method, path, JSON body)``.

    Anything malformed raises :class:`WireError` — the connection gets
    a 400 and is closed, never a hang or a crash.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as error:
        raise WireError(f"unreadable request line: {error}") from error
    parts = request_line.decode("latin-1", "replace").split()
    if len(parts) != 3:
        raise WireError(f"malformed request line {request_line!r}")
    method, path, _version = parts
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise WireError(f"bad Content-Length {value.strip()!r}") from None
    if content_length > MAX_REQUEST_BYTES:
        raise WireError(f"request body too large ({content_length} bytes)")
    body: dict = {}
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireError(f"undecodable JSON body: {error}") from error
        if not isinstance(body, dict):
            raise WireError("request body must be a JSON object")
    return method, path.split("?", 1)[0], body


async def _write_response(
    writer, status: int, payload: dict, headers: dict | None = None
) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


# -- entry points --------------------------------------------------------------


async def serve_forever(
    database: GraphDatabase, config: ServiceConfig | None = None
) -> None:
    """Run the front door until cancelled (the CLI entry point)."""
    server = QueryServer(database, config)
    await server.start()
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


@dataclass
class ServerThread:
    """A front door running on its own event loop thread."""

    server: QueryServer
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def stop(self) -> None:
        """Stop accepting, cancel supervision, and join the loop thread."""
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop)
        future.result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def serve_in_thread(
    database: GraphDatabase,
    config: ServiceConfig | None = None,
    supervise_interval: float = SUPERVISE_INTERVAL,
) -> ServerThread:
    """Start the front door on a background thread; returns its handle.

    The tests', benchmarks' and example's way in: the caller keeps the
    database handle (to kill workers, inspect stats) while real HTTP
    clients hammer the port.
    """
    server = QueryServer(database, config, supervise_interval)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise TransientWireError("serve thread failed to start within 30s")
    return ServerThread(server=server, loop=loop, thread=thread)
