"""Command-line interface: ``repro-rpq`` / ``python -m repro``.

Subcommands cover the life of a query the demo walks through (load,
inspect, explain, run) plus every experiment driver:

    repro-rpq stats --synthetic bench
    repro-rpq query --synthetic bench -k 2 "master/journeyer"
    repro-rpq explain --synthetic bench -k 3 --method minjoin "master/journeyer/apprentice"
    repro-rpq figure2 --scale small
    repro-rpq compare-datalog --scale small
    repro-rpq index-build --scale small
    repro-rpq mutate --synthetic bench < delta.txt
    repro-rpq lint src/
"""

from __future__ import annotations

import argparse
import sys

from repro.api import GraphDatabase
from repro.bench import harness, reporting
from repro.bench.workloads import SCALES, advogato_workload
from repro.errors import ReproError
from repro.graph.generators import advogato_like
from repro.graph.stats import summarize


def _load_database(args: argparse.Namespace, k: int | None = None) -> GraphDatabase:
    k = k if k is not None else args.k
    if args.graph is not None:
        return GraphDatabase.from_file(args.graph, k=k)
    nodes, edges = SCALES[args.synthetic]
    graph = advogato_like(nodes=nodes, edges=edges, seed=args.seed)
    return GraphDatabase(graph, k=k)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--graph", help="graph file (.tsv/.json/.csv)")
    source.add_argument(
        "--synthetic",
        choices=sorted(SCALES),
        default="bench",
        help="use a seeded Advogato-like synthetic graph (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument("-k", type=int, default=2, help="index locality k")


def _cmd_stats(args: argparse.Namespace) -> int:
    database = _load_database(args)
    print(summarize(database.graph).format())
    index = database.index
    print(f"index:  k={index.k} paths={index.path_count} entries={index.entry_count}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = _load_database(args)
    result = database.query(
        args.query,
        method=args.method,
        timeout_ms=args.timeout_ms,
        degraded=args.degraded,
    )
    for source, target in sorted(result.pairs):
        print(f"{source}\t{target}")
    partial = ", PARTIAL" if result.report is not None and result.report.partial else ""
    print(
        f"# {len(result.pairs)} pairs in {result.seconds * 1000.0:.2f} ms "
        f"({result.method}, k={database.k}{partial})",
        file=sys.stderr,
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    database = _load_database(args)
    print(database.explain(args.query, method=args.method))
    return 0


def _parse_binding(text: str) -> dict[str, int | str]:
    """One ``name=value[,name=value...]`` binding; ints stay ints."""
    binding: dict[str, int | str] = {}
    for part in text.split(","):
        name, separator, value = part.partition("=")
        if not separator or not name:
            raise ReproError(
                f"binding {part!r} must look like name=value "
                f"(e.g. n=3 or v=alice,n=2)"
            )
        binding[name.strip()] = (
            int(value) if value.strip().lstrip("-").isdigit() else value.strip()
        )
    return binding


def _cmd_prepared(args: argparse.Namespace) -> int:
    database = _load_database(args)
    statement = database.prepare(args.template, method=args.method)
    for text in args.bindings:
        binding = _parse_binding(text)
        result = statement.bind(**binding).run()
        print(
            f"{text}: {len(result.pairs)} pairs in "
            f"{result.seconds * 1000.0:.2f} ms  ({result.query})"
        )
    info = database.stats().as_dict()
    print(
        f"# plans computed {info['plans_computed']}, cache hits "
        f"{info['prepared_hits']}, artifact loads {info['artifact_loads']}",
        file=sys.stderr,
    )
    return 0


def _parse_mutation_line(line: str, number: int):
    """One ``add|remove|+|- source label target`` line -> Mutation."""
    from repro.write import Mutation

    parts = line.split()
    if len(parts) != 4:
        raise ReproError(
            f"line {number}: expected 'add|remove source label target', "
            f"got {line!r}"
        )
    kind, source, label, target = parts
    if kind in ("add", "+"):
        return Mutation.add(source, label, target)
    if kind in ("remove", "-"):
        return Mutation.remove(source, label, target)
    raise ReproError(f"line {number}: kind must be add/remove/+/-, got {kind!r}")


def _cmd_mutate(args: argparse.Namespace) -> int:
    """Apply an edge-list delta from stdin as one mutation batch."""
    from repro.write import MutationBatch

    mutations = []
    for number, line in enumerate(sys.stdin, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        mutations.append(_parse_mutation_line(line, number))
    batch = MutationBatch.of(*mutations)
    if args.port is not None:
        from repro.client import Client

        result = Client(host=args.host, port=args.port).apply(batch)
    else:
        database = _load_database(args)
        result = database.apply(batch)
    print(
        f"# applied {result.applied}, no-ops {result.noops}, "
        f"version {result.version}, mode {result.mode}"
        + (
            f", patched shards {list(result.patched_shards)}"
            if result.patched_shards
            else ""
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    prepared = advogato_workload(scale=args.scale, ks=tuple(args.ks))
    measurements = harness.run_figure2(
        prepared, ks=tuple(args.ks), repeats=args.repeats
    )
    if args.chart:
        from repro.bench.plots import figure2_charts

        print(figure2_charts(measurements))
    else:
        print(reporting.format_figure2(measurements))
    trends = reporting.figure2_trends(measurements)
    for claim, holds in trends.items():
        print(f"trend {claim}: {'holds' if holds else 'VIOLATED'}")
    return 0


def _cmd_compare_datalog(args: argparse.Namespace) -> int:
    rows = harness.run_datalog_comparison(scale=args.scale, k=args.k)
    print(reporting.format_comparison(rows, "Datalog"))
    return 0


def _cmd_compare_automaton(args: argparse.Namespace) -> int:
    rows = harness.run_automaton_comparison(scale=args.scale, k=args.k)
    print(reporting.format_comparison(rows, "automaton"))
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    nodes, edges = SCALES[args.scale]
    graph = advogato_like(nodes=nodes, edges=edges, seed=args.seed)
    rows = harness.run_index_build(graph, ks=tuple(args.ks))
    print(reporting.format_index_build(rows))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's own invariant analyzer (see repro.analysis).

    Exits non-zero on findings outside the committed baseline, so it
    works as a pre-commit gate exactly like the CI job.
    """
    from repro.analysis.__main__ import main as analysis_main

    argv = list(args.paths)
    argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.report is not None:
        argv += ["--report", args.report]
    return analysis_main(argv)


def _cmd_histogram(args: argparse.Namespace) -> int:
    rows = harness.run_histogram_ablation(scale=args.scale, k=args.k)
    print(reporting.format_histogram(rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-process query service until interrupted."""
    import asyncio

    from repro.api import ServiceConfig
    from repro.serve import CoordinatorDatabase
    from repro.serve.server import QueryServer

    config = ServiceConfig(
        k=args.k,
        shards=args.workers,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
    )
    if args.graph is not None:
        database = CoordinatorDatabase.from_file(args.graph, config=config)
    else:
        nodes, edges = SCALES[args.synthetic]
        graph = advogato_like(nodes=nodes, edges=edges, seed=args.seed)
        database = CoordinatorDatabase(graph, config=config)

    async def _run() -> None:
        server = QueryServer(database, config)
        await server.start()
        print(
            f"serving {args.workers} shard workers on "
            f"http://{args.host}:{server.port}  (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        database.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rpq",
        description="RPQ evaluation with k-path indexes (EDBT 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="graph and index statistics")
    _add_graph_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    query = commands.add_parser("query", help="run one RPQ")
    _add_graph_arguments(query)
    query.add_argument("query", help="RPQ text, e.g. 'master/journeyer'")
    query.add_argument("--method", default="minsupport")
    query.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="fail with a typed timeout error past this deadline",
    )
    query.add_argument(
        "--degraded",
        action="store_true",
        help="accept a partial answer if a shard is down (sharded engine)",
    )
    query.set_defaults(handler=_cmd_query)

    explain = commands.add_parser("explain", help="show the physical plan")
    _add_graph_arguments(explain)
    explain.add_argument("query")
    explain.add_argument("--method", default="minsupport")
    explain.set_defaults(handler=_cmd_explain)

    prepared = commands.add_parser(
        "prepared", help="prepare a template once, run many bindings"
    )
    _add_graph_arguments(prepared)
    prepared.add_argument(
        "template",
        help="RPQ template, e.g. 'from($v): knows{1,$n}/worksFor'",
    )
    prepared.add_argument(
        "bindings",
        nargs="+",
        help="one binding per argument: 'n=2' or 'v=alice,n=3'",
    )
    prepared.add_argument("--method", default="minsupport")
    prepared.set_defaults(handler=_cmd_prepared)

    mutate = commands.add_parser(
        "mutate", help="apply an edge-list delta from stdin as one batch"
    )
    _add_graph_arguments(mutate)
    mutate.add_argument(
        "--host", default="127.0.0.1", help="server host (with --port)"
    )
    mutate.add_argument(
        "--port",
        type=int,
        default=None,
        help="send the batch to a running server instead of a local graph",
    )
    mutate.set_defaults(handler=_cmd_mutate)

    figure2 = commands.add_parser("figure2", help="reproduce Figure 2")
    figure2.add_argument("--scale", choices=sorted(SCALES), default="bench")
    figure2.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3])
    figure2.add_argument("--repeats", type=int, default=3)
    figure2.add_argument(
        "--chart", action="store_true", help="render bar charts instead of tables"
    )
    figure2.set_defaults(handler=_cmd_figure2)

    datalog = commands.add_parser(
        "compare-datalog", help="Section 6 Datalog comparison"
    )
    datalog.add_argument("--scale", choices=sorted(SCALES), default="small")
    datalog.add_argument("-k", type=int, default=2)
    datalog.set_defaults(handler=_cmd_compare_datalog)

    automaton = commands.add_parser(
        "compare-automaton", help="traversal-baseline comparison"
    )
    automaton.add_argument("--scale", choices=sorted(SCALES), default="bench")
    automaton.add_argument("-k", type=int, default=2)
    automaton.set_defaults(handler=_cmd_compare_automaton)

    build = commands.add_parser("index-build", help="index size/time vs k")
    build.add_argument("--scale", choices=sorted(SCALES), default="small")
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3])
    build.set_defaults(handler=_cmd_index_build)

    lint = commands.add_parser(
        "lint", help="check the engine's concurrency/resilience invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--baseline",
        default="analysis-baseline.json",
        help="justified-suppressions file (default: analysis-baseline.json)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.add_argument(
        "--report", default=None, help="write the JSON findings report here"
    )
    lint.set_defaults(handler=_cmd_lint)

    histogram = commands.add_parser("histogram", help="histogram ablation")
    histogram.add_argument("--scale", choices=sorted(SCALES), default="bench")
    histogram.add_argument("-k", type=int, default=2)
    histogram.set_defaults(handler=_cmd_histogram)

    serve = commands.add_parser(
        "serve", help="run the multi-process HTTP query service"
    )
    _add_graph_arguments(serve)
    serve.add_argument(
        "--workers", type=int, default=4, help="shard worker processes"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="queries executing concurrently before new ones queue",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="queued queries before the server sheds load with 503",
    )
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
