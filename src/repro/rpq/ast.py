"""Abstract syntax for regular path queries (Section 2.2).

The grammar of the paper is

    R ::= eps | l | l⁻ | R ∘ R | R ∪ R | R^{i,j}

We additionally allow inverse on arbitrary subexpressions (rewritten to
label level by :mod:`repro.rpq.rewrite`) and unbounded recursion
(``R*``/``R+``/``R{i,}``), desugared to bounded recursion against a
concrete graph via the paper's ``n(G)`` observation.

All nodes are immutable and hashable; construction normalizes nothing —
rewriting is an explicit, separate phase so tests can inspect each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ValidationError
from repro.graph.graph import LabelPath, Step


class Node:
    """Base class of all RPQ AST nodes."""

    __slots__ = ()

    def children(self) -> tuple["Node", ...]:
        return ()

    def size(self) -> int:
        """Number of AST nodes in this subtree."""
        return 1 + sum(child.size() for child in self.children())

    def labels_used(self) -> frozenset[str]:
        """Every edge label mentioned anywhere in the expression."""
        labels: set[str] = set()
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Label):
                labels.add(node.step.label)
            stack.extend(node.children())
        return frozenset(labels)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class Epsilon(Node):
    """The identity transition ``eps``: relates every node to itself."""

    def __str__(self) -> str:
        return "<eps>"


@dataclass(frozen=True, slots=True)
class Label(Node):
    """A single navigation step (forward or inverse edge label)."""

    step: Step

    def __str__(self) -> str:
        return str(self.step)


@dataclass(frozen=True, slots=True)
class Concat(Node):
    """Path composition ``R ∘ S`` (n-ary for convenience)."""

    parts: tuple[Node, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValidationError("Concat requires at least two parts")

    def children(self) -> tuple[Node, ...]:
        return self.parts

    def __str__(self) -> str:
        return "/".join(_wrap(part, for_concat=True) for part in self.parts)


@dataclass(frozen=True, slots=True)
class Union(Node):
    """Path disjunction ``R ∪ S`` (n-ary for convenience)."""

    parts: tuple[Node, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValidationError("Union requires at least two parts")

    def children(self) -> tuple[Node, ...]:
        return self.parts

    def __str__(self) -> str:
        return "|".join(str(part) for part in self.parts)


@dataclass(frozen=True, slots=True)
class Repeat(Node):
    """Bounded path recursion ``R{low,high}``.

    ``high=None`` means unbounded (``R{low,}``); :func:`repro.rpq.rewrite.bound_star`
    replaces it by a concrete bound before planning.
    """

    child: Node
    low: int
    high: int | None

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValidationError(f"Repeat lower bound must be >= 0, got {self.low}")
        if self.high is not None and self.high < self.low:
            raise ValidationError(
                f"Repeat bounds must satisfy low <= high, got "
                f"{{{self.low},{self.high}}}"
            )

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def __str__(self) -> str:
        body = _wrap(self.child, tight=True)
        if self.high is None:
            return f"{body}{{{self.low},}}"
        return f"{body}{{{self.low},{self.high}}}"


@dataclass(frozen=True, slots=True)
class ParamRepeat(Node):
    """Bounded recursion with ``$name`` placeholder bounds.

    The template form of :class:`Repeat`: either bound may be a
    parameter name (a ``str``) instead of a literal.  Templates are
    never evaluated directly — :func:`substitute_params` resolves every
    placeholder into a concrete :class:`Repeat` before rewriting, and
    the rewriter fails loudly on an unsubstituted node.
    """

    child: Node
    low: int | str
    high: int | str | None

    def __post_init__(self) -> None:
        if not isinstance(self.low, str) and not isinstance(self.high, str):
            raise ValidationError(
                "ParamRepeat needs at least one parameter bound; "
                "use Repeat for literal bounds"
            )
        if isinstance(self.low, int) and self.low < 0:
            raise ValidationError(
                f"Repeat lower bound must be >= 0, got {self.low}"
            )
        if isinstance(self.high, int) and self.high < 0:
            raise ValidationError(
                f"Repeat upper bound must be >= 0, got {self.high}"
            )

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def __str__(self) -> str:
        body = _wrap(self.child, tight=True)
        low = f"${self.low}" if isinstance(self.low, str) else str(self.low)
        if self.high is None:
            return f"{body}{{{low},}}"
        high = f"${self.high}" if isinstance(self.high, str) else str(self.high)
        return f"{body}{{{low},{high}}}"


@dataclass(frozen=True, slots=True)
class Star(Node):
    """Unbounded Kleene star ``R*`` (sugar for ``R{0,}``)."""

    child: Node

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"{_wrap(self.child, tight=True)}*"


@dataclass(frozen=True, slots=True)
class Inverse(Node):
    """Syntactic inverse ``^R`` on an arbitrary subexpression."""

    child: Node

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"^{_wrap(self.child, tight=True)}"


def _wrap(node: Node, for_concat: bool = False, tight: bool = False) -> str:
    """Parenthesize when needed for an unambiguous unparse.

    ``tight`` is used under postfix/prefix operators (repetition, star,
    inverse), which bind tighter than both concatenation and union.
    """
    needs_parens = isinstance(node, Union) or (
        (for_concat or tight) and isinstance(node, Concat)
    ) or (tight and isinstance(node, (Repeat, ParamRepeat, Star, Inverse)))
    text = str(node)
    return f"({text})" if needs_parens else text


# -- constructor helpers ------------------------------------------------------

def label(name: str) -> Label:
    """Forward navigation of edge label ``name``."""
    return Label(Step(name))


def inv_label(name: str) -> Label:
    """Backward navigation of edge label ``name`` (the paper's ``l⁻``)."""
    return Label(Step(name, inverse=True))


def concat(*parts: Node) -> Node:
    """``parts[0] ∘ parts[1] ∘ ...`` (flattens nested concats)."""
    flat: list[Node] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Node) -> Node:
    """``parts[0] ∪ parts[1] ∪ ...`` (flattens nested unions)."""
    flat: list[Node] = []
    for part in parts:
        if isinstance(part, Union):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        raise ValidationError("union of zero expressions")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def repeat(child: Node, low: int, high: int | None) -> Repeat:
    """Bounded recursion ``child{low,high}``."""
    return Repeat(child, low, high)


def star(child: Node) -> Star:
    """``child*``."""
    return Star(child)


def plus(child: Node) -> Repeat:
    """``child+`` == ``child{1,}``."""
    return Repeat(child, 1, None)


def optional(child: Node) -> Repeat:
    """``child?`` == ``child{0,1}``."""
    return Repeat(child, 0, 1)


def from_label_path(path: LabelPath) -> Node:
    """An AST that is exactly one label path (concat of its steps)."""
    return concat(*(Label(step) for step in path))


# -- template parameters -------------------------------------------------------


def params_used(node: Node) -> frozenset[str]:
    """Every ``$name`` placeholder mentioned in the (template) AST."""
    names: set[str] = set()
    for part in node.walk():
        if isinstance(part, ParamRepeat):
            if isinstance(part.low, str):
                names.add(part.low)
            if isinstance(part.high, str):
                names.add(part.high)
    return frozenset(names)


def substitute_params(
    node: Node, params: dict[str, int], max_bound: int | None = None
) -> Node:
    """Resolve every :class:`ParamRepeat` placeholder to a literal bound.

    ``params`` maps placeholder names to integer bounds; the result is
    a concrete, evaluable AST.  Bound validation (non-negative,
    ``low <= high``, optional ``max_bound`` cap) happens here — bind
    time — so a bad binding fails before any planning or execution.
    """

    def resolve(bound: int | str | None) -> int | None:
        if not isinstance(bound, str):
            return bound
        if bound not in params:
            raise ValidationError(f"missing value for parameter ${bound}")
        value = params[bound]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"parameter ${bound} must be an integer repetition bound, "
                f"got {value!r}"
            )
        if value < 0:
            raise ValidationError(
                f"parameter ${bound} must be >= 0, got {value}"
            )
        if max_bound is not None and value > max_bound:
            raise ValidationError(
                f"parameter ${bound}={value} exceeds the maximum "
                f"repetition bound {max_bound}"
            )
        return value

    def rebuild(part: Node) -> Node:
        if isinstance(part, ParamRepeat):
            return Repeat(
                rebuild(part.child), resolve(part.low), resolve(part.high)
            )
        if isinstance(part, Concat):
            return Concat(tuple(rebuild(p) for p in part.parts))
        if isinstance(part, Union):
            return Union(tuple(rebuild(p) for p in part.parts))
        if isinstance(part, Repeat):
            return Repeat(rebuild(part.child), part.low, part.high)
        if isinstance(part, Star):
            return Star(rebuild(part.child))
        if isinstance(part, Inverse):
            return Inverse(rebuild(part.child))
        return part

    return rebuild(node)
