"""Deterministic finite automata over navigation steps.

Completes the automaton substrate (approach 1): the Thompson NFA from
:mod:`repro.rpq.automaton` is determinized by subset construction and
minimized by Hopcroft-style partition refinement.  A DFA product
evaluation visits each (node, state) pair at most once with no epsilon
bookkeeping, trading construction cost for evaluation speed — the
classic engineering choice automaton-based RPQ systems make.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.graph.graph import Graph, Step
from repro.rpq.ast import Node
from repro.rpq.automaton import NFA, compile_ast

Pair = tuple[int, int]


@dataclass
class DFA:
    """A deterministic automaton: one start state, a set of finals."""

    start: int = 0
    state_count: int = 1
    finals: frozenset[int] = frozenset()
    #: state -> step -> single successor state
    transitions: dict[int, dict[Step, int]] = field(default_factory=dict)

    def successor(self, state: int, step: Step) -> int | None:
        return self.transitions.get(state, {}).get(step)

    def out_steps(self, state: int) -> frozenset[Step]:
        return frozenset(self.transitions.get(state, {}))

    def accepts_empty(self) -> bool:
        return self.start in self.finals

    def accepts(self, word: tuple[Step, ...]) -> bool:
        """Does the DFA accept this step word?"""
        state: int | None = self.start
        for step in word:
            state = self.successor(state, step)
            if state is None:
                return False
        return state in self.finals


def determinize(nfa: NFA) -> DFA:
    """Subset construction (only reachable subsets are materialized)."""
    start_set = nfa.eps_closure(nfa.start)
    numbering: dict[frozenset[int], int] = {start_set: 0}
    transitions: dict[int, dict[Step, int]] = {}
    finals: set[int] = set()
    queue: deque[frozenset[int]] = deque([start_set])
    while queue:
        subset = queue.popleft()
        subset_id = numbering[subset]
        if nfa.accept in subset:
            finals.add(subset_id)
        outgoing: dict[Step, set[int]] = {}
        for state in subset:
            for step in nfa.out_steps(state):
                outgoing.setdefault(step, set()).update(
                    nfa.step_targets(state, step)
                )
        for step, raw_targets in outgoing.items():
            closure = nfa.eps_closure_set(frozenset(raw_targets))
            successor_id = numbering.get(closure)
            if successor_id is None:
                successor_id = len(numbering)
                numbering[closure] = successor_id
                queue.append(closure)
            transitions.setdefault(subset_id, {})[step] = successor_id
    return DFA(
        start=0,
        state_count=len(numbering),
        finals=frozenset(finals),
        transitions=transitions,
    )


def minimize(dfa: DFA) -> DFA:
    """Partition-refinement minimization (partial-transition aware).

    States are initially split into accepting / non-accepting; blocks
    are refined until every pair of states in a block agrees, for each
    step, on the *block* of its successor (missing transitions count as
    a distinguished sink).  The quotient automaton is returned.
    """
    alphabet = sorted(
        {step for by_step in dfa.transitions.values() for step in by_step},
        key=lambda step: step.encode(),
    )
    # block id per state; -1 marks the implicit dead state.
    block_of = [
        0 if state in dfa.finals else 1 for state in range(dfa.state_count)
    ]

    changed = True
    while changed:
        changed = False
        signature_to_block: dict[tuple, int] = {}
        next_blocks = [0] * dfa.state_count
        for state in range(dfa.state_count):
            successor_blocks = []
            for step in alphabet:
                successor = dfa.successor(state, step)
                successor_blocks.append(
                    -1 if successor is None else block_of[successor]
                )
            signature = (block_of[state], tuple(successor_blocks))
            block = signature_to_block.setdefault(
                signature, len(signature_to_block)
            )
            next_blocks[state] = block
        if next_blocks != block_of:
            block_of = next_blocks
            changed = True

    block_count = max(block_of) + 1 if block_of else 1
    transitions: dict[int, dict[Step, int]] = {}
    for state in range(dfa.state_count):
        block = block_of[state]
        for step, successor in dfa.transitions.get(state, {}).items():
            transitions.setdefault(block, {})[step] = block_of[successor]
    finals = frozenset(block_of[state] for state in dfa.finals)
    return DFA(
        start=block_of[dfa.start],
        state_count=block_count,
        finals=finals,
        transitions=transitions,
    )


def compile_dfa(query: Node, minimized: bool = True) -> DFA:
    """AST -> (minimized) DFA."""
    dfa = determinize(compile_ast(query))
    return minimize(dfa) if minimized else dfa


def evaluate(graph: Graph, query: Node) -> set[Pair]:
    """All-pairs evaluation via DFA × graph product BFS."""
    dfa = compile_dfa(query)
    result: set[Pair] = set()
    for source in graph.node_ids():
        for target in evaluate_from(graph, dfa, source):
            result.add((source, target))
    return result


def evaluate_from(graph: Graph, dfa: DFA, source: int) -> set[int]:
    """All targets of ``source`` under the DFA."""
    targets: set[int] = set()
    start = (source, dfa.start)
    visited = {start}
    queue = deque([start])
    if dfa.start in dfa.finals:
        targets.add(source)
    while queue:
        node, state = queue.popleft()
        for step in dfa.out_steps(state):
            next_state = dfa.successor(state, step)
            assert next_state is not None
            for neighbor in graph.step_neighbors(node, step):
                pair = (neighbor, next_state)
                if pair not in visited:
                    visited.add(pair)
                    queue.append(pair)
                    if next_state in dfa.finals:
                        targets.add(neighbor)
    return targets
