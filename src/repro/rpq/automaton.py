"""Nondeterministic finite automata over navigation steps.

This powers the automaton/search baseline (approach 1 in the paper's
introduction): an RPQ is compiled to an NFA whose alphabet is the set of
:class:`~repro.graph.graph.Step` symbols, then evaluated by a BFS over
the product of the graph and the automaton.

Construction is Thompson-style with epsilon transitions; bounded
recursion ``R{i,j}`` becomes ``i`` mandatory copies followed by
``j - i`` skippable copies.  :meth:`NFA.eps_closure` memoizes closures,
since product search queries them per visited pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RewriteError
from repro.graph.graph import Step
from repro.rpq.ast import (
    Concat,
    Epsilon,
    Inverse,
    Label,
    Node,
    Repeat,
    Star,
    Union,
)
from repro.rpq.rewrite import push_inverse


@dataclass
class NFA:
    """An NFA with a single start state and a single accepting state."""

    start: int = 0
    accept: int = 1
    state_count: int = 2
    #: state -> step -> set of successor states
    transitions: dict[int, dict[Step, set[int]]] = field(default_factory=dict)
    #: state -> set of epsilon-successor states
    epsilon: dict[int, set[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._closure_cache: dict[int, frozenset[int]] = {}

    # -- construction helpers -------------------------------------------------

    def new_state(self) -> int:
        state = self.state_count
        self.state_count += 1
        return state

    def add_transition(self, source: int, step: Step, target: int) -> None:
        self.transitions.setdefault(source, {}).setdefault(step, set()).add(target)
        self._closure_cache.clear()

    def add_epsilon(self, source: int, target: int) -> None:
        if source != target:
            self.epsilon.setdefault(source, set()).add(target)
            self._closure_cache.clear()

    # -- queries --------------------------------------------------------------------

    def eps_closure(self, state: int) -> frozenset[int]:
        """All states reachable from ``state`` via epsilon moves."""
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for successor in self.epsilon.get(current, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        closure = frozenset(seen)
        self._closure_cache[state] = closure
        return closure

    def eps_closure_set(self, states: frozenset[int]) -> frozenset[int]:
        """Union of epsilon closures of a state set."""
        result: set[int] = set()
        for state in states:
            result |= self.eps_closure(state)
        return frozenset(result)

    def step_targets(self, state: int, step: Step) -> frozenset[int]:
        """Successors of ``state`` on symbol ``step`` (no closure applied)."""
        return frozenset(self.transitions.get(state, {}).get(step, ()))

    def accepts_empty(self) -> bool:
        """Whether the automaton accepts the empty word."""
        return self.accept in self.eps_closure(self.start)

    def alphabet(self) -> frozenset[Step]:
        """All step symbols appearing on any transition."""
        symbols: set[Step] = set()
        for by_step in self.transitions.values():
            symbols.update(by_step)
        return frozenset(symbols)

    def out_steps(self, state: int) -> frozenset[Step]:
        """Symbols with at least one transition out of ``state``."""
        return frozenset(self.transitions.get(state, {}))


def compile_ast(node: Node) -> NFA:
    """Compile an RPQ AST (inverse allowed) to an NFA."""
    nfa = NFA()
    prepared = push_inverse(node)
    _build(nfa, prepared, nfa.start, nfa.accept)
    return nfa


def _build(nfa: NFA, node: Node, entry: int, exit_: int) -> None:
    """Wire ``node`` between the existing states ``entry`` and ``exit_``."""
    if isinstance(node, Epsilon):
        nfa.add_epsilon(entry, exit_)
        return
    if isinstance(node, Label):
        nfa.add_transition(entry, node.step, exit_)
        return
    if isinstance(node, Concat):
        current = entry
        for part in node.parts[:-1]:
            nxt = nfa.new_state()
            _build(nfa, part, current, nxt)
            current = nxt
        _build(nfa, node.parts[-1], current, exit_)
        return
    if isinstance(node, Union):
        for part in node.parts:
            inner_entry = nfa.new_state()
            inner_exit = nfa.new_state()
            nfa.add_epsilon(entry, inner_entry)
            _build(nfa, part, inner_entry, inner_exit)
            nfa.add_epsilon(inner_exit, exit_)
        return
    if isinstance(node, Star):
        hub = nfa.new_state()
        nfa.add_epsilon(entry, hub)
        nfa.add_epsilon(hub, exit_)
        inner_entry = nfa.new_state()
        inner_exit = nfa.new_state()
        nfa.add_epsilon(hub, inner_entry)
        _build(nfa, node.child, inner_entry, inner_exit)
        nfa.add_epsilon(inner_exit, hub)
        return
    if isinstance(node, Repeat):
        current = entry
        for _ in range(node.low):
            nxt = nfa.new_state()
            _build(nfa, node.child, current, nxt)
            current = nxt
        if node.high is None:
            star_exit = nfa.new_state()
            _build(nfa, Star(node.child), current, star_exit)
            nfa.add_epsilon(star_exit, exit_)
            return
        for _ in range(node.high - node.low):
            nxt = nfa.new_state()
            nfa.add_epsilon(current, exit_)  # stop early
            _build(nfa, node.child, current, nxt)
            current = nxt
        nfa.add_epsilon(current, exit_)
        return
    if isinstance(node, Inverse):
        raise RewriteError("inverse should have been pushed before NFA build")
    raise RewriteError(f"unknown AST node {type(node).__name__}")
