"""Algebraic RPQ simplification.

An optional pre-rewrite pass that shrinks queries before expansion.
Every rule is a *semantic identity* over arbitrary graphs (each is
property-tested against the reference evaluator):

* flattening — nested concats/unions are flattened (constructors do
  this already; re-simplification keeps it canonical);
* epsilon elimination — ``eps ∘ R == R``;
* union deduplication — ``R ∪ R == R`` (syntactic duplicates);
* epsilon absorption — ``eps ∪ R == R`` when ``R`` is nullable
  (already accepts the empty word);
* trivial repeats — ``R{1,1} == R``, ``R{0,0} == eps``,
  ``eps{i,j} == eps``;
* nested repeats — ``R{a,b}{c,d} == R{a·c, b·d}`` when the inner
  ranges tile contiguously (``a·(c+1) <= b·c + 1``), e.g.
  ``R{1,2}{1,2} == R{1,4}`` but *not* ``R{2,2}{1,2}`` (can't make 5);
* star collapsing — ``(R*)* == R*``, ``R*{i,j} == R*`` for ``i == 0``
  or ``j >= 1``, ``R{0,n}* == R*``.

The pass runs to a fixpoint bottom-up; it never grows the AST.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.rpq import ast
from repro.rpq.ast import (
    Concat,
    Epsilon,
    Inverse,
    Label,
    Node,
    Repeat,
    Star,
    Union,
)


def nullable(node: Node) -> bool:
    """Does the expression's language contain the empty word?

    (Sound for answering "is identity included": eps-containment at the
    language level implies identity-containment at the relation level.)
    """
    if isinstance(node, Epsilon):
        return True
    if isinstance(node, Label):
        return False
    if isinstance(node, Concat):
        return all(nullable(part) for part in node.parts)
    if isinstance(node, Union):
        return any(nullable(part) for part in node.parts)
    if isinstance(node, Star):
        return True
    if isinstance(node, Repeat):
        return node.low == 0 or nullable(node.child)
    if isinstance(node, Inverse):
        return nullable(node.child)
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def simplify(node: Node) -> Node:
    """Apply the identities above bottom-up until a fixpoint."""
    current = node
    for _ in range(node.size() + 1):
        simplified = _simplify_once(current)
        if simplified == current:
            return current
        current = simplified
    return current


def _simplify_once(node: Node) -> Node:
    if isinstance(node, (Epsilon, Label)):
        return node
    if isinstance(node, Inverse):
        return Inverse(_simplify_once(node.child))
    if isinstance(node, Concat):
        parts = [_simplify_once(part) for part in node.parts]
        parts = [part for part in parts if not isinstance(part, Epsilon)]
        if not parts:
            return Epsilon()
        return ast.concat(*parts)
    if isinstance(node, Union):
        parts = [_simplify_once(part) for part in node.parts]
        deduped: list[Node] = []
        seen: set[Node] = set()
        for part in parts:
            if part not in seen:
                seen.add(part)
                deduped.append(part)
        # eps ∪ R == R when some branch is already nullable.
        non_eps = [part for part in deduped if not isinstance(part, Epsilon)]
        if len(non_eps) < len(deduped) and any(nullable(p) for p in non_eps):
            deduped = non_eps
        return ast.union(*deduped)
    if isinstance(node, Star):
        child = _simplify_once(node.child)
        # (R*)* == R*;  (R{0,n})* == R*;  (R{1,n})* == R*
        if isinstance(child, Star):
            return child
        if isinstance(child, Repeat) and child.low in (0, 1):
            return Star(child.child)
        if isinstance(child, Epsilon):
            return Epsilon()
        return Star(child)
    if isinstance(node, Repeat):
        child = _simplify_once(node.child)
        if isinstance(child, Epsilon):
            return Epsilon()
        if (node.low, node.high) == (1, 1):
            return child
        if (node.low, node.high) == (0, 0):
            return Epsilon()
        # R*{i,j}: any repetition of R* is R* when 0 or >=1 copies are
        # allowed (and i copies of R* is still R* for i >= 1).
        if isinstance(child, Star):
            return child if node.low <= 1 else Star(child.child)
        if isinstance(child, Repeat):
            merged = _merge_repeats(child, node.low, node.high)
            if merged is not None:
                return merged
        return Repeat(child, node.low, node.high)
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def _merge_repeats(
    inner: Repeat, outer_low: int, outer_high: int | None
) -> Node | None:
    """``R{a,b}{c,d} -> R{a*c, b*d}`` when exponent ranges tile.

    The outer repetition chooses m ∈ [c,d] copies of ``R{a,b}``; the
    reachable exponents are ⋃_m [a·m, b·m].  These intervals cover
    [a·c, b·d] without gaps iff consecutive intervals touch:
    ``a·(m+1) <= b·m + 1`` for all m in [c, d-1]; since the constraint
    tightens as m shrinks, checking m = c suffices.  Unbounded outer
    (d = None) additionally requires a <= 1 asymptotically — covered by
    the same check plus b >= a ensured by construction.
    """
    a, b = inner.low, inner.high
    if b is None:
        # R{a,}{c,d}: exponents reach everything >= a*c.
        if outer_high is None or outer_high >= 1:
            low = a * outer_low
            if outer_low == 0:
                return Repeat(Repeat(inner.child, a, None), 0, 1)
            return Repeat(inner.child, low, None)
        return None
    c, d = outer_low, outer_high
    if d is None:
        if c == 0:
            return None  # R{a,b}{0,}: gaps unless a<=1; keep simple
        if a * (c + 1) <= b * c + 1 and (a <= 1 or b >= a + 1 or a == b == 1):
            # contiguity holds for all m >= c because it holds at c and
            # the gap a·(m+1) - (b·m + 1) is non-increasing when a <= b.
            if a * (c + 1) <= b * c + 1:
                return Repeat(inner.child, a * c, None)
        return None
    if c == 0:
        # m = 0 contributes exponent 0 (epsilon); the rest must tile
        # from a·1 upward.
        if d == 0:
            return Epsilon()
        rest = _merge_repeats(inner, 1, d)
        if isinstance(rest, Repeat) and rest.low <= 1:
            return Repeat(rest.child, 0, rest.high)
        return None
    if all(a * (m + 1) <= b * m + 1 for m in range(c, d)):
        return Repeat(inner.child, a * c, b * d)
    return None
