"""Rewriting RPQs into the planner's normal form (Section 4, steps 1-2).

The pipeline is::

    parse text ──► push_inverse ──► bound_star ──► expand_recursion
                                              ──► pull_up_unions ──► NormalForm

* :func:`push_inverse` eliminates syntactic inverse by distributing it
  down to steps (``^(a/b) == ^b/^a`` etc.);
* :func:`bound_star` replaces unbounded recursion by bounded recursion
  using the paper's ``n(G)`` observation (``R* == R{0,n(G)}``);
* :func:`expand_recursion` unrolls every ``R{i,j}`` into a union of
  powers (step 1 of the paper);
* :func:`pull_up_unions` distributes concatenation over union until the
  query is a flat union of *label paths* (step 2 of the paper).

The result is a :class:`NormalForm`: an optional epsilon disjunct plus a
duplicate-free list of :class:`~repro.graph.graph.LabelPath`.
Expansion is exponential in the worst case, so both rewrites take a
``max_disjuncts`` guard and raise :class:`RewriteError` beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RewriteError
from repro.graph.graph import LabelPath, Step
from repro.rpq import ast
from repro.rpq.ast import (
    Concat,
    Epsilon,
    Inverse,
    Label,
    Node,
    Repeat,
    Star,
    Union,
)

#: Default ceiling on the number of label-path disjuncts a query may
#: expand to.  The paper's queries expand to a handful; this guard stops
#: adversarial ``(a|b|c){0,20}`` blow-ups with a clear error.
DEFAULT_MAX_DISJUNCTS = 4096

#: Default ceiling on the *total* number of steps across all disjuncts.
#: A star bounded at n(G) on a large graph expands into few but very
#: long disjuncts (``l{1,n}`` is n paths of total length ~n²/2); past
#: this budget the executor's fixpoint fallback is strictly better, so
#: :func:`normalize` refuses with :class:`RewriteError`.  The paper's
#: largest worked query, ``(sup|wF|wF⁻){4,5}``, totals 1,539 steps.
DEFAULT_MAX_TOTAL_STEPS = 2048


@dataclass(frozen=True, slots=True)
class NormalForm:
    """A query as a flat union of label paths (plus optional epsilon)."""

    has_epsilon: bool
    paths: tuple[LabelPath, ...]

    @property
    def disjunct_count(self) -> int:
        return len(self.paths) + (1 if self.has_epsilon else 0)

    def max_length(self) -> int:
        """Length of the longest disjunct (0 when only epsilon)."""
        return max((len(path) for path in self.paths), default=0)

    def __str__(self) -> str:
        parts = (["<eps>"] if self.has_epsilon else []) + [
            str(path) for path in self.paths
        ]
        return " | ".join(parts) if parts else "<empty>"


def push_inverse(node: Node) -> Node:
    """Eliminate :class:`Inverse` nodes by pushing them onto steps."""
    return _push(node, inverted=False)


def _push(node: Node, inverted: bool) -> Node:
    if isinstance(node, Inverse):
        return _push(node.child, not inverted)
    if isinstance(node, Epsilon):
        return node
    if isinstance(node, Label):
        return Label(node.step.inverted()) if inverted else node
    if isinstance(node, Concat):
        parts = [_push(part, inverted) for part in node.parts]
        if inverted:
            parts.reverse()
        return ast.concat(*parts)
    if isinstance(node, Union):
        return ast.union(*(_push(part, inverted) for part in node.parts))
    if isinstance(node, Repeat):
        return Repeat(_push(node.child, inverted), node.low, node.high)
    if isinstance(node, Star):
        return Star(_push(node.child, inverted))
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def bound_star(node: Node, bound: int) -> Node:
    """Replace unbounded recursion by bounded recursion.

    ``R*`` becomes ``R{0,bound}`` and ``R{i,}`` becomes ``R{i,max(i,bound)}``;
    ``bound`` should be the graph's ``n(G)``
    (:func:`repro.graph.stats.star_bound`), which Section 2.2 argues is
    always sufficient.
    """
    if bound < 0:
        raise RewriteError(f"star bound must be >= 0, got {bound}")
    if isinstance(node, Star):
        return Repeat(bound_star(node.child, bound), 0, bound)
    if isinstance(node, Repeat):
        high = node.high if node.high is not None else max(node.low, bound)
        return Repeat(bound_star(node.child, bound), node.low, high)
    if isinstance(node, (Epsilon, Label)):
        return node
    if isinstance(node, Concat):
        return ast.concat(*(bound_star(part, bound) for part in node.parts))
    if isinstance(node, Union):
        return ast.union(*(bound_star(part, bound) for part in node.parts))
    if isinstance(node, Inverse):
        return Inverse(bound_star(node.child, bound))
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def expand_recursion(node: Node, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS) -> Node:
    """Step 1 of the paper: unroll ``R{i,j}`` into ``R^i ∪ ... ∪ R^j``.

    The input must already be inverse-free and star-free (apply
    :func:`push_inverse` and :func:`bound_star` first).
    """
    if isinstance(node, (Epsilon, Label)):
        return node
    if isinstance(node, Concat):
        return ast.concat(
            *(expand_recursion(part, max_disjuncts) for part in node.parts)
        )
    if isinstance(node, Union):
        return ast.union(
            *(expand_recursion(part, max_disjuncts) for part in node.parts)
        )
    if isinstance(node, Repeat):
        if node.high is None:
            raise RewriteError(
                "unbounded recursion survived to expansion; call bound_star first"
            )
        child = expand_recursion(node.child, max_disjuncts)
        if node.high - node.low + 1 > max_disjuncts:
            raise RewriteError(
                f"recursion {{{node.low},{node.high}}} expands past the "
                f"disjunct limit {max_disjuncts}"
            )
        powers: list[Node] = []
        for exponent in range(node.low, node.high + 1):
            powers.append(_power(child, exponent))
        return ast.union(*powers) if len(powers) > 1 else powers[0]
    if isinstance(node, Star):
        raise RewriteError("Kleene star survived to expansion; call bound_star first")
    if isinstance(node, Inverse):
        raise RewriteError("inverse survived to expansion; call push_inverse first")
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def _power(node: Node, exponent: int) -> Node:
    if exponent == 0:
        return Epsilon()
    return ast.concat(*([node] * exponent))


def pull_up_unions(
    node: Node, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
) -> list[tuple[Step, ...]]:
    """Step 2 of the paper: distribute concat over union.

    Returns the disjuncts as step tuples; the empty tuple stands for the
    epsilon disjunct.  Input must be recursion-, star- and inverse-free.
    """
    disjuncts = _disjuncts(node, max_disjuncts)
    seen: set[tuple[Step, ...]] = set()
    unique: list[tuple[Step, ...]] = []
    for disjunct in disjuncts:
        if disjunct not in seen:
            seen.add(disjunct)
            unique.append(disjunct)
    return unique


def _disjuncts(node: Node, max_disjuncts: int) -> list[tuple[Step, ...]]:
    if isinstance(node, Epsilon):
        return [()]
    if isinstance(node, Label):
        return [(node.step,)]
    if isinstance(node, Union):
        result: list[tuple[Step, ...]] = []
        for part in node.parts:
            result.extend(_disjuncts(part, max_disjuncts))
            if len(result) > max_disjuncts:
                raise RewriteError(
                    f"query expands past the disjunct limit {max_disjuncts}"
                )
        return result
    if isinstance(node, Concat):
        result = [()]
        for part in node.parts:
            part_disjuncts = _disjuncts(part, max_disjuncts)
            combined = [
                left + right for left in result for right in part_disjuncts
            ]
            if len(combined) > max_disjuncts:
                raise RewriteError(
                    f"query expands past the disjunct limit {max_disjuncts}"
                )
            result = combined
        return result
    raise RewriteError(
        f"cannot pull unions out of {type(node).__name__}; "
        "run push_inverse/bound_star/expand_recursion first"
    )


def normalize(
    node: Node,
    star_bound_value: int,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_total_steps: int = DEFAULT_MAX_TOTAL_STEPS,
) -> NormalForm:
    """The full rewrite pipeline, producing a :class:`NormalForm`.

    Raises :class:`RewriteError` when the expansion exceeds either the
    disjunct budget or the total-steps budget; callers that can fall
    back to fixpoint evaluation (the executor) catch it there.
    """
    prepared = bound_star(push_inverse(node), star_bound_value)
    expanded = expand_recursion(prepared, max_disjuncts)
    raw = pull_up_unions(expanded, max_disjuncts)
    total_steps = sum(len(disjunct) for disjunct in raw)
    if total_steps > max_total_steps:
        raise RewriteError(
            f"query expands to {total_steps} total steps, past the budget "
            f"{max_total_steps}; use fixpoint evaluation instead"
        )
    has_epsilon = any(disjunct == () for disjunct in raw)
    paths = tuple(LabelPath(disjunct) for disjunct in raw if disjunct)
    return NormalForm(has_epsilon=has_epsilon, paths=paths)
