"""The RPQ language: AST, parser, rewrites, semantics, automata."""

from repro.rpq import ast
from repro.rpq.parser import parse
from repro.rpq.rewrite import NormalForm, normalize
from repro.rpq.semantics import eval_ast, eval_query

__all__ = ["ast", "parse", "normalize", "NormalForm", "eval_ast", "eval_query"]
