"""Reference set semantics for RPQs (Section 2.2).

This module is the *correctness oracle* of the whole library: a direct
structural-recursion evaluator with no indexes, no planner, and no
cleverness.  Every other evaluation path (the four index strategies, the
automaton baseline, the Datalog baseline) is tested for equality
against :func:`eval_ast` on randomized inputs.

It deliberately stays tuple-set based: the engine's hot paths use the
columnar array-backed twins in :mod:`repro.relation` (packed-int64
joins) and, for ``Star``/``Repeat``, the frontier-based CSR closure in
:mod:`repro.csr` — and those kernels are property-tested against the
set implementations here.  That independence is the point: routing this
module through the engine's kernels would make the oracle circular, so
keep the two in sync semantically and never share code between them.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.graph.graph import Graph, LabelPath
from repro.rpq.ast import (
    Concat,
    Epsilon,
    Inverse,
    Label,
    Node,
    Repeat,
    Star,
    Union,
)
from repro.rpq.parser import parse
from repro.rpq.rewrite import push_inverse

Relation = set[tuple[int, int]]


def identity_relation(graph: Graph) -> Relation:
    """``{(n, n) | n ∈ nodes(G)}`` — the meaning of epsilon."""
    return {(node, node) for node in graph.node_ids()}


def compose(left: Relation, right: Relation) -> Relation:
    """Relational composition ``left ∘ right``."""
    if not left or not right:
        return set()
    by_source: dict[int, list[int]] = {}
    for mid, target in right:
        by_source.setdefault(mid, []).append(target)
    result: Relation = set()
    for source, mid in left:
        targets = by_source.get(mid)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def transitive_fixpoint(graph: Graph, base: Relation, low: int) -> Relation:
    """``base^low ∪ base^{low+1} ∪ ...`` evaluated to fixpoint.

    Uses delta iteration (only newly discovered pairs are re-expanded),
    so cyclic graphs terminate.
    """
    if low == 0:
        accumulated = identity_relation(graph) | base
        start_power = base
    elif low == 1:
        accumulated = set(base)
        start_power = base
    else:
        start_power = relation_power(graph, base, low)
        accumulated = set(start_power)
    delta = set(start_power)
    while delta:
        delta = compose(delta, base) - accumulated
        accumulated |= delta
    return accumulated


def relation_power(graph: Graph, base: Relation, exponent: int) -> Relation:
    """``base^exponent`` under composition (power 0 is the identity)."""
    if exponent == 0:
        return identity_relation(graph)
    result = set(base)
    for _ in range(exponent - 1):
        result = compose(result, base)
        if not result:
            break
    return result


def eval_ast(graph: Graph, node: Node) -> Relation:
    """Evaluate an RPQ AST on a graph, returning id pairs."""
    if isinstance(node, Epsilon):
        return identity_relation(graph)
    if isinstance(node, Label):
        return graph.step_relation(node.step)
    if isinstance(node, Inverse):
        return eval_ast(graph, push_inverse(node))
    if isinstance(node, Concat):
        result = eval_ast(graph, node.parts[0])
        for part in node.parts[1:]:
            if not result:
                return set()
            result = compose(result, eval_ast(graph, part))
        return result
    if isinstance(node, Union):
        result: Relation = set()
        for part in node.parts:
            result |= eval_ast(graph, part)
        return result
    if isinstance(node, Star):
        return transitive_fixpoint(graph, eval_ast(graph, node.child), low=0)
    if isinstance(node, Repeat):
        base = eval_ast(graph, node.child)
        if node.high is None:
            return transitive_fixpoint(graph, base, low=node.low)
        return bounded_powers(graph, base, node.low, node.high)
    raise RewriteError(f"unknown AST node {type(node).__name__}")


def bounded_powers(
    graph: Graph, base: Relation, low: int, high: int
) -> Relation:
    """``base^low ∪ ... ∪ base^high`` with early saturation.

    The sequence of powers of a relation over a finite node set is
    eventually periodic; once a power repeats, every later power (and
    hence the remaining union) has already been accumulated, so large
    bounds like the paper's ``R{0,n(G)}`` terminate after the period.
    """
    accumulated: Relation = set()
    power = relation_power(graph, base, low)
    accumulated |= power
    seen: set[frozenset] = {frozenset(power)}
    for _ in range(low, high):
        if not power:
            break
        power = compose(power, base)
        accumulated |= power
        fingerprint = frozenset(power)
        if fingerprint in seen:
            break
        seen.add(fingerprint)
    return accumulated


def eval_label_path(graph: Graph, path: LabelPath) -> Relation:
    """Evaluate one label path directly (used by the index builder tests)."""
    result = graph.step_relation(path[0])
    for step in path.steps[1:]:
        if not result:
            return set()
        result = compose(result, graph.step_relation(step))
    return result


def eval_query(graph: Graph, text: str) -> set[tuple[str, str]]:
    """Parse and evaluate query text, returning node-name pairs.

    This is the convenience entry point used in documentation examples:

    >>> from repro.graph.examples import figure1_graph
    >>> eval_query(figure1_graph(), "supervisor/^worksFor")
    {('kim', 'sue')}
    """
    pairs = eval_ast(graph, parse(text))
    return graph.pairs_to_names(pairs)
