"""Text syntax for regular path queries.

The concrete syntax follows SPARQL 1.1 property paths where possible::

    query   := union
    union   := concat ('|' concat)*
    concat  := postfix ('/' postfix)*
    postfix := prefix ('*' | '+' | '?' | '{' INT (',' INT?)? '}')*
    prefix  := '^' prefix | atom
    atom    := IDENT | '<eps>' | '(' union ')'

Examples (all from the paper, Section 2.2 / Section 4)::

    supervisor/^worksFor
    (supervisor|worksFor|^worksFor){4,5}
    knows/(knows/worksFor){2,4}/worksFor

``^`` is inverse navigation (the paper's ``l⁻``); it may be applied to
any parenthesized expression, not just labels.  ``R{i}`` abbreviates
``R{i,i}``; ``R{i,}`` and ``R*``/``R+`` are unbounded and are bounded
against a concrete graph during rewriting.

:func:`parse_template` additionally accepts ``$name`` placeholders —
as repetition bounds and as the subject of an optional ``from(...):``
source anchor::

    template := ('from' '(' (IDENT | '$'IDENT) ')' ':')? union
    bounds   := '{' (INT | '$'IDENT) (',' (INT | '$'IDENT)?)? '}'

    from($v): knows{1,$n}/worksFor

Placeholders are resolved at *bind* time by the prepared-statement
layer (:meth:`repro.api.GraphDatabase.prepare`); :func:`parse` rejects
them with a pointed error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.rpq import ast
from repro.rpq.ast import Node

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<eps><eps>|ε)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>\d+)
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[\^/|*+?{},():])
    """,
    re.VERBOSE,
)

#: Hard cap on repetition bounds accepted by the parser; expanding a
#: recursion is exponential in the bound, so absurd literals are
#: rejected early with a clear message.
MAX_REPEAT_BOUND = 10_000


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # 'eps' | 'ident' | 'int' | one of the symbol characters
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Split query text into tokens; raise :class:`ParseError` on junk."""
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                position=position,
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        if kind == "sym":
            kind = value
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str, allow_params: bool = False):
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0
        self._allow_params = allow_params

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", position=len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r} "
                f"at offset {token.position}",
                position=token.position,
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Node:
        node = self._union()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected {trailing.text!r} after end of query "
                f"at offset {trailing.position}",
                position=trailing.position,
            )
        return node

    def _union(self) -> Node:
        parts = [self._concat()]
        while self._accept("|"):
            parts.append(self._concat())
        return ast.union(*parts)

    def _concat(self) -> Node:
        parts = [self._postfix()]
        while self._accept("/"):
            parts.append(self._postfix())
        return ast.concat(*parts)

    def _postfix(self) -> Node:
        node = self._prefix()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token.kind == "*":
                self._next()
                node = ast.star(node)
            elif token.kind == "+":
                self._next()
                node = ast.plus(node)
            elif token.kind == "?":
                self._next()
                node = ast.optional(node)
            elif token.kind == "{":
                node = self._bounds(node)
            else:
                return node

    def _bounds(self, node: Node) -> Node:
        open_token = self._expect("{")
        low = self._bound()
        high: int | str | None
        if self._accept(","):
            if self._peek() is not None and self._peek().kind in ("int", "param"):
                high = self._bound()
            else:
                high = None
        else:
            high = low
        self._expect("}")
        if isinstance(low, str) or isinstance(high, str):
            return ast.ParamRepeat(node, low, high)
        if high is not None and high < low:
            raise ParseError(
                f"repetition bounds {{{low},{high}}} are inverted "
                f"at offset {open_token.position}",
                position=open_token.position,
            )
        return ast.repeat(node, low, high)

    def _bound(self) -> int | str:
        """One repetition bound: a literal, or ``$name`` in templates."""
        token = self._peek()
        if token is not None and token.kind == "param":
            self._next()
            if not self._allow_params:
                raise ParseError(
                    f"parameter {token.text!r} is only allowed in templates "
                    f"(parse with parse_template / GraphDatabase.prepare) "
                    f"at offset {token.position}",
                    position=token.position,
                )
            return token.text[1:]
        return self._int()

    def _int(self) -> int:
        token = self._expect("int")
        value = int(token.text)
        if value > MAX_REPEAT_BOUND:
            raise ParseError(
                f"repetition bound {value} exceeds the maximum "
                f"{MAX_REPEAT_BOUND}",
                position=token.position,
            )
        return value

    def _prefix(self) -> Node:
        if self._accept("^"):
            return ast.Inverse(self._prefix())
        return self._atom()

    def _atom(self) -> Node:
        token = self._next()
        if token.kind == "ident":
            return ast.label(token.text)
        if token.kind == "eps":
            return ast.Epsilon()
        if token.kind == "(":
            node = self._union()
            self._expect(")")
            return node
        if token.kind == "param":
            raise ParseError(
                f"parameter {token.text!r} may only appear as a repetition "
                f"bound or a from(...) anchor, not as a path atom, "
                f"at offset {token.position}",
                position=token.position,
            )
        raise ParseError(
            f"expected a label, '<eps>' or '(' but found {token.text!r} "
            f"at offset {token.position}",
            position=token.position,
        )


def parse(text: str) -> Node:
    """Parse RPQ text into an AST.

    >>> str(parse("supervisor/^worksFor"))
    'supervisor/^worksFor'
    >>> str(parse("(supervisor|worksFor|^worksFor){4,5}"))
    '(supervisor|worksFor|^worksFor){4,5}'
    """
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty query text")
    return _Parser(text).parse()


@dataclass(frozen=True, slots=True)
class Template:
    """A parsed RPQ template: a body with placeholders, plus an anchor.

    ``node`` may contain :class:`repro.rpq.ast.ParamRepeat` placeholder
    bounds; ``anchor_param`` / ``anchor_name`` capture an optional
    ``from($v):`` / ``from(alice):`` source anchor (at most one is
    set).  Parameter resolution lives in
    :func:`repro.rpq.ast.substitute_params`; the prepared-statement
    layer (:mod:`repro.engine.prepared`) does the binding.
    """

    text: str
    node: Node
    anchor_param: str | None = None
    anchor_name: str | None = None

    @property
    def bound_params(self) -> frozenset[str]:
        """Placeholder names appearing as repetition bounds."""
        return ast.params_used(self.node)

    @property
    def params(self) -> frozenset[str]:
        """Every placeholder name a binding must supply."""
        if self.anchor_param is None:
            return self.bound_params
        return self.bound_params | {self.anchor_param}

    @property
    def anchored(self) -> bool:
        return self.anchor_param is not None or self.anchor_name is not None

    def __str__(self) -> str:
        if self.anchor_param is not None:
            return f"from(${self.anchor_param}): {self.node}"
        if self.anchor_name is not None:
            return f"from({self.anchor_name}): {self.node}"
        return str(self.node)


def parse_template(text: str) -> Template:
    """Parse template text: ``$name`` bounds and a ``from(...):`` anchor.

    >>> template = parse_template("from($v): knows{1,$n}/worksFor")
    >>> sorted(template.params)
    ['n', 'v']
    >>> str(parse_template("knows{1,$n}").node)
    'knows{1,$n}'

    A template with no placeholders is legal (preparing a fixed query
    still skips re-planning on every run).
    """
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty template text")
    parser = _Parser(text, allow_params=True)
    anchor_param: str | None = None
    anchor_name: str | None = None
    head = parser._peek()
    if (
        head is not None
        and head.kind == "ident"
        and head.text == "from"
        and parser._index + 1 < len(parser._tokens)
        and parser._tokens[parser._index + 1].kind == "("
    ):
        parser._next()  # 'from'
        parser._next()  # '('
        subject = parser._next()
        if subject.kind == "param":
            anchor_param = subject.text[1:]
        elif subject.kind == "ident":
            anchor_name = subject.text
        else:
            raise ParseError(
                f"expected a node name or $parameter inside from(...), "
                f"found {subject.text!r} at offset {subject.position}",
                position=subject.position,
            )
        parser._expect(")")
        parser._expect(":")
    node = parser.parse()
    return Template(
        text=text,
        node=node,
        anchor_param=anchor_param,
        anchor_name=anchor_name,
    )
