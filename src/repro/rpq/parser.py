"""Text syntax for regular path queries.

The concrete syntax follows SPARQL 1.1 property paths where possible::

    query   := union
    union   := concat ('|' concat)*
    concat  := postfix ('/' postfix)*
    postfix := prefix ('*' | '+' | '?' | '{' INT (',' INT?)? '}')*
    prefix  := '^' prefix | atom
    atom    := IDENT | '<eps>' | '(' union ')'

Examples (all from the paper, Section 2.2 / Section 4)::

    supervisor/^worksFor
    (supervisor|worksFor|^worksFor){4,5}
    knows/(knows/worksFor){2,4}/worksFor

``^`` is inverse navigation (the paper's ``l⁻``); it may be applied to
any parenthesized expression, not just labels.  ``R{i}`` abbreviates
``R{i,i}``; ``R{i,}`` and ``R*``/``R+`` are unbounded and are bounded
against a concrete graph during rewriting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.rpq import ast
from repro.rpq.ast import Node

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<eps><eps>|ε)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>\d+)
  | (?P<sym>[\^/|*+?{},()])
    """,
    re.VERBOSE,
)

#: Hard cap on repetition bounds accepted by the parser; expanding a
#: recursion is exponential in the bound, so absurd literals are
#: rejected early with a clear message.
MAX_REPEAT_BOUND = 10_000


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # 'eps' | 'ident' | 'int' | one of the symbol characters
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Split query text into tokens; raise :class:`ParseError` on junk."""
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                position=position,
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        if kind == "sym":
            kind = value
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", position=len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r} "
                f"at offset {token.position}",
                position=token.position,
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Node:
        node = self._union()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected {trailing.text!r} after end of query "
                f"at offset {trailing.position}",
                position=trailing.position,
            )
        return node

    def _union(self) -> Node:
        parts = [self._concat()]
        while self._accept("|"):
            parts.append(self._concat())
        return ast.union(*parts)

    def _concat(self) -> Node:
        parts = [self._postfix()]
        while self._accept("/"):
            parts.append(self._postfix())
        return ast.concat(*parts)

    def _postfix(self) -> Node:
        node = self._prefix()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token.kind == "*":
                self._next()
                node = ast.star(node)
            elif token.kind == "+":
                self._next()
                node = ast.plus(node)
            elif token.kind == "?":
                self._next()
                node = ast.optional(node)
            elif token.kind == "{":
                node = self._bounds(node)
            else:
                return node

    def _bounds(self, node: Node) -> Node:
        open_token = self._expect("{")
        low = self._int()
        high: int | None
        if self._accept(","):
            if self._peek() is not None and self._peek().kind == "int":
                high = self._int()
            else:
                high = None
        else:
            high = low
        self._expect("}")
        if high is not None and high < low:
            raise ParseError(
                f"repetition bounds {{{low},{high}}} are inverted "
                f"at offset {open_token.position}",
                position=open_token.position,
            )
        return ast.repeat(node, low, high)

    def _int(self) -> int:
        token = self._expect("int")
        value = int(token.text)
        if value > MAX_REPEAT_BOUND:
            raise ParseError(
                f"repetition bound {value} exceeds the maximum "
                f"{MAX_REPEAT_BOUND}",
                position=token.position,
            )
        return value

    def _prefix(self) -> Node:
        if self._accept("^"):
            return ast.Inverse(self._prefix())
        return self._atom()

    def _atom(self) -> Node:
        token = self._next()
        if token.kind == "ident":
            return ast.label(token.text)
        if token.kind == "eps":
            return ast.Epsilon()
        if token.kind == "(":
            node = self._union()
            self._expect(")")
            return node
        raise ParseError(
            f"expected a label, '<eps>' or '(' but found {token.text!r} "
            f"at offset {token.position}",
            position=token.position,
        )


def parse(text: str) -> Node:
    """Parse RPQ text into an AST.

    >>> str(parse("supervisor/^worksFor"))
    'supervisor/^worksFor'
    >>> str(parse("(supervisor|worksFor|^worksFor){4,5}"))
    '(supervisor|worksFor|^worksFor){4,5}'
    """
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty query text")
    return _Parser(text).parse()
