"""Witness extraction: *why* is a pair in the answer?

RPQ semantics returns node pairs, but users (and the paper's demo
audience) routinely ask for an actual path — the sequence of nodes and
steps whose label word is in the query's language.  This module
extracts a shortest such witness by running the NFA-product BFS with
parent pointers.

A witness is a list of ``(node, step, node)`` hops (empty for pairs
justified by the empty word, e.g. epsilon or ``R*`` identity pairs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graph.graph import Graph, Step
from repro.rpq.ast import Node
from repro.rpq.automaton import compile_ast


@dataclass(frozen=True, slots=True)
class Witness:
    """A concrete path justifying one answer pair."""

    source: str
    target: str
    hops: tuple[tuple[str, Step, str], ...]

    @property
    def length(self) -> int:
        return len(self.hops)

    def word(self) -> tuple[Step, ...]:
        """The label word spelled by the witness."""
        return tuple(step for _, step, _ in self.hops)

    def __str__(self) -> str:
        if not self.hops:
            return f"{self.source} (empty word)"
        parts = [self.hops[0][0]]
        for _, step, target in self.hops:
            parts.append(f"-{step}->")
            parts.append(target)
        return " ".join(parts)


def find_witness(
    graph: Graph, query: Node, source: str, target: str
) -> Witness | None:
    """A shortest witness path for ``(source, target)``, or ``None``.

    BFS over the product of the graph and the query NFA guarantees the
    returned witness has the minimum number of edge traversals among
    all witnesses.
    """
    nfa = compile_ast(query)
    source_id = graph.node_id(source)
    target_id = graph.node_id(target)

    # parent[(node, state)] = (previous node, previous state, step)
    parent: dict[tuple[int, int], tuple[int, int, Step] | None] = {}
    queue: deque[tuple[int, int]] = deque()
    for state in nfa.eps_closure(nfa.start):
        pair = (source_id, state)
        if pair not in parent:
            parent[pair] = None
            queue.append(pair)

    goal: tuple[int, int] | None = None
    for pair in list(parent):
        if pair == (target_id, nfa.accept):
            goal = pair
            break
    while queue and goal is None:
        node, state = queue.popleft()
        for step in nfa.out_steps(state):
            successors = nfa.step_targets(state, step)
            if not successors:
                continue
            for neighbor in graph.step_neighbors(node, step):
                for raw_state in successors:
                    for next_state in nfa.eps_closure(raw_state):
                        pair = (neighbor, next_state)
                        if pair in parent:
                            continue
                        parent[pair] = (node, state, step)
                        if pair == (target_id, nfa.accept):
                            goal = pair
                            queue.clear()
                            break
                        queue.append(pair)
                    if goal is not None:
                        break
                if goal is not None:
                    break
            if goal is not None:
                break

    if goal is None:
        return None
    hops: list[tuple[str, Step, str]] = []
    cursor: tuple[int, int] | None = goal
    while cursor is not None:
        entry = parent[cursor]
        if entry is None:
            break
        previous_node, previous_state, step = entry
        hops.append(
            (graph.node_name(previous_node), step, graph.node_name(cursor[0]))
        )
        cursor = (previous_node, previous_state)
    hops.reverse()
    return Witness(source=source, target=target, hops=tuple(hops))


def all_witness_words(
    graph: Graph, query: Node, source: str, target: str, max_length: int
) -> set[tuple[Step, ...]]:
    """Every witness *word* up to ``max_length`` hops (small graphs).

    Exhaustive product-BFS by level; useful in tests to check that
    :func:`find_witness` returns a shortest word.
    """
    nfa = compile_ast(query)
    source_id = graph.node_id(source)
    target_id = graph.node_id(target)
    words: set[tuple[Step, ...]] = set()
    frontier: set[tuple[int, int, tuple[Step, ...]]] = {
        (source_id, state, ()) for state in nfa.eps_closure(nfa.start)
    }
    for _ in range(max_length + 1):
        next_frontier: set[tuple[int, int, tuple[Step, ...]]] = set()
        for node, state, word in frontier:
            if node == target_id and state == nfa.accept:
                words.add(word)
            if len(word) == max_length:
                continue
            for step in nfa.out_steps(state):
                for raw_state in nfa.step_targets(state, step):
                    for next_state in nfa.eps_closure(raw_state):
                        for neighbor in graph.step_neighbors(node, step):
                            next_frontier.add(
                                (neighbor, next_state, word + (step,))
                            )
        frontier = next_frontier
        if not frontier:
            break
    return words
