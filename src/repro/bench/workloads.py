"""Prepared benchmark fixtures: graphs with indexes at several k.

The paper's evaluation graph is Advogato (6,541 nodes / 51,127 edges).
A pure-Python k=3 index over the full graph is feasible but slow to
build, so the benchmarks default to a scaled-down Advogato-like graph;
``scale="full"`` selects the paper's dimensions for users with patience.
The *trends* (Figure 2's shape) are scale-invariant: they come from the
degree skew and the label skew, both preserved by the generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api import GraphDatabase
from repro.errors import ValidationError
from repro.graph.generators import (
    ADVOGATO_EDGES,
    ADVOGATO_LABELS,
    ADVOGATO_NODES,
    advogato_like,
)
from repro.graph.graph import Graph

#: Benchmark scales: name -> (nodes, edges).  "bench" keeps a full
#: Figure-2 sweep (8 queries x 4 methods x k=1..3) within minutes of
#: pure-Python time; "small" is for CI smoke runs.
SCALES: dict[str, tuple[int, int]] = {
    "small": (120, 600),
    "bench": (300, 1800),
    "medium": (1000, 8000),
    "full": (ADVOGATO_NODES, ADVOGATO_EDGES),
}


@dataclass
class PreparedWorkload:
    """A graph plus one :class:`GraphDatabase` per index locality k."""

    graph: Graph
    labels: tuple[str, str, str]
    databases: dict[int, GraphDatabase] = field(default_factory=dict)

    def database(self, k: int) -> GraphDatabase:
        """The database indexed at locality ``k`` (built lazily)."""
        if k not in self.databases:
            self.databases[k] = GraphDatabase(self.graph, k=k)
        return self.databases[k]


def advogato_workload(
    scale: str = "bench",
    ks: tuple[int, ...] = (1, 2, 3),
    seed: int = 7,
) -> PreparedWorkload:
    """Advogato-like graph with indexes prebuilt for each k in ``ks``."""
    if scale not in SCALES:
        raise ValidationError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    nodes, edges = SCALES[scale]
    graph = advogato_like(nodes=nodes, edges=edges, seed=seed)
    prepared = PreparedWorkload(graph=graph, labels=ADVOGATO_LABELS)
    for k in ks:
        prepared.database(k)
    return prepared


def synthetic_join_inputs(
    size: int, seed: int = 7
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """The join-ablation workload: two random duplicate-free relations.

    ``left`` comes back target-major sorted (the shape an inverse-path
    scan delivers), ``right`` (src, tgt)-sorted.  Shared by
    ``benchmarks/bench_join_strategies.py`` and
    ``benchmarks/bench_relation_ops.py`` so the two reports stay
    directly comparable.
    """
    rng = random.Random(seed)
    domain = size // 2 + 1
    left = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)},
        key=lambda pair: (pair[1], pair[0]),
    )
    right = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)}
    )
    return left, right
