"""Prepared benchmark fixtures: graphs with indexes at several k.

The paper's evaluation graph is Advogato (6,541 nodes / 51,127 edges).
A pure-Python k=3 index over the full graph is feasible but slow to
build, so the benchmarks default to a scaled-down Advogato-like graph;
``scale="full"`` selects the paper's dimensions for users with patience.
The *trends* (Figure 2's shape) are scale-invariant: they come from the
degree skew and the label skew, both preserved by the generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api import GraphDatabase
from repro.errors import ValidationError
from repro.graph.generators import (
    ADVOGATO_EDGES,
    ADVOGATO_LABELS,
    ADVOGATO_NODES,
    advogato_like,
)
from repro.graph.graph import Graph

#: Benchmark scales: name -> (nodes, edges).  "bench" keeps a full
#: Figure-2 sweep (8 queries x 4 methods x k=1..3) within minutes of
#: pure-Python time; "small" is for CI smoke runs.
SCALES: dict[str, tuple[int, int]] = {
    "small": (120, 600),
    "bench": (300, 1800),
    "medium": (1000, 8000),
    "full": (ADVOGATO_NODES, ADVOGATO_EDGES),
}


@dataclass
class PreparedWorkload:
    """A graph plus one :class:`GraphDatabase` per index locality k."""

    graph: Graph
    labels: tuple[str, str, str]
    databases: dict[int, GraphDatabase] = field(default_factory=dict)

    def database(self, k: int) -> GraphDatabase:
        """The database indexed at locality ``k`` (built lazily)."""
        if k not in self.databases:
            self.databases[k] = GraphDatabase(self.graph, k=k)
        return self.databases[k]


def advogato_workload(
    scale: str = "bench",
    ks: tuple[int, ...] = (1, 2, 3),
    seed: int = 7,
) -> PreparedWorkload:
    """Advogato-like graph with indexes prebuilt for each k in ``ks``."""
    if scale not in SCALES:
        raise ValidationError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    nodes, edges = SCALES[scale]
    graph = advogato_like(nodes=nodes, edges=edges, seed=seed)
    prepared = PreparedWorkload(graph=graph, labels=ADVOGATO_LABELS)
    for k in ks:
        prepared.database(k)
    return prepared


#: Cycle length of the "cyclic" closure workload: every node sits on a
#: cycle (the delta-iteration worst case — nothing ever saturates
#: early), but the closure stays linear in the edge count.
CLOSURE_CYCLE_LENGTH = 32


def closure_base_pairs(
    kind: str, edges: int, seed: int = 7
) -> tuple[int, list[tuple[int, int]]]:
    """``(node_count, pairs)`` for the Kleene-closure ablation.

    Three graph shapes stress different closure behaviors:

    * ``cyclic`` — disjoint directed cycles of
      :data:`CLOSURE_CYCLE_LENGTH`: every pair stays live until the
      cycle wraps, the regime the paper's recursive queries hit.
    * ``chain`` — one directed path: maximal diameter, no recurrence
      (bounded-power territory; the full closure would be quadratic).
    * ``scale_free`` — preferential attachment with out-degree 2 (edges
      point from later to earlier nodes): heavy-tailed in-degrees and
      deep, overlapping ancestor sets, the shape of citation / social
      graphs.

    Pairs come back duplicate-free and sorted.
    """
    if kind == "cyclic":
        length = CLOSURE_CYCLE_LENGTH
        count = max(1, edges // length)
        pairs = []
        for cycle in range(count):
            base = cycle * length
            pairs.extend((base + i, base + (i + 1) % length) for i in range(length))
        return count * length, pairs
    if kind == "chain":
        return edges + 1, [(i, i + 1) for i in range(edges)]
    if kind == "scale_free":
        rng = random.Random(seed)
        out_degree = 2
        nodes = max(2, edges // out_degree)
        pool = [0]
        pairs: set[tuple[int, int]] = set()
        for node in range(1, nodes):
            for _ in range(out_degree):
                pairs.add((node, pool[rng.randrange(len(pool))]))
            pool.extend([node] * out_degree)
            pool.append(node)
        return nodes, sorted(pairs)
    raise ValidationError(
        f"unknown closure workload {kind!r}; expected cyclic, chain or scale_free"
    )


def service_batch_queries(
    count: int = 120,
    seed: int = 7,
    labels: tuple[str, str, str] = ADVOGATO_LABELS,
) -> list[str]:
    """A shared-subplan query batch for the service-layer benchmark.

    ``count`` draws, with repetition and a popularity skew, from a
    small pool of 2- and 3-step label paths — the shape of heavy
    traffic, where many concurrent queries repeat popular queries
    verbatim and distinct queries overlap on popular subpaths.  This is
    exactly the workload :meth:`repro.api.GraphDatabase.query_batch`
    exists for: identical queries dedup to one execution, and shared
    plan subtrees hit the batch-wide scan memo.
    """
    rng = random.Random(seed)
    pool = [f"{a}/{b}" for a in labels for b in labels]
    pool += ["/".join(rng.choice(labels) for _ in range(3)) for _ in range(12)]
    # Zipf-ish skew: squaring the uniform draw concentrates mass on the
    # head of the pool, as production query logs do.
    return [pool[int(len(pool) * rng.random() ** 2)] for _ in range(count)]


def sharding_graph(scale: str = "bench", seed: int = 7) -> Graph:
    """The graph the sharding ablation builds indexes over.

    The same Advogato-like generator as :func:`advogato_workload`, but
    returned bare: ``benchmarks/bench_sharding.py`` times raw index
    builds at several shard counts, so the databases (and their
    statistics layers) must not be prebuilt here.
    """
    if scale not in SCALES:
        raise ValidationError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    nodes, edges = SCALES[scale]
    return advogato_like(nodes=nodes, edges=edges, seed=seed)


def sharding_queries(
    labels: tuple[str, str, str] = ADVOGATO_LABELS,
) -> list[str]:
    """The scatter-gather query ablation set, one query per regime.

    Two-step paths (one merge join over shard slices), three-step paths
    with an inverse step (hash-join chains, the swapped-scan slice
    sort), a high-fan-in union via a bounded repeat, and a Kleene star
    (per-shard base evaluation + the mandatory global closure).
    """
    a, b, c = labels
    return [
        f"{a}/{b}",
        f"{b}/^{a}/{c}",
        f"{a}{{1,3}}",
        f"({a}|{b})*",
    ]


#: Labels of the skewed sharding workload: two heavy labels carrying
#: most of the edge mass, plus rare labels whose edges *start only at
#: vertices owned by one shard* — the regime where per-shard statistics
#: beat global ones.
SKEW_HEAVY_LABELS = ("h0", "h1")
SKEW_RARE_LABELS = ("r0", "r1", "r2", "r3", "r4", "r5")


def skewed_shard_graph(
    scale: str = "bench", shards: int = 4, seed: int = 7
) -> Graph:
    """A graph with Zipfian label skew aligned with shard ownership.

    Two axes of skew, both common in production graphs and both
    invisible to *global* statistics:

    * **label skew** — edge counts per label follow a Zipf-ish decay:
      the heavy labels take most of the mass, each rare label a sliver.
    * **start-vertex skew** — heavy-label edges start at hot vertices
      (a cubed-uniform draw concentrates sources on a head set), and
      each rare label's edges start *only* at vertices owned by one
      shard of a ``shards``-way partition (``r0`` in shard 0, ``r1`` in
      shard 1, ...).  Global counts see a nonzero path count; per-shard
      counts prove the path empty in all but one shard.

    The second property is constructed with :func:`repro.sharding.shard_of`
    itself so it holds by definition, not by luck, at the given shard
    count.  Used by ``benchmarks/bench_shard_stats.py`` to measure
    shard pruning; answers are still pinned to the unsharded oracle
    there, so the alignment is a performance property only.
    """
    from repro.sharding import shard_of

    if scale not in SCALES:
        raise ValidationError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    nodes, edges = SCALES[scale]
    rng = random.Random(seed)
    graph = Graph()
    for index in range(nodes):
        graph.add_node(f"n{index}")
    owned: list[list[int]] = [[] for _ in range(shards)]
    for node in range(nodes):
        owned[shard_of(node, shards)].append(node)
    labels = SKEW_HEAVY_LABELS + SKEW_RARE_LABELS
    # Zipf-ish decay with a long tail: h0 ~ 1, h1 ~ 1/2, and every
    # rare label a sliver (~1-2% of the mass) — rare enough that most
    # rare-rare compositions are empty, the regime where per-shard
    # exact zeros carry real information.
    weights = [1.0, 0.5] + [0.06 / (i + 1) for i in range(len(SKEW_RARE_LABELS))]
    total = sum(weights)
    for label, weight in zip(labels, weights):
        budget = max(8, int(edges * weight / total))
        made = 0
        attempts = 0
        while made < budget and attempts < budget * 20:
            attempts += 1
            if label in SKEW_HEAVY_LABELS:
                # Hot heads: cubing the uniform draw piles sources
                # onto low-numbered vertices.
                source = int(nodes * rng.random() ** 3)
            else:
                pool = owned[int(label[1:]) % shards]
                source = pool[int(len(pool) * rng.random() ** 2)]
            target = rng.randrange(nodes)
            if target == source:
                continue
            if graph.add_edge(f"n{source}", label, f"n{target}"):
                made += 1
    return graph


def skewed_shard_queries() -> list[str]:
    """The pruning-ablation query set over the skewed graph.

    Rare-led shapes a production log would call "selective queries":
    high-fan-in unions and bounded repeats over the rare alphabet
    (normalization explodes them into dozens of disjuncts, nearly all
    provably empty per shard — the shape pruning wins hardest on),
    plus single-disjunct rare-led join spines (whole-shard pruning).
    """
    r0, r1, r2, r3, r4, r5 = SKEW_RARE_LABELS
    h0, h1 = SKEW_HEAVY_LABELS
    return [
        f"({r0}|{r1}|{r2}|{r3}){{1,3}}",
        f"({r0}|{r2}|{r4}){{1,2}}/{h1}",
        f"({r0}|{r1}|{r2}|{r3}|{r4}|{r5}){{2,3}}",
        f"({r0}|{r1}|{r2}|{r3}|{r4}|{r5})/{h0}",
        f"{r1}/{h0}/{h1}",
    ]


def prepared_template_workload() -> list[tuple[str, list[dict[str, int]]]]:
    """``(template, bindings)`` pairs for the prepared-statement bench.

    Selective recursion-heavy shapes over the skewed graph's rare
    alphabet (:func:`skewed_shard_graph`): normalization explodes each
    into dozens-to-hundreds of disjuncts, nearly all empty, so the
    parse/rewrite/plan toll dominates execution — the regime prepared
    statements exist for, and the shape of production prepared traffic
    (planned once, swept over bound parameters).  Bindings per template
    vary only the repetition bounds, exactly what ``$name`` templates
    parameterize.
    """
    r0, r1, r2, r3, r4, r5 = SKEW_RARE_LABELS
    h1 = SKEW_HEAVY_LABELS[1]
    return [
        (
            f"({r0}|{r1}|{r2}|{r3}){{$lo,$hi}}",
            [{"lo": 1, "hi": 3}, {"lo": 2, "hi": 4}],
        ),
        (
            f"({r0}|{r2}|{r4}){{1,$n}}/{h1}",
            [{"n": 3}, {"n": 4}],
        ),
        (
            f"({r0}|{r1}|{r2}|{r3}|{r4}|{r5}){{$lo,$hi}}",
            [{"lo": 2, "hi": 3}, {"lo": 2, "hi": 4}],
        ),
    ]


def fused_gather_queries(
    labels: tuple[str, str, str] = ADVOGATO_LABELS,
) -> list[str]:
    """The fused-gather ablation set: gather-bound scatter shapes.

    Mid-size answers (tens of thousands of pairs per shard sweep) where
    the N-way merge of shard slices is a visible fraction of execution
    — large enough to vectorize, small enough that the final sort does
    not drown the dedup pass being skipped.
    """
    a, b, c = labels
    return [
        f"{b}{{1,3}}",
        f"{a}{{1,3}}",
        f"{b}/^{a}/{c}",
    ]


def synthetic_join_inputs(
    size: int, seed: int = 7
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """The join-ablation workload: two random duplicate-free relations.

    ``left`` comes back target-major sorted (the shape an inverse-path
    scan delivers), ``right`` (src, tgt)-sorted.  Shared by
    ``benchmarks/bench_join_strategies.py`` and
    ``benchmarks/bench_relation_ops.py`` so the two reports stay
    directly comparable.
    """
    rng = random.Random(seed)
    domain = size // 2 + 1
    left = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)},
        key=lambda pair: (pair[1], pair[0]),
    )
    right = sorted(
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(size)}
    )
    return left, right
