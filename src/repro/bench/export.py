"""Exporting experiment rows to CSV / JSON.

Reproduction artifacts should be machine-readable, not just printed;
these writers serialize the harness dataclasses so downstream plotting
or regression-tracking can consume them.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Sequence

from repro.errors import ValidationError


def _check_rows(rows: Sequence[object]) -> type:
    if not rows:
        raise ValidationError("cannot export zero rows")
    first_type = type(rows[0])
    if not dataclasses.is_dataclass(rows[0]):
        raise ValidationError(f"rows must be dataclasses, got {first_type}")
    for row in rows:
        if type(row) is not first_type:
            raise ValidationError(
                f"mixed row types: {first_type.__name__} and "
                f"{type(row).__name__}"
            )
    return first_type


def rows_to_dicts(rows: Sequence[object]) -> list[dict]:
    """Dataclass rows -> plain dictionaries (computed fields included)."""
    _check_rows(rows)
    dicts = []
    for row in rows:
        payload = dataclasses.asdict(row)
        # include simple computed properties (e.g. ComparisonRow.speedup)
        for name in dir(type(row)):
            attribute = getattr(type(row), name, None)
            if isinstance(attribute, property):
                payload[name] = getattr(row, name)
        dicts.append(payload)
    return dicts


def write_csv(rows: Sequence[object], path: str | Path) -> None:
    """Write dataclass rows as a CSV file with a header."""
    dicts = rows_to_dicts(rows)
    fieldnames = list(dicts[0])
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(dicts)


def write_json(rows: Sequence[object], path: str | Path, experiment: str = "") -> None:
    """Write dataclass rows as a JSON document with metadata."""
    payload = {
        "experiment": experiment,
        "row_type": type(rows[0]).__name__ if rows else "",
        "rows": rows_to_dicts(rows),
    }
    Path(path).write_text(
        json.dumps(payload, indent=1, default=float) + "\n", encoding="utf-8"
    )


def read_json(path: str | Path) -> dict:
    """Read back a document written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ValidationError(f"{path}: not an experiment export")
    return payload
